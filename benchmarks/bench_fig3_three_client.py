"""Figure 3 / Theorem 1: the three-client impossibility chain α₀ … α₁₀.

Paper result: with two readers, one writer and two servers, no algorithm has
all SNOW properties — even when client-to-client communication is allowed.
Figure 3 shows the chain of execution transformations (Lemmas 5-14) that
turns "both reads after the write return the new values" into "a read that
finishes before the other starts returns the new values while the later one
returns the old values", contradicting strict serializability.

Reproduction: the chain is replayed over symbolic executions; every
commuting step is mechanically checked against the dependency rule, the
indistinguishability steps carry the paper's justification, and the final
contradiction is recomputed by the semantic serializability checker.
"""

from __future__ import annotations

from repro.proofs import replay_theorem1

from benchutil import emit


def regenerate():
    replay = replay_theorem1()
    return replay, replay.describe()


def test_fig3_theorem1_replay(benchmark):
    replay, text = benchmark(regenerate)
    emit("fig3_three_client_chain", text)
    assert replay.ok
    assert replay.checked_steps() == 5
    assert len(replay.steps) == 9
    assert replay.final_execution.transaction_order(("R1", "R2")) == ("R2", "R1")
    assert "no strict serialization exists" in replay.contradiction_note
