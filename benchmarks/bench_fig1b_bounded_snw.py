"""Figure 1(b): bounded SNW algorithms — the rounds × versions matrix.

Paper result (rows: versions per reply; columns: rounds):

* (1 version, 1 round)  — impossible in MWMR without C2C, possible for MWSR
  with C2C (algorithm A);
* (1 version, 2 rounds) — algorithm B;
* (1 version, ∞ rounds) — prior retry-style designs (our validating
  double-collect baseline);
* (|W| versions, 1 round) — algorithm C.

Reproduction: each protocol is executed under contending workloads and the
rounds/versions are *measured* by the trace-level checkers, together with the
SNW verdict.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core.feasibility import bounded_snw_matrix

from benchutil import emit


def regenerate():
    rows = bounded_snw_matrix(num_writers=3, num_objects=3, workload_rounds=3, seeds=(0, 1, 2))
    table = format_table(
        ["protocol", "setting", "rounds (measured)", "versions (measured)", "claimed", "SNW holds"],
        [
            [
                row.protocol,
                row.setting,
                row.rounds_observed,
                row.versions_observed,
                f"{'∞' if row.claimed_rounds is None else row.claimed_rounds} rounds / "
                f"{'|W|' if row.claimed_versions is None else row.claimed_versions} versions",
                "yes" if row.satisfies_snw else "NO",
            ]
            for row in rows
        ],
        title="Figure 1(b): bounded SNW READ-transaction algorithms (measured on executions)",
    )
    return rows, table


def test_fig1b_bounded_snw_matrix(benchmark):
    rows, table = benchmark(regenerate)
    emit("fig1b_bounded_snw", table)
    by_name = {row.protocol: row for row in rows}
    assert by_name["algorithm-a"].rounds_observed == 1
    assert by_name["algorithm-a"].versions_observed == 1
    assert by_name["algorithm-b"].rounds_observed == 2
    assert by_name["algorithm-b"].versions_observed == 1
    assert by_name["algorithm-c"].rounds_observed <= 2  # 1 + documented fallback corner case
    assert by_name["algorithm-c"].versions_observed > 1
    assert by_name["occ-double-collect"].versions_observed == 1
    assert by_name["occ-double-collect"].rounds_observed >= 2
    assert all(row.satisfies_snw for row in rows)
