"""Extension / ablation experiment: where each design pays its coordination cost.

Algorithm A moves per-WRITE work onto the reader (every WRITE sends an
``info-reader`` message and waits for the reader's ack); algorithms B and C
move it onto a coordinator server (``update-coor``); the baselines pay in
extra rounds or blocking instead.  This bench measures, for the same workload
and the same schedule, the total message count and the per-READ / per-WRITE
message and round costs — the ablation behind the design choice called out in
DESIGN.md (reader-as-coordinator vs. server-as-coordinator vs. no coordinator).
"""

from __future__ import annotations

from repro.analysis import ExperimentConfig, WorkloadSpec, format_table, run_experiment

from benchutil import emit

PROTOCOLS = ("simple-rw", "algorithm-a", "algorithm-b", "algorithm-c", "s2pl", "occ-double-collect")


def regenerate():
    rows = []
    details = {}
    for protocol in PROTOCOLS:
        config = ExperimentConfig(
            protocol=protocol,
            num_readers=2,
            num_writers=3,
            num_objects=3,
            workload=WorkloadSpec(reads_per_reader=6, writes_per_writer=4, read_size=3, write_size=3, seed=77),
            scheduler="random",
            seed=77,
            check_properties=False,
        )
        result = run_experiment(config)
        metrics = result.metrics
        rows.append(
            [
                protocol,
                metrics.total_messages,
                f"{metrics.write_messages.mean:.1f}" if metrics.write_messages.count else "-",
                f"{metrics.read_messages.mean:.1f}" if metrics.read_messages.count else "-",
                f"{metrics.read_rounds.mean:.2f}" if metrics.read_rounds.count else "-",
            ]
        )
        details[protocol] = metrics
    table = format_table(
        ["protocol", "total msgs", "msgs/WRITE", "msgs/READ", "rounds/READ"],
        rows,
        title="Message cost per design (same workload, same schedule)",
    )
    return details, table


def test_message_cost(benchmark):
    details, table = benchmark(regenerate)
    emit("message_cost", table)
    # Algorithm A's writes are more expensive than the naive floor (the extra
    # info-reader round trip), which is the price of SNOW reads.
    assert details["algorithm-a"].write_messages.mean > details["simple-rw"].write_messages.mean
    # B and C writes also pay a coordinator round trip.
    assert details["algorithm-b"].write_messages.mean > details["simple-rw"].write_messages.mean
    # Reads: the retry baseline sends the most read messages.
    assert details["occ-double-collect"].read_messages.mean >= details["algorithm-b"].read_messages.mean
    # Simple reads are the floor on read messages.
    assert details["simple-rw"].read_messages.mean <= details["algorithm-b"].read_messages.mean
