"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the extension experiments listed in DESIGN.md).  Besides timing the
regeneration with pytest-benchmark, each bench *prints* the regenerated
table/series and also writes it to ``benchmarks/results/<name>.txt`` so the
outputs survive output capturing and land next to the timing numbers in
``bench_output.txt`` runs.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 78}\n{name}\n{'=' * 78}\n"
    print(banner + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
