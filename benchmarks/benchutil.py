"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the extension experiments listed in DESIGN.md).  Besides timing the
regeneration with pytest-benchmark, each bench *prints* the regenerated
table/series and also writes it to ``benchmarks/results/<name>.txt`` so the
outputs survive output capturing and land next to the timing numbers in
``bench_output.txt`` runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 78}\n{name}\n{'=' * 78}\n"
    print(banner + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: Any) -> Path:
    """Persist a machine-readable result as ``benchmarks/results/BENCH_<name>.json``.

    These files are the cross-PR perf/behaviour trajectory: stable keys, sorted,
    newline-terminated, so diffs between runs stay reviewable.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"[benchutil] wrote {path}")
    return path
