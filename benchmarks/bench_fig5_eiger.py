"""Figure 5 / Section 6: Eiger's read-only transactions are not strictly serializable.

Paper result: the earlier claim that Eiger provided bounded-latency strictly
serializable READ transactions is wrong — Lamport clocks cannot order
causally unrelated operations in real time, so a READ can be accepted while
mixing a new value from one shard with a stale value from another.

Reproduction: the executable Eiger-style protocol is driven through exactly
the Figure 5 schedule; the READ is accepted in a single round with the
anomalous combination (ox from w3, oy from w1), and the strict-serializability
checker rejects the resulting history while the N/O/W checkers confirm the
latency-side properties still hold (it is only S that fails).
"""

from __future__ import annotations

from repro.proofs import run_figure5

from benchutil import emit


def regenerate():
    result = run_figure5()
    text = "\n".join(
        [
            result.describe(),
            "",
            "History:",
            result.history.describe(),
            "",
            "SNOW report:",
            result.snow_report.describe(),
        ]
    )
    return result, text


def test_fig5_eiger_anomaly(benchmark):
    result, text = benchmark(regenerate)
    emit("fig5_eiger_anomaly", text)
    assert result.anomaly_reproduced
    assert result.accepted_first_round
    assert result.read_result.value_for("ox") == "a3"
    assert result.read_result.value_for("oy") == "b1"
    assert not result.serializability.ok
    assert result.snow_report.non_blocking
    assert result.snow_report.one_version
    assert result.snow_report.writes_complete
