"""Extension experiment: the reconfiguration grid — membership change live.

The reconfiguration layer (:mod:`repro.consensus.reconfig`) turns membership
change into a joint-consensus mid-run event: replica groups (and the
consensus group) move to a new configuration through a ``C_old,new`` window
in which every quorum must hold in both configurations, added replicas sync
state before the change commits, and retired replicas answer
``epoch-mismatch`` until the kernel removes them.  This benchmark measures
what that buys: every reconfig-capable protocol runs the same workload at
``replication_factor=3`` + majority, fault-free, with a dead replica being
replaced mid-run, and with a group growing rf 3 → 5 — and reports per cell
the SNOW verdict, availability, epochs, transfer volume, epoch retries and
the unavailability window.

Two records are emitted: a human-readable table and
``results/BENCH_reconfig.json`` — the machine-readable ``protocol ×
scenario`` rows tracked across PRs (the reconfiguration sibling of
``BENCH_failover.json``).

A loss-rate axis rides along (ISSUE 10 satellite): the replace-dead-replica
change re-runs under uniform message drop probabilities 0.05 / 0.15 / 0.30,
showing retransmission work growing with the loss rate while the verdict
columns stay put.

Expected shape: *membership change is a non-event* — replace-dead-replica
completes with availability 1.0, zero epoch retries, an unavailability
window of 0 and byte-for-byte the fault-free SNOW verdict; grow-group
transfers every installed version to the new replicas before committing;
the lossy cells keep those verdicts while drops/retransmissions climb
monotonically with the drop probability.
"""

from __future__ import annotations

from repro.analysis import format_table, reconfig_grid_rows, sweep_reconfig

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-a", "algorithm-b")
SEED = 13
LOSS_RATES = (0.05, 0.15, 0.30)
LOSSY_SCENARIOS = tuple(f"lossy-replace-p{round(p * 100):02d}" for p in LOSS_RATES)

HEADERS = [
    "protocol",
    "scenario",
    "SNOW",
    "avail",
    "epochs",
    "transferred",
    "retries",
    "unavail window",
    "dropped",
    "msgs",
]


def regenerate():
    grid = sweep_reconfig(protocols=PROTOCOLS, seed=SEED, loss_rates=LOSS_RATES)
    rows = reconfig_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            row.get("epochs", "-"),
            row.get("transfer_versions", "-"),
            row.get("epoch_retries", "-"),
            row.get("unavailability_window", "-"),
            row.get("messages_dropped", "-"),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS,
        table_rows,
        title="Reconfiguration grid: membership change as a mid-run experiment",
    )
    return grid, rows, table


def test_reconfig_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("reconfig_sweep", table)
    emit_json(
        "reconfig",
        {"grid": rows, "protocols": list(PROTOCOLS), "seed": SEED},
    )

    cells = {(r["protocol"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * (3 + len(LOSS_RATES))

    for protocol in PROTOCOLS:
        baseline = cells[(protocol, "none")]
        assert baseline["availability"] == 1.0

        # Replace-dead-replica: the headline acceptance numbers — full
        # availability, a measured unavailability window of 0, and the
        # fault-free SNOW / consistency verdicts riding through unchanged.
        replaced = cells[(protocol, "replace-dead-replica")]
        assert replaced["availability"] == 1.0, protocol
        assert replaced["unavailability_window"] == 0, protocol
        assert replaced["snow"] == baseline["snow"], protocol
        assert replaced["consistent"] is True, protocol
        assert replaced["reconfigs_completed"] == 1
        assert replaced["epochs"] == 2  # one joint entry + one commit
        assert replaced["retired_servers"] == 1
        assert replaced["transfer_versions"] >= 1  # the new replica synced

        # Grow-group: fault-free growth, state transferred before commit.
        grown = cells[(protocol, "grow-group")]
        assert grown["availability"] == 1.0, protocol
        assert grown["snow"] == baseline["snow"], protocol
        assert grown["consistent"] is True, protocol
        assert grown["retired_servers"] == 0
        assert grown["transfer_versions"] >= 2  # two added replicas synced

        # The loss-rate axis: retransmission work grows with the drop
        # probability while the replace-dead-replica verdicts ride through.
        dropped = []
        for scenario in LOSSY_SCENARIOS:
            lossy = cells[(protocol, scenario)]
            assert lossy["availability"] == 1.0, (protocol, scenario)
            assert lossy["snow"] == baseline["snow"], (protocol, scenario)
            assert lossy["consistent"] is True, (protocol, scenario)
            assert lossy["reconfigs_completed"] == 1, (protocol, scenario)
            assert lossy["retransmissions"] == lossy["messages_dropped"], (
                protocol,
                scenario,
            )
            dropped.append(lossy["messages_dropped"])
        assert dropped == sorted(dropped), (protocol, dropped)
        assert dropped[0] > 0, protocol
