"""Extension experiment: the reconfiguration grid — membership change live.

The reconfiguration layer (:mod:`repro.consensus.reconfig`) turns membership
change into a joint-consensus mid-run event: replica groups (and the
consensus group) move to a new configuration through a ``C_old,new`` window
in which every quorum must hold in both configurations, added replicas sync
state before the change commits, and retired replicas answer
``epoch-mismatch`` until the kernel removes them.  This benchmark measures
what that buys: every reconfig-capable protocol runs the same workload at
``replication_factor=3`` + majority, fault-free, with a dead replica being
replaced mid-run, and with a group growing rf 3 → 5 — and reports per cell
the SNOW verdict, availability, epochs, transfer volume, epoch retries and
the unavailability window.

Two records are emitted: a human-readable table and
``results/BENCH_reconfig.json`` — the machine-readable ``protocol ×
scenario`` rows tracked across PRs (the reconfiguration sibling of
``BENCH_failover.json``).

Expected shape: *membership change is a non-event* — replace-dead-replica
completes with availability 1.0, zero epoch retries, an unavailability
window of 0 and byte-for-byte the fault-free SNOW verdict; grow-group
transfers every installed version to the new replicas before committing.
"""

from __future__ import annotations

from repro.analysis import format_table, reconfig_grid_rows, sweep_reconfig

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-a", "algorithm-b")
SEED = 13

HEADERS = [
    "protocol",
    "scenario",
    "SNOW",
    "avail",
    "epochs",
    "transferred",
    "retries",
    "unavail window",
    "msgs",
]


def regenerate():
    grid = sweep_reconfig(protocols=PROTOCOLS, seed=SEED)
    rows = reconfig_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            row.get("epochs", "-"),
            row.get("transfer_versions", "-"),
            row.get("epoch_retries", "-"),
            row.get("unavailability_window", "-"),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS,
        table_rows,
        title="Reconfiguration grid: membership change as a mid-run experiment",
    )
    return grid, rows, table


def test_reconfig_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("reconfig_sweep", table)
    emit_json(
        "reconfig",
        {"grid": rows, "protocols": list(PROTOCOLS), "seed": SEED},
    )

    cells = {(r["protocol"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * 3

    for protocol in PROTOCOLS:
        baseline = cells[(protocol, "none")]
        assert baseline["availability"] == 1.0

        # Replace-dead-replica: the headline acceptance numbers — full
        # availability, a measured unavailability window of 0, and the
        # fault-free SNOW / consistency verdicts riding through unchanged.
        replaced = cells[(protocol, "replace-dead-replica")]
        assert replaced["availability"] == 1.0, protocol
        assert replaced["unavailability_window"] == 0, protocol
        assert replaced["snow"] == baseline["snow"], protocol
        assert replaced["consistent"] is True, protocol
        assert replaced["reconfigs_completed"] == 1
        assert replaced["epochs"] == 2  # one joint entry + one commit
        assert replaced["retired_servers"] == 1
        assert replaced["transfer_versions"] >= 1  # the new replica synced

        # Grow-group: fault-free growth, state transferred before commit.
        grown = cells[(protocol, "grow-group")]
        assert grown["availability"] == 1.0, protocol
        assert grown["snow"] == baseline["snow"], protocol
        assert grown["consistent"] is True, protocol
        assert grown["retired_servers"] == 0
        assert grown["transfer_versions"] >= 2  # two added replicas synced
