"""Extension experiment: the failover grid — consensus factor × leader fate.

The consensus layer (:mod:`repro.consensus`) replicates the coordinator of
algorithms B/C and OCC's timestamp oracle over a Raft-style replicated log;
this benchmark measures what that buys.  Every coordinator-dependent protocol
runs the same workload at consensus factors 1 and 3, fault-free and with a
fail-stop crash of the coordinator's *leader* mid-run, and reports per cell:
the SNOW verdict, availability, the election/term counters and the
commit-latency tax of the consensus rounds.

Two records are emitted: a human-readable table and
``results/BENCH_failover.json`` — the machine-readable
``consensus_factor × scenario`` rows tracked across PRs (the consensus
sibling of ``BENCH_replication.json``).

Expected shape: at factor 1 the leader *is* the single designated server, so
the crash zeroes availability (the seed's single point of failure); at
factor 3 the survivors elect a new leader after a bounded leaderless window —
availability 1.0, at least one election, and byte-for-byte the fault-free
SNOW verdict: "coordinator failover with unchanged verdicts" from the
roadmap, measured.
"""

from __future__ import annotations

from repro.analysis import consensus_grid_rows, format_table, sweep_consensus_factor

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")
FACTORS = (1, 3)
SEED = 11

HEADERS = [
    "protocol",
    "cf",
    "scenario",
    "SNOW",
    "avail",
    "elections",
    "max term",
    "commit lat (mean)",
    "msgs",
]


def regenerate():
    grid = sweep_consensus_factor(protocols=PROTOCOLS, factors=FACTORS, seed=SEED)
    rows = consensus_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["consensus_factor"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            row.get("elections", "-"),
            row.get("max_term", "-"),
            row.get("commit_latency_mean", "-"),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS,
        table_rows,
        title="Failover grid: SNOW verdicts and availability across consensus factors",
    )
    return grid, rows, table


def test_failover_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("failover_sweep", table)
    emit_json(
        "failover",
        {"grid": rows, "protocols": list(PROTOCOLS), "factors": list(FACTORS), "seed": SEED},
    )

    cells = {(r["protocol"], r["consensus_factor"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * len(FACTORS) * 2

    for protocol in PROTOCOLS:
        # Fault-free cells are fully available at every factor, and factor 3
        # holds no elections (the bootstrap leader just leads).
        for factor in FACTORS:
            assert cells[(protocol, factor, "none")]["availability"] == 1.0
        assert cells[(protocol, 3, "none")]["elections"] == 0

        # Factor 1: the crashed leader was the single designated coordinator —
        # every coordinator-dependent transaction stalls.
        assert cells[(protocol, 1, "crash-leader")]["availability"] < 1.0, protocol

        # Factor 3: the survivors elect a new leader; full availability and
        # the *same* SNOW verdict as the fault-free run.
        crashed = cells[(protocol, 3, "crash-leader")]
        baseline = cells[(protocol, 3, "none")]
        assert crashed["availability"] == 1.0, protocol
        assert crashed["snow"] == baseline["snow"], protocol
        assert crashed["consistent"] is True, protocol
        assert crashed["leaders_elected"] >= 1, protocol
        assert crashed["max_term"] >= 2, protocol

        # The consensus accounting is present and sane on replicated cells.
        assert crashed["consensus_members"] == 3
        assert crashed["commit_latency_mean"] is not None
