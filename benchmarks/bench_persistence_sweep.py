"""Extension experiment: the durability grid — persistence modes × crashes.

PR 9's persistence plane restores Raft's durable-state assumption for the
replicated coordinator: term/vote/log write through to a stable store and a
crash-with-amnesia recovers from it instead of resetting.  This benchmark
plays the consensus workload through every coordinator protocol under three
persistence modes (volatile seed members / durable / durable with
``compact_every=4`` checkpointing) crossed with an amnesiac member crash,
and reports per cell: the SNOW verdict and availability (the invariant
columns the regression gate pins), election churn, and the new persistence
block — recoveries taken, checkpoints cut, compaction ratio, retained-vs-
total log length.

Two non-gated wall-clock series ride along: ``recovery`` (time to rebuild a
full member group from a populated plane — the restart-from-storage path)
and ``journal`` (file-backend compaction: journal bytes before/after the
snapshot rewrite).

Expected shape: every durable cell matches the fault-free verdicts with
availability 1.0; the volatile amnesia cells stay safe on these schedules
too (the grid seeds recover between elections — the *hazard* is pinned by
the strict xfail in ``tests/consensus/test_chaos_grid.py``); compaction
keeps ``retained_entries`` bounded while verdicts ride through unchanged.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.analysis import format_table, persistence_grid_rows, sweep_persistence
from repro.faults import ChaosScheduler
from repro.ioa import FIFOScheduler
from repro.persist import PersistencePlane, PersistencePolicy
from repro.protocols import get_protocol

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")
MODES = ("volatile", "durable", "durable+compact")
SEED = 11

HEADERS = [
    "protocol",
    "persistence",
    "scenario",
    "SNOW",
    "avail",
    "recoveries",
    "checkpoints",
    "compaction",
    "retained/log",
]


def regenerate():
    grid = sweep_persistence(protocols=PROTOCOLS, seed=SEED)
    rows = persistence_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["persistence"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            row.get("recoveries", "-"),
            row.get("checkpoints", "-"),
            f"{row['compaction_ratio']:.2f}" if "compaction_ratio" in row else "-",
            f"{row['retained_entries']}/{row['log_length']}" if "log_length" in row else "-",
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS, table_rows, title="Durability grid: persistence modes under amnesiac crashes"
    )
    return rows, table


def build_system(persistence):
    return get_protocol("algorithm-b").build(
        num_readers=2,
        num_writers=2,
        num_objects=2,
        scheduler=ChaosScheduler(base=FIFOScheduler()),
        seed=SEED,
        consensus_factor=3,
        persistence=persistence,
    )


def build_members(persistence, tag: str = "a"):
    """Build + run one fixed workload round.  ``tag`` keeps transaction ids
    unique across runs sharing one plane — the recovered reply cache dedups
    request ids *by design* (exactly-once), so a new transaction must never
    reuse an old id."""
    handle = build_system(persistence)
    w1 = handle.submit_write(
        {obj: f"v1-{obj}" for obj in handle.objects},
        writer=handle.writers[0],
        txn_id=f"W1{tag}",
    )
    handle.submit_read(handle.objects, reader=handle.readers[0], txn_id=f"R1{tag}")
    w2 = handle.submit_write(
        {obj: f"v2-{obj}" for obj in handle.objects},
        writer=handle.writers[-1],
        txn_id=f"W2{tag}",
        after=[w1],
    )
    handle.submit_read(handle.objects, reader=handle.readers[-1], txn_id=f"R2{tag}", after=[w2])
    handle.run_to_completion()
    return handle


def recovery_microbench(rounds: int = 20):
    """Wall-clock restart-from-storage: rebuild the member group from a
    populated plane.  Recovery runs inside ``build`` (attaching a non-empty
    store replays meta/log/commit into the member), so a plain build is the
    restart path; no workload is replayed — the storage tier is fresh, only
    consensus members are durable.  Not gated — recorded for the trajectory
    only."""
    plane = PersistencePlane(PersistencePolicy())
    build_members(plane, tag="seed")
    start = time.perf_counter()
    for _ in range(rounds):
        handle = build_system(plane)
        assert all(
            handle.simulation.automaton(name).recoveries >= 1
            for name in handle.consensus_group
        ), "rebuild did not take the recovery path"
    elapsed = time.perf_counter() - start
    return {
        "rounds": rounds,
        "mean_rebuild_seconds": round(elapsed / rounds, 6),
    }


def journal_compaction_stats():
    """File-backend journal sizes around the compacting rewrite."""
    root = tempfile.mkdtemp(prefix="bench-persist-")
    try:
        policy = PersistencePolicy(backend="file", root=root, compact_every=3)
        handle = build_members(PersistencePlane(policy))
        stats = []
        for name, store in sorted(handle.persistence.stores().items()):
            before, after = store.last_rewrite or (0, 0)
            stats.append(
                {
                    "member": name,
                    "journal_bytes": store.path.stat().st_size,
                    "rewrite_before_bytes": before,
                    "rewrite_after_bytes": after,
                    "snapshots": store.snapshots,
                }
            )
            store.close()
        return stats
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_persistence_sweep(benchmark):
    rows, table = benchmark(regenerate)
    emit("persistence_sweep", table)
    recovery = recovery_microbench()
    journal = journal_compaction_stats()
    emit_json(
        "persist",
        {
            "grid": rows,
            "journal": journal,
            "protocols": list(PROTOCOLS),
            "recovery": recovery,
            "seed": SEED,
        },
    )

    cells = {(r["protocol"], r["persistence"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * len(MODES) * 2

    for protocol in PROTOCOLS:
        baseline = cells[(protocol, "volatile", "none")]
        for mode in MODES:
            # Attaching a store (with or without compaction) is behaviour-
            # invariant: fault-free cells match the volatile baseline.
            quiet = cells[(protocol, mode, "none")]
            assert quiet["snow"] == baseline["snow"], (protocol, mode)
            assert quiet["availability"] == 1.0, (protocol, mode)
            # Amnesiac crashes recover to full availability in every mode on
            # these schedules; durable modes provably took the recovery path.
            crashed = cells[(protocol, mode, "amnesia-member")]
            assert crashed["availability"] == 1.0, (protocol, mode)
            assert crashed["snow"] == baseline["snow"], (protocol, mode)
            if mode != "volatile":
                assert crashed["recoveries"] >= 1, (protocol, mode)
        # Compaction actually compacted, and bounded the retained suffix.
        compacted = cells[(protocol, "durable+compact", "none")]
        assert compacted["checkpoints"] >= 1, protocol
        assert compacted["compacted_entries"] > 0, protocol
        assert compacted["retained_entries"] < compacted["log_length"], protocol

    # The file-backend journal shrank at the compacting rewrite.
    assert journal and all(
        s["rewrite_after_bytes"] < s["rewrite_before_bytes"] for s in journal
    )
    assert recovery["mean_rebuild_seconds"] > 0
