"""Extension experiment: the replication grid — replication factor × fault.

The placement layer (:mod:`repro.txn.placement`) replaces the paper's
one-server-per-object assumption with replica groups and quorum policies;
this benchmark measures what that buys.  Every protocol runs the same
workload at replication factors 1, 2 and 3 (majority quorums for N ≥ 2),
fault-free and with a fail-stop crash of one replica of the first object
mid-run, and reports per cell: the SNOW verdict, availability, the quorum
sizes and how many replies each READ actually collected.

Two records are emitted: a human-readable table and
``results/BENCH_replication.json`` — the machine-readable
``replication_factor × fault scenario`` rows tracked across PRs (the
replicated sibling of ``BENCH_faults.json``).

Expected shape: at factor 1 the crash zeroes availability for every protocol
that must touch the dead copy (it is the only copy); at factor 3 with
majority quorums the crash column matches the fault-free column — same SNOW
verdict, availability 1.0 — which is precisely "SNOW verdicts measured
*through* a replica outage" from the roadmap.
"""

from __future__ import annotations

from repro.analysis import format_table, replication_grid_rows, sweep_replication_factor

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-a", "algorithm-b", "algorithm-c")
FACTORS = (1, 2, 3)
QUORUM = "majority"
SEED = 9

HEADERS = [
    "protocol",
    "rf",
    "scenario",
    "SNOW",
    "avail",
    "read avail",
    "R/W quorum",
    "replies (mean)",
    "msgs",
]


def regenerate():
    grid = sweep_replication_factor(
        protocols=PROTOCOLS,
        factors=FACTORS,
        quorum=QUORUM,
        seed=SEED,
    )
    rows = replication_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["replication_factor"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            f"{row['read_availability']:.2f}" if "read_availability" in row else "-",
            f"{row['read_quorum']}/{row['write_quorum']}" if "read_quorum" in row else "1/1",
            row.get("read_quorum_replies_mean", "-"),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS,
        table_rows,
        title="Replication grid: SNOW verdicts and availability across replication factors",
    )
    return grid, rows, table


def test_replication_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("replication_sweep", table)
    emit_json(
        "replication",
        {"grid": rows, "protocols": list(PROTOCOLS), "factors": list(FACTORS), "seed": SEED},
    )

    cells = {(r["protocol"], r["replication_factor"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * len(FACTORS) * 2

    for protocol in PROTOCOLS:
        # Fault-free cells are fully available at every factor, same verdict.
        verdicts = {cells[(protocol, f, "none")]["snow"] for f in FACTORS}
        assert len(verdicts) == 1, (protocol, verdicts)
        for factor in FACTORS:
            assert cells[(protocol, factor, "none")]["availability"] == 1.0

        # Factor 1: the crashed replica was the only copy — availability lost.
        assert cells[(protocol, 1, "crash-replica")]["availability"] < 1.0, protocol

        # Factor 3 + majority: the outage is absorbed by the quorum — full
        # availability and the *same* SNOW verdict as the fault-free run.
        crashed = cells[(protocol, 3, "crash-replica")]
        baseline = cells[(protocol, 3, "none")]
        assert crashed["availability"] == 1.0, protocol
        assert crashed["snow"] == baseline["snow"], protocol
        assert crashed["consistent"] is True, protocol

        # Quorum accounting is present and sane on replicated cells.
        assert crashed["read_quorum"] == 2 and crashed["write_quorum"] == 2
        assert crashed["read_quorum_replies_mean"] is not None
