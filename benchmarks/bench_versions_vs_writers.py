"""Extension experiment: algorithm C's reply size versus write concurrency.

Paper claim (Section 9 / Figure 1b): algorithm C keeps READ transactions to a
single non-blocking round by letting servers return *multiple* versions — up
to the number of concurrent WRITE transactions ``|W|`` (plus the already
committed history in the paper's pseudocode, which never prunes ``Vals``).

Reproduction: the number of versions carried by read replies is measured as
the number of concurrent writers grows, alongside the number of WRITE
transactions actually concurrent with each READ, so both the raw pseudocode
behaviour (monotone growth with total writes) and the |W|-shaped concurrency
signal are visible.
"""

from __future__ import annotations

from repro.analysis import format_series, sweep_versions_vs_writers
from repro.txn.transactions import ReadTransaction

from benchutil import emit

WRITER_COUNTS = (1, 2, 4, 6)


def concurrent_writes_series(sweep):
    """Per sweep point: the maximum number of WRITEs concurrent with any READ."""
    series = []
    for point in sweep.points:
        history = point.result.history
        max_concurrent = 0
        for entry in history.reads():
            max_concurrent = max(max_concurrent, history.max_concurrent_writes(entry))
        series.append((point.x, max_concurrent))
    return series


def regenerate():
    sweep = sweep_versions_vs_writers(
        writer_counts=WRITER_COUNTS, num_objects=3, scheduler="random", seed=5, writes_per_writer=3, reads_per_reader=6
    )
    versions = sweep.max_versions_series()
    concurrency = concurrent_writes_series(sweep)
    table = format_series(
        "writers",
        {
            "max versions per reply (algorithm C)": versions,
            "max WRITEs concurrent with a READ (|W|)": concurrency,
        },
        title="Algorithm C: reply size vs. write concurrency",
    )
    return versions, concurrency, table


def test_versions_vs_writers(benchmark):
    versions, concurrency, table = benchmark(regenerate)
    emit("versions_vs_writers", table)
    versions_by_writers = dict(versions)
    # More writers -> more versions in flight; the series must be monotone
    # non-decreasing and exceed one version as soon as there is any contention.
    values = [versions_by_writers[w] for w in WRITER_COUNTS]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert versions_by_writers[WRITER_COUNTS[-1]] > versions_by_writers[WRITER_COUNTS[0]]
    assert versions_by_writers[WRITER_COUNTS[-1]] > 1
