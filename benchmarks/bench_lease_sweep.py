"""Extension experiment: the leader-lease grid — the consensus read fast path.

ISSUE 10's lease layer lets the consensus leader answer read-only
coordinator requests (``get-tag-arr``) locally from its applied state
machine while it holds a quorum-proven lease bounded by the election
timeout on the kernel's virtual clock — no log entry, no replication round,
no commit wait per read.  This benchmark plays the consensus workload
through every coordinator protocol at ``replication_factor=3`` + majority +
``consensus_factor=3``, leases off and on, fault-free and with the lease
holder fail-stopping mid-run, and reports per cell: the SNOW verdict and
Lemma-20 column (``max_read_rounds``) the fast path must not disturb, the
commit-latency aggregate, and the lease block — acquisitions / renewals /
expiries, local reads vs read applies, and the commit-bypass read latency.

Two records are emitted: a human-readable table and
``results/BENCH_lease.json`` — the machine-readable ``protocol × leases ×
scenario`` rows tracked across PRs (the lease sibling of
``BENCH_persist.json``).

Expected shape: for the protocols whose reads reach the coordinator as
read-only requests (algorithm B's and C's ``get-tag-arr``), the leased
read latency lands strictly below the unleased run's commit latency —
that is the entire point of the fast path — with SNOW / Lemma-20 /
availability byte-identical.  OCC's only coordinator request (``get-ts``)
*mints* a timestamp, i.e. mutates, so its cells pin the null effect: the
knob on, nothing changes — no lease round is ever started and every
latency column matches the unleased cell.
"""

from __future__ import annotations

from repro.analysis import format_table, lease_grid_rows, sweep_lease

from benchutil import emit, emit_json

PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")
#: the protocols with a read-only coordinator request to accelerate
LEASED_READ_PROTOCOLS = ("algorithm-b", "algorithm-c")
MODES = ("none", "leased")
SCENARIOS = ("steady", "leader-crash")
SEED = 11

HEADERS = [
    "protocol",
    "leases",
    "scenario",
    "SNOW",
    "rounds",
    "avail",
    "commit mean",
    "local/applied",
    "read mean",
    "acq/renew/exp",
]


def regenerate():
    grid = sweep_lease(protocols=PROTOCOLS, seed=SEED)
    rows = lease_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["leases"],
            row["scenario"],
            row["snow"],
            row["max_read_rounds"],
            f"{row['availability']:.2f}",
            row.get("commit_latency_mean", "-"),
            f"{row.get('local_reads', 0)}/{row.get('read_applies', 0)}",
            row.get("lease_read_latency_mean", "-"),
            f"{row.get('lease_acquisitions', 0)}/{row.get('lease_renewals', 0)}/{row.get('lease_expiries', 0)}",
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS, table_rows, title="Leader-lease grid: the consensus read fast path"
    )
    return rows, table


def test_lease_sweep(benchmark):
    rows, table = benchmark(regenerate)
    emit("lease_sweep", table)
    emit_json(
        "lease",
        {"grid": rows, "protocols": list(PROTOCOLS), "seed": SEED},
    )

    cells = {(r["protocol"], r["leases"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * len(MODES) * len(SCENARIOS)

    for protocol in PROTOCOLS:
        for scenario in SCENARIOS:
            off = cells[(protocol, "none", scenario)]
            on = cells[(protocol, "leased", scenario)]
            # The fast path must be invisible in every verdict column:
            # same SNOW, same Lemma-20 one-round reads, full availability.
            assert on["snow"] == off["snow"], (protocol, scenario)
            assert on["consistent"] == off["consistent"], (protocol, scenario)
            assert on["max_read_rounds"] == off["max_read_rounds"], (protocol, scenario)
            assert on["availability"] == 1.0 == off["availability"], (protocol, scenario)

    for protocol in LEASED_READ_PROTOCOLS:
        for scenario in SCENARIOS:
            off = cells[(protocol, "none", scenario)]
            on = cells[(protocol, "leased", scenario)]
            # The headline number: reads served under the lease skip the
            # commit path entirely, so their latency lands strictly below
            # the unleased run's commit latency.
            assert on["local_reads"] >= 1, (protocol, scenario)
            assert on["lease_acquisitions"] >= 1, (protocol, scenario)
            assert (
                on["lease_read_latency_mean"] < off["commit_latency_mean"]
            ), (protocol, scenario, on["lease_read_latency_mean"], off["commit_latency_mean"])
        # Fault-free, every read is eventually lease-served (copies a
        # follower committed before the serve notification count as
        # read applies on top, never instead).
        steady = cells[(protocol, "leased", "steady")]
        assert steady["local_read_ratio"] is not None

    # OCC pins the null effect: no read-only coordinator requests, so the
    # knob changes nothing — no lease round ever starts.
    for scenario in SCENARIOS:
        off = cells[("occ-double-collect", "none", scenario)]
        on = cells[("occ-double-collect", "leased", scenario)]
        assert "lease_acquisitions" not in on, scenario  # no lease activity at all
        assert on["commit_latency_mean"] == off["commit_latency_mean"], scenario
        assert on["total_messages"] == off["total_messages"], scenario
