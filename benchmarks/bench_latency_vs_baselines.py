"""Extension experiment: READ-transaction latency versus the simple-read floor.

Paper claim (Section 1): the *optimal* latency for a READ transaction is the
latency of non-transactional simple reads — one round of non-blocking
parallel requests returning only the requested data — and the SNOW theorem
forces every design to give something up relative to that floor unless it is
in the MWSR + C2C setting.

Reproduction: a read-heavy workload is played through every protocol and the
measured read rounds / latency steps / message counts / versions are reported
next to the measured SNOW verdict.  The expected shape: algorithm A matches
simple reads with full SNOW; algorithm B pays one extra round; algorithm C
pays reply size; Eiger matches the latency but loses S; strict 2PL loses N;
the retry baseline's rounds blow up with contention.
"""

from __future__ import annotations

from repro.analysis import WorkloadSpec, compare_protocols, format_latency_comparison

from benchutil import emit

PROTOCOLS = [
    "simple-rw",
    "algorithm-a",
    "algorithm-b",
    "algorithm-c",
    "eiger",
    "s2pl",
    "occ-double-collect",
]


def regenerate():
    results = compare_protocols(
        PROTOCOLS,
        workload=WorkloadSpec(reads_per_reader=8, writes_per_writer=3, read_size=3, write_size=2, seed=99),
        num_readers=2,
        num_writers=2,
        num_objects=4,
        scheduler="random",
        seed=99,
    )
    return results, format_latency_comparison(results, title="READ latency vs. guarantees (read-heavy workload)")


def test_latency_vs_baselines(benchmark):
    results, table = benchmark(regenerate)
    emit("latency_vs_baselines", table)
    by_name = {r.protocol: r for r in results}

    floor = by_name["simple-rw"].metrics.max_read_rounds()
    assert floor == 1
    # Algorithm A matches the floor with full SNOW.
    assert by_name["algorithm-a"].metrics.max_read_rounds() == floor
    assert by_name["algorithm-a"].snow.satisfies_snow
    # Algorithm B: exactly one extra round, still SNW + one version.
    assert by_name["algorithm-b"].metrics.max_read_rounds() == 2
    assert by_name["algorithm-b"].snow.satisfies_snw
    # Algorithm C: one round (modulo the documented fallback), pays versions.
    assert by_name["algorithm-c"].metrics.max_versions() > 1
    assert by_name["algorithm-c"].snow.satisfies_snw
    # Eiger keeps bounded rounds but is not strictly serializable in general
    # (it may or may not be violated on this particular workload).
    assert by_name["eiger"].metrics.max_read_rounds() <= 2
    # The strong baselines keep S but pay elsewhere.
    assert by_name["s2pl"].snow.strict_serializable
    assert by_name["occ-double-collect"].snow.strict_serializable
    assert by_name["occ-double-collect"].metrics.max_read_rounds() >= 2
