"""Figure 4 / Theorem 2: the two-client (no C2C) impossibility chain.

Paper result: with one reader, one writer and two servers, SNOW is impossible
when clients cannot message each other; Figure 4's executions α, β, γ, η and
the δ-induction push the READ's non-blocking fragments ever earlier until the
READ returns the written values before the WRITE is even invoked.

Reproduction: the chain is replayed over symbolic executions (commutes
checked mechanically, the per-server case analysis recorded as justified
steps), the final history is rejected by the semantic checker, and — the
flip side — the same chain is shown to *fail* at its first step as soon as
the writer is allowed to message the reader (which is exactly what algorithm
A exploits).
"""

from __future__ import annotations

from repro.proofs import c2c_breaks_the_chain, replay_theorem2

from benchutil import emit


def regenerate():
    replay = replay_theorem2()
    blocked, reason = c2c_breaks_the_chain()
    text = replay.describe() + "\n\nWith client-to-client communication allowed:\n  chain blocked: " + str(blocked) + f" ({reason})"
    return replay, blocked, text


def test_fig4_theorem2_replay(benchmark):
    replay, blocked, text = benchmark(regenerate)
    emit("fig4_two_client_chain", text)
    assert replay.ok
    assert replay.checked_steps() >= 3
    assert replay.final_execution.transaction_order(("R1", "W")) == ("R1", "W")
    assert blocked
