"""Figure 2: the anatomy of a READ transaction (fragments I, F_x, F_y, E).

Paper content: Figure 2 depicts the execution fragments the proofs reason
about — the invocation fragment ``I`` at the reader, the non-blocking
fragments ``F_x``/``F_y`` at the servers and the completion fragment ``E``.

Reproduction: the fragments are *extracted from a real execution* of
algorithm A and checked to have exactly the paper's shape (single automaton
each, request-receipt to value-send with no intervening input, values carried
to the completion fragment), and the commuting lemma is exercised on the two
server fragments.
"""

from __future__ import annotations

from repro.ioa import ActionKind, FIFOScheduler
from repro.proofs.fragments import can_commute, extract_read_fragments, returned_value
from repro.protocols import get_protocol

from benchutil import emit


def regenerate():
    handle = get_protocol("algorithm-a").build(num_readers=1, num_writers=1, num_objects=2, scheduler=FIFOScheduler())
    w = handle.submit_write({"ox": "x1", "oy": "y1"}, writer="w1")
    r = handle.submit_read(["ox", "oy"], after=[w])
    handle.run_to_completion()
    fragments = extract_read_fragments(handle.trace(), r, handle.readers[0], handle.servers)
    commute = can_commute(fragments.fragment_for_server("sx"), fragments.fragment_for_server("sy"))
    lines = [
        "Fragments extracted from a real execution of algorithm A:",
        "  " + fragments.describe(),
        "",
        "Fragment anatomy:",
        f"  I  : {len(fragments.invocation)} actions, all at {fragments.invocation.single_actor()} "
        f"(INV(R) through the later request send)",
    ]
    for server, fragment in fragments.non_blocking:
        lines.append(
            f"  F_{server}: {len(fragment)} actions, all at {server}, no intervening input action; "
            f"sends value {returned_value(fragment)!r}"
        )
    lines.append(
        f"  E  : {len(fragments.completion)} actions, all at {fragments.completion.single_actor()} "
        f"(later value receipt through RESP(R))"
    )
    lines.append("")
    lines.append(f"Lemma 2/Appendix B commuting check on F_sx ∘ F_sy: allowed={commute.allowed} ({commute.reason})")
    return fragments, commute, "\n".join(lines)


def test_fig2_fragment_anatomy(benchmark):
    fragments, commute, text = benchmark(regenerate)
    emit("fig2_fragments", text)
    assert fragments.invocation.actions[0].kind == ActionKind.INVOKE
    assert fragments.completion.actions[-1].kind == ActionKind.RESPOND
    for server, fragment in fragments.non_blocking:
        assert fragment.single_actor() == server
        assert fragment.actions[0].kind == ActionKind.RECV
        assert fragment.actions[-1].kind == ActionKind.SEND
    assert returned_value(fragments.fragment_for_server("sx")) == "x1"
    assert returned_value(fragments.fragment_for_server("sy")) == "y1"
    assert commute.allowed
