"""Figure 1(a): *Is SNOW possible?* — the feasibility matrix.

Paper result: SNOW is possible only in the single-reader settings (2 clients
or MWSR) *with* client-to-client communication; it is impossible without C2C
and impossible with three or more clients even with C2C.

Reproduction: possible cells are verified by running algorithm A under many
schedules and checking all four SNOW properties; impossible cells are
witnessed by breaking the natural one-round/one-version/non-blocking
candidate with an adversarial or randomized schedule (the actual
impossibility arguments are replayed in bench_fig3/bench_fig4).
"""

from __future__ import annotations

from repro.core.feasibility import feasibility_matrix, format_feasibility_matrix

from benchutil import emit


def regenerate():
    verdicts = feasibility_matrix(schedules=5)
    lines = [format_feasibility_matrix(verdicts), "", "Per-cell evidence:"]
    for verdict in verdicts:
        lines.append("  * " + verdict.describe())
    return verdicts, "\n".join(lines)


def test_fig1a_feasibility_matrix(benchmark):
    verdicts, text = benchmark(regenerate)
    emit("fig1a_feasibility", text)
    expected = {
        "two-clients-c2c": True,
        "two-clients-no-c2c": False,
        "mwsr-c2c": True,
        "mwsr-no-c2c": False,
        "three-clients-c2c": False,
        "three-clients-no-c2c": False,
    }
    for verdict in verdicts:
        assert verdict.snow_possible == expected[verdict.setting.name], verdict.describe()
