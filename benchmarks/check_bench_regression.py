#!/usr/bin/env python3
"""Bench-regression gate: diff regenerated BENCH_*.json against HEAD.

The tiny-grid CI job reruns every sweep (they are deterministic per seed),
which rewrites ``benchmarks/results/BENCH_*.json`` in the working tree.
This script then compares each row's **invariant columns** — availability,
the SNOW verdict string, the consistency verdict and the unavailability
window — against the version committed at ``HEAD`` and fails the build when
any of them regressed:

* ``availability`` may not decrease;
* ``snow`` must be identical;
* ``consistent`` may not degrade from ``True``;
* ``unavailability_window`` may not increase.

Wall-clock columns get a **bounded-drift** rule instead of an invariant:
``events_per_sec`` in ``BENCH_throughput.json`` may fluctuate with the
machine, but falling below ``DRIFT_FLOOR`` × the committed baseline fails
the gate — runner variance passes, an order-of-magnitude kernel slowdown
does not.  Latency columns drift the other way: ``lease_read_latency_mean``
in ``BENCH_lease.json`` may move with intentional protocol changes, but
climbing above ``1/DRIFT_FLOOR`` × the committed baseline fails the gate —
the read fast path quietly degenerating back into the commit path is a
regression even when every verdict column still passes.

Rows are matched on their identity columns (protocol / scenario / plan /
factors).  A row present at HEAD but missing from the regenerated grid is a
failure too — a silently dropped cell hides regressions.  Brand-new files
and brand-new rows pass (they have no baseline yet); a changed value in a
non-invariant column (latency means, message counts) is reported but does
not fail the gate.

Usage: ``python benchmarks/check_bench_regression.py`` from the repo root
(or anywhere inside the repository — paths are derived from this file).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
RESULTS = BENCH_DIR / "results"

#: columns identifying one grid cell (whichever subset a row carries)
IDENTITY = (
    "protocol",
    "scenario",
    "plan",
    "replication_factor",
    "consensus_factor",
    "quorum",
    "persistence",
    "leases",
)
#: the gated columns and their comparison direction
INVARIANTS: Tuple[Tuple[str, str], ...] = (
    ("availability", "not-below"),
    ("snow", "equal"),
    ("consistent", "not-degraded"),
    ("unavailability_window", "not-above"),
)
#: wall-clock columns gated per file: new >= DRIFT_FLOOR * baseline.  The
#: floor is deliberately loose — CI runners differ from the machines that
#: committed the baselines; this catches collapses, not noise.
DRIFT_FLOOR = 0.25
DRIFT_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "BENCH_throughput.json": ("events_per_sec",),
    "BENCH_obs.json": ("events_per_sec",),
}
#: latency columns gated the other way round: lower is better, so the gate
#: is a ceiling — new <= baseline / DRIFT_FLOOR.  Guards the lease read
#: fast path: its latency creeping back up toward the commit path fails
#: the build even though no verdict column moved.
DRIFT_CEILING_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "BENCH_lease.json": ("lease_read_latency_mean",),
}


def committed_version(path: Path) -> Optional[Dict[str, Any]]:
    """The file's content at HEAD, or None when it is new there."""
    rel = path.relative_to(REPO_ROOT).as_posix()
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel}"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def row_key(row: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple((field, row[field]) for field in IDENTITY if field in row)


def index_rows(payload: Dict[str, Any]) -> Dict[Tuple, Dict[str, Any]]:
    rows = payload.get("grid", [])
    indexed: Dict[Tuple, Dict[str, Any]] = {}
    for row in rows:
        indexed[row_key(row)] = row
    return indexed


def compare_cell(
    old: Dict[str, Any],
    new: Dict[str, Any],
    drift_columns: Tuple[str, ...] = (),
    ceiling_columns: Tuple[str, ...] = (),
) -> List[str]:
    problems: List[str] = []
    for column in drift_columns:
        before, after = old.get(column), new.get(column)
        if not isinstance(before, (int, float)) or before <= 0:
            continue
        if not isinstance(after, (int, float)) or after < DRIFT_FLOOR * before:
            problems.append(
                f"{column}: {before!r} -> {after!r} "
                f"(below the {DRIFT_FLOOR:.0%} drift floor)"
            )
    for column in ceiling_columns:
        before, after = old.get(column), new.get(column)
        if not isinstance(before, (int, float)) or before <= 0:
            continue
        if not isinstance(after, (int, float)) or after > before / DRIFT_FLOOR:
            problems.append(
                f"{column}: {before!r} -> {after!r} "
                f"(above the {1 / DRIFT_FLOOR:.0f}x drift ceiling)"
            )
    for column, rule in INVARIANTS:
        if column not in old:
            continue
        before, after = old.get(column), new.get(column)
        if rule == "equal" and after != before:
            problems.append(f"{column}: {before!r} -> {after!r}")
        elif rule == "not-below" and isinstance(before, (int, float)):
            if not isinstance(after, (int, float)) or after < before:
                problems.append(f"{column}: {before!r} -> {after!r}")
        elif rule == "not-above" and isinstance(before, (int, float)):
            if not isinstance(after, (int, float)) or after > before:
                problems.append(f"{column}: {before!r} -> {after!r}")
        elif rule == "not-degraded" and before is True and after is not True:
            problems.append(f"{column}: True -> {after!r}")
    return problems


def main() -> int:
    failures: List[str] = []
    checked = 0
    for path in sorted(RESULTS.glob("BENCH_*.json")):
        baseline = committed_version(path)
        if baseline is None:
            print(f"[bench-regression] {path.name}: new file, no baseline — skipped")
            continue
        current = json.loads(path.read_text(encoding="utf-8"))
        old_rows = index_rows(baseline)
        new_rows = index_rows(current)
        drift_columns = DRIFT_COLUMNS.get(path.name, ())
        ceiling_columns = DRIFT_CEILING_COLUMNS.get(path.name, ())
        for key, old_row in old_rows.items():
            checked += 1
            label = f"{path.name} {dict(key)}"
            new_row = new_rows.get(key)
            if new_row is None:
                failures.append(f"{label}: row disappeared from the regenerated grid")
                continue
            for problem in compare_cell(old_row, new_row, drift_columns, ceiling_columns):
                failures.append(f"{label}: {problem}")
        extra = set(new_rows) - set(old_rows)
        for key in sorted(extra):
            print(f"[bench-regression] {path.name}: new row {dict(key)} (no baseline)")
    print(f"[bench-regression] checked {checked} baseline rows")
    if failures:
        print("\n[bench-regression] REGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("[bench-regression] ok — no invariant or drift-gated column regressed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
