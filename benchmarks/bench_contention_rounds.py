"""Extension experiment: read rounds under growing write contention.

This is the quantitative version of why the paper's *bounded* algorithms
matter: the prior unbounded designs (our validating retry baseline) need more
and more rounds as write contention grows, while algorithms B and C stay at
their fixed budgets (2 rounds / 1 round) no matter how many writers are
racing the reader.
"""

from __future__ import annotations

from repro.analysis import format_series, sweep_rounds_vs_contention

from benchutil import emit

WRITER_COUNTS = (1, 2, 4, 6)
PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")


def regenerate():
    sweeps = sweep_rounds_vs_contention(
        protocols=PROTOCOLS, writer_counts=WRITER_COUNTS, num_objects=2, scheduler="random", seed=13
    )
    table = format_series(
        "writers",
        {name: sweeps[name].max_rounds_series() for name in PROTOCOLS},
        title="Worst-case READ rounds vs. concurrent writers",
    )
    return sweeps, table


def test_rounds_vs_contention(benchmark):
    sweeps, table = benchmark(regenerate)
    emit("contention_rounds", table)
    b_rounds = dict(sweeps["algorithm-b"].max_rounds_series())
    c_rounds = dict(sweeps["algorithm-c"].max_rounds_series())
    occ_rounds = dict(sweeps["occ-double-collect"].max_rounds_series())
    # The bounded algorithms stay at their budgets at every contention level.
    assert set(b_rounds.values()) == {2}
    assert all(rounds <= 2 for rounds in c_rounds.values())
    # The retry baseline needs at least its two collects and degrades with contention.
    assert occ_rounds[WRITER_COUNTS[0]] >= 2
    assert occ_rounds[WRITER_COUNTS[-1]] >= occ_rounds[WRITER_COUNTS[0]]
    assert max(occ_rounds.values()) > 2
