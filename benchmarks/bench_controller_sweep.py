"""Extension experiment: the self-healing grid — the controller closes the loop.

The rebalancing controller (:mod:`repro.consensus.controller`) derives
membership changes from observed state instead of executing hand-authored
plans: liveness probes on the virtual clock, a relative (sibling-witness)
failure detector, and derived ``ReconfigRequest``\\ s submitted to the
joint-consensus driver.  This benchmark measures the whole loop per protocol
family at ``replication_factor=3`` + majority: a fault-free cell (the
controller must derive *nothing*) next to ``auto-heal-dead-replica`` — the
last replica of the first object's group fail-stops with **no ReconfigPlan
anywhere**, and the controller must detect it and restore full group
strength on its own.

Two records are emitted: a human-readable table and
``results/BENCH_controller.json`` — the machine-readable ``protocol ×
scenario`` rows tracked across PRs (the self-healing sibling of
``BENCH_reconfig.json``).

Expected shape: *self-healing is a non-event* — every family completes with
availability 1.0, exactly one detection and one derived replacement, an
unavailability window of 0, convergence to the replaced group, and
byte-for-byte the fault-free SNOW / consistency verdicts of its own
baseline.  The s2pl baseline is absent by design: its lock rounds block on
a fail-stopped replica (giving up N is its defining property).
"""

from __future__ import annotations

from repro.analysis import controller_grid_rows, format_table, sweep_controller

from benchutil import emit, emit_json

PROTOCOLS = (
    "algorithm-a",
    "algorithm-b",
    "algorithm-c",
    "occ-double-collect",
    "eiger",
    "naive-snow",
)
SEED = 17

HEADERS = [
    "protocol",
    "scenario",
    "SNOW",
    "avail",
    "dead",
    "plans",
    "healed",
    "time-to-heal",
    "unavail window",
    "msgs",
]


def regenerate():
    grid = sweep_controller(protocols=PROTOCOLS, seed=SEED)
    rows = controller_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            row.get("dead_detected", "-"),
            row.get("plans_replace", 0) + row.get("plans_grow", 0),
            row.get("healed", "-"),
            row.get("time_to_heal") if row.get("time_to_heal") is not None else "-",
            row.get("unavailability_window", "-"),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS,
        table_rows,
        title="Self-healing grid: the controller replaces dead replicas autonomously",
    )
    return grid, rows, table


def test_controller_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("controller_sweep", table)
    emit_json(
        "controller",
        {"grid": rows, "protocols": list(PROTOCOLS), "seed": SEED},
    )

    cells = {(r["protocol"], r["scenario"]): r for r in rows}
    assert len(rows) == len(PROTOCOLS) * 2

    for protocol in PROTOCOLS:
        # Fault-free: the controller observes but derives nothing.
        baseline = cells[(protocol, "none")]
        assert baseline["availability"] == 1.0, protocol
        assert baseline["dead_detected"] == 0, protocol
        assert baseline["plans_replace"] == 0 and baseline["plans_grow"] == 0, protocol
        assert baseline["probes"] > 0, protocol

        # Auto-heal: the headline acceptance numbers — the dead replica is
        # detected and replaced with no hand-authored plan, at availability
        # 1.0, a measured unavailability window of 0, and the fault-free
        # SNOW / consistency verdicts riding through unchanged.
        healed = cells[(protocol, "auto-heal-dead-replica")]
        assert healed["availability"] == 1.0, protocol
        assert healed["dead_detected"] == 1, protocol
        assert healed["plans_replace"] == 1, protocol
        assert healed["healed"] == 1 and healed["converged"], protocol
        assert healed["unavailability_window"] == 0, protocol
        assert healed["time_to_heal"] is not None and healed["time_to_heal"] > 0, protocol
        assert healed["epochs"] == 2, protocol  # one joint entry + one commit
        assert healed["retired_servers"] == 1, protocol
        assert healed["transfer_versions"] >= 1, protocol  # the replacement synced
        assert healed["snow"] == baseline["snow"], protocol
        assert healed["consistent"] == baseline["consistent"], protocol
