"""Raw kernel throughput: events/sec × protocol × replication/consensus factor.

ROADMAP item 2's measurement half: how many scheduler events per second the
deterministic kernel executes for each protocol family, at the seed setting
(``rf=1/cf=1``), under replication (``rf=3`` + majority) and — for the
coordinator protocols — with the coordinator consensus-replicated (``cf=3``).

Two kinds of columns land in ``results/BENCH_throughput.json``:

* **deterministic** ones (``txns``, ``events``, ``actions``,
  ``total_messages``) — identical on every machine, diffable across PRs;
* ``events_per_sec`` — wall clock, machine-dependent, gated by
  ``check_bench_regression.py`` with a *bounded-drift* rule (an
  order-of-magnitude collapse fails; ordinary runner variance does not).

The human-readable table additionally shows the kernel profiler's bucket
breakdown (scheduler poll/choose/dispatch/trace-append) for one
representative cell, measured on a separate profiled run so profiling
overhead never contaminates the timed cells.

Run directly (``python benchmarks/bench_throughput.py --quick``) for the CI
perf-smoke job: one fast cell per tier, printed, nothing rewritten.
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))  # benchutil, from any cwd

from benchutil import emit, emit_json  # noqa: E402

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.analysis import WorkloadSpec, format_table, generate_workload, submit_workload  # noqa: E402
from repro.ioa import FIFOScheduler  # noqa: E402
from repro.obs import ObservabilityPlane  # noqa: E402
from repro.protocols import get_protocol, protocol_names  # noqa: E402

SEED = 17
REPS = 5  # events/sec is best-of-REPS: robust against noisy reps (container
#           wall-clock speed oscillates on a seconds timescale, so each cell
#           needs several chances to catch an unthrottled window)


def throughput_cells():
    """(protocol, rf, cf) grid: every protocol at the seed setting, under
    replication (rf=3 and the rf=5 scaling point), and — for the coordinator
    protocols — consensus-replicated (cf=3 and the cf=5 scaling point).  The
    rf=5/cf=5 cells exist to make the quadratic-vs-linear kernel difference
    visible: a rebuild-everything poll loop degrades superlinearly in the
    in-flight event count, the incremental frontier does not."""
    cells = []
    for name in protocol_names():
        cells.append((name, 1, 1))
        cells.append((name, 3, 1))
        cells.append((name, 5, 1))
        if get_protocol(name).has_coordinator:
            cells.append((name, 3, 3))
            cells.append((name, 5, 5))
    return cells


def batched_cells():
    """The high-fan-out cells re-run with the batching knobs on.

    These rows land in a separate ``batched`` section of the JSON payload —
    deliberately outside ``grid`` so the bounded-drift gate (which keys on
    (protocol, rf, cf) and reads only ``grid``) keeps comparing like with
    like: unbatched against unbatched."""
    cells = []
    for name in protocol_names():
        cells.append((name, 3, 1, True, False))
        if get_protocol(name).has_coordinator:
            cells.append((name, 3, 3, True, True))
    return cells


def run_cell(
    protocol_name,
    rf,
    cf,
    spec,
    reps=REPS,
    obs=None,
    fanout_batching=False,
    consensus_batching=False,
    leases=None,
):
    """Build + run one cell ``reps`` times; returns (row, handle)."""
    protocol = get_protocol(protocol_name)
    best_rate, elapsed_best, handle = 0.0, None, None
    for _ in range(reps):
        kwargs = dict(
            num_readers=1 if not protocol.supports_multiple_readers else 2,
            num_writers=2,
            num_objects=3,
            scheduler=FIFOScheduler(),
            seed=SEED,
        )
        if rf > 1:
            kwargs.update(replication_factor=rf, quorum="majority")
        if cf > 1:
            kwargs.update(consensus_factor=cf)
        if fanout_batching:
            kwargs.update(fanout_batching=True)
        if consensus_batching:
            kwargs.update(consensus_batching=True)
        if leases is not None:
            kwargs.update(leases=leases)
        if obs is not None:
            kwargs.update(obs=obs)
        handle = protocol.build(**kwargs)
        workload = generate_workload(spec, handle.readers, handle.writers, handle.objects)
        submit_workload(handle, workload)
        started = perf_counter()
        handle.run_to_completion()
        elapsed = perf_counter() - started
        rate = handle.simulation.steps_taken / elapsed if elapsed > 0 else 0.0
        if rate > best_rate:
            best_rate, elapsed_best = rate, elapsed
    row = {
        "protocol": protocol_name,
        "replication_factor": rf,
        "consensus_factor": cf,
        "fanout_batching": fanout_batching,
        "consensus_batching": consensus_batching,
        "txns": len(handle.transaction_records()),
        "events": handle.simulation.steps_taken,
        "actions": len(handle.trace()),
        "total_messages": sum(r.messages_sent for r in handle.transaction_records()),
        "elapsed_ms": round((elapsed_best or 0.0) * 1e3, 2),
        "events_per_sec": round(best_rate, 1),
    }
    return row, handle


def regenerate(spec=None, reps=REPS):
    spec = spec or WorkloadSpec(reads_per_reader=6, writes_per_writer=6, seed=SEED)
    rows = [run_cell(name, rf, cf, spec, reps=reps)[0] for name, rf, cf in throughput_cells()]
    batched_rows = [
        run_cell(name, rf, cf, spec, reps=reps, fanout_batching=fb, consensus_batching=cb)[0]
        for name, rf, cf, fb, cb in batched_cells()
    ]

    # One profiled run (obs plane + wall-clock profiler) for the bucket
    # breakdown; separate from the timed reps so instrumentation overhead
    # never touches the events_per_sec column.
    plane = ObservabilityPlane(profile=True)
    _, profiled = run_cell("algorithm-b", 3, 1, spec, reps=1, obs=plane)
    profile_report = plane.profiler.report(steps=profiled.simulation.steps_taken)

    headers = [
        "protocol", "rf", "cf", "batch", "txns", "events", "actions", "msgs", "events/sec",
    ]

    def table_row(r):
        knobs = ("f" if r["fanout_batching"] else "") + ("c" if r["consensus_batching"] else "")
        return [
            r["protocol"], r["replication_factor"], r["consensus_factor"],
            knobs or "-", r["txns"], r["events"], r["actions"], r["total_messages"],
            f"{r['events_per_sec']:,.0f}",
        ]

    table = format_table(headers, [table_row(r) for r in rows + batched_rows])
    return rows, batched_rows, table, profile_report


def test_kernel_throughput(benchmark):
    rows, batched_rows, table, profile_report = benchmark.pedantic(
        regenerate, rounds=1, iterations=1
    )
    emit("throughput", table + "\n\n" + profile_report)
    emit_json(
        "throughput",
        {
            "grid": rows,
            "batched": batched_rows,
            "reps": REPS,
            "workload": {"reads_per_reader": 6, "writes_per_writer": 6, "seed": SEED},
        },
    )
    assert len(rows) == len(throughput_cells())
    assert len(batched_rows) == len(batched_cells())
    for row in rows:
        # run_to_completion already guarantees liveness; pin the shape too.
        assert row["events"] > 0 and row["txns"] > 0, row
        assert row["events_per_sec"] > 0, row
        # Deterministic columns must be reproducible run-to-run on any box.
        assert row["actions"] >= row["events"], row


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    if quick:
        spec = WorkloadSpec(reads_per_reader=3, writes_per_writer=3, seed=SEED)
        cells = [("algorithm-b", 1, 1), ("algorithm-b", 3, 1), ("algorithm-b", 3, 3)]
        lines = ["perf-smoke (quick): kernel events/sec"]
        for name, rf, cf in cells:
            row, _ = run_cell(name, rf, cf, spec, reps=2)
            lines.append(
                f"  {name} rf={rf} cf={cf}: {row['events_per_sec']:>10,.0f} events/sec "
                f"({row['events']} events, {row['elapsed_ms']} ms)"
            )
        # Per-PR profiler breakdown: where a kernel step's wall time goes
        # (scheduler poll/choose/dispatch/trace-append).  Printed for the CI
        # log and written to results/ so the perf-smoke job can upload it as
        # an artifact — trend-readable across PRs without rerunning anything.
        plane = ObservabilityPlane(profile=True)
        _, profiled = run_cell("algorithm-b", 3, 3, spec, reps=1, obs=plane)
        lines.append("")
        lines.append("KernelProfiler bucket breakdown (algorithm-b rf=3 cf=3):")
        lines.append(plane.profiler.report(steps=profiled.simulation.steps_taken))
        # One monitors-on cell (streaming invariants + health/SLO plane):
        # the cheap per-PR check that the online monitors stay silent on a
        # clean run, plus the health report the CI job uploads as an
        # artifact — SLO attainment trend-readable across PRs.
        watched = ObservabilityPlane(monitors=True, health=True)
        row, _ = run_cell("algorithm-b", 3, 3, spec, reps=1, obs=watched)
        alerts = watched.monitors.alerts
        lines.append("")
        lines.append(
            f"monitors-on cell (algorithm-b rf=3 cf=3): "
            f"{row['events_per_sec']:,.0f} events/sec, {len(alerts)} invariant alerts"
        )
        if alerts:
            lines.extend(f"  ALERT: {a.describe()}" for a in alerts)
        # One leases-on cell: the consensus read fast path under the same
        # quick workload.  The registry counters show the lease actually
        # engaging (acquisitions + local reads) so a silent wiring break is
        # visible in the per-PR profile artifact, not just in bench-smoke.
        leased_plane = ObservabilityPlane(monitors=True)
        row, _ = run_cell("algorithm-b", 3, 3, spec, reps=1, obs=leased_plane, leases=True)
        reg = leased_plane.registry
        lines.append("")
        lines.append(
            f"leases-on cell (algorithm-b rf=3 cf=3): "
            f"{row['events_per_sec']:,.0f} events/sec, "
            f"{reg.counter_value('consensus.events', kind='lease-acquired')} leases acquired, "
            f"{reg.counter_value('consensus.events', kind='local-read')} local reads, "
            f"{len(leased_plane.monitors.alerts)} invariant alerts"
        )
        alerts = tuple(alerts) + tuple(leased_plane.monitors.alerts)
        report = "\n".join(lines)
        print(report)
        out = Path(__file__).resolve().parent / "results" / "perf_smoke_profile.txt"
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n", encoding="utf-8")
        health_out = out.parent / "perf_smoke_health.txt"
        health_out.write_text(watched.health_view.render() + "\n", encoding="utf-8")
        print(f"\nhealth report -> {health_out}")
        print(watched.health_view.render())
        if alerts:
            raise SystemExit(1)
    else:
        rows, batched_rows, table, profile_report = regenerate()
        emit("throughput", table + "\n\n" + profile_report)
        emit_json(
            "throughput",
            {
                "grid": rows,
                "batched": batched_rows,
                "reps": REPS,
                "workload": {"reads_per_reader": 6, "writes_per_writer": 6, "seed": SEED},
            },
        )
