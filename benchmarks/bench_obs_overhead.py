"""Observability overhead: events/sec × protocol × obs configuration.

ISSUE 8's measurement half: what the online observability plane costs.  Each
protocol runs the same rf=3/cf=3 workload under four configurations —

* ``off`` — no plane at all (the seed's default);
* ``metrics`` — the metrics registry observer (``observe=True``);
* ``monitors`` — metrics + streaming invariant monitors + the health/SLO
  plane (everything on);
* ``sampled`` — metrics with the trace in ``sampled(rate=0.1)`` mode, the
  long-run configuration: counters/monitors stay exact while only a
  deterministic ~10% of send/recv records are retained.

Rows land in ``results/BENCH_obs.json`` keyed (protocol, scenario) so the
bounded-drift gate in ``check_bench_regression.py`` covers ``events_per_sec``
the same way it covers the raw-throughput grid.  The deterministic columns
(``events``, ``actions``, ``retained``, ``alerts``) are identical on every
machine: ``events`` must not vary across scenarios (the plane only listens)
and ``alerts`` must be 0 (clean runs trip no monitor).

Run directly (``python benchmarks/bench_obs_overhead.py``) to regenerate and
additionally verify the sampling win: the profiler's ``trace_append`` bucket
under sampled mode must come in at most half of full mode's (wall clock, so
checked here — never in pytest, where a noisy shared runner would flake).
"""

from __future__ import annotations

import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent))  # benchutil, from any cwd

from benchutil import emit, emit_json  # noqa: E402

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.analysis import WorkloadSpec, format_table, generate_workload, submit_workload  # noqa: E402
from repro.ioa import FIFOScheduler, TraceMode  # noqa: E402
from repro.obs import KernelProfiler, ObservabilityPlane  # noqa: E402
from repro.protocols import get_protocol  # noqa: E402

SEED = 17
REPS = 3  # best-of: see bench_throughput.py on container clock oscillation
PROTOCOLS = ("algorithm-b", "algorithm-c", "occ-double-collect")
SAMPLE_RATE = 0.1


def scenarios():
    """scenario name -> (plane factory, trace mode).  Factories, not
    instances: a plane observes exactly one simulation."""
    return (
        ("off", lambda: None, None),
        ("metrics", lambda: ObservabilityPlane(), None),
        ("monitors", lambda: ObservabilityPlane(monitors=True, health=True), None),
        ("sampled", lambda: ObservabilityPlane(), TraceMode.sampled(SAMPLE_RATE, seed=SEED)),
    )


def run_cell(protocol_name, scenario, make_plane, trace_mode, spec, reps=REPS):
    """Build + run one (protocol, scenario) cell ``reps`` times."""
    protocol = get_protocol(protocol_name)
    best_rate, elapsed_best, handle, plane = 0.0, None, None, None
    for _ in range(reps):
        plane = make_plane()
        kwargs = dict(
            num_readers=2,
            num_writers=2,
            num_objects=3,
            scheduler=FIFOScheduler(),
            seed=SEED,
            replication_factor=3,
            quorum="majority",
            consensus_factor=3,
        )
        if plane is not None:
            kwargs.update(obs=plane)
        if trace_mode is not None:
            kwargs.update(trace_mode=trace_mode)
        handle = protocol.build(**kwargs)
        workload = generate_workload(spec, handle.readers, handle.writers, handle.objects)
        submit_workload(handle, workload)
        started = perf_counter()
        handle.run_to_completion()
        elapsed = perf_counter() - started
        rate = handle.simulation.steps_taken / elapsed if elapsed > 0 else 0.0
        if rate > best_rate:
            best_rate, elapsed_best = rate, elapsed
    trace = handle.simulation.trace
    alerts = len(plane.monitors.alerts) if plane is not None and plane.monitors else 0
    row = {
        "protocol": protocol_name,
        "scenario": scenario,
        "replication_factor": 3,
        "consensus_factor": 3,
        "events": handle.simulation.steps_taken,
        "actions": trace.total_appended,
        "retained": len(trace),
        "alerts": alerts,
        "elapsed_ms": round((elapsed_best or 0.0) * 1e3, 2),
        "events_per_sec": round(best_rate, 1),
    }
    return row, handle


def regenerate(spec=None, reps=REPS):
    spec = spec or WorkloadSpec(reads_per_reader=6, writes_per_writer=6, seed=SEED)
    rows = []
    for name in PROTOCOLS:
        baseline_events = None
        for scenario, make_plane, trace_mode in scenarios():
            row, _ = run_cell(name, scenario, make_plane, trace_mode, spec, reps=reps)
            if baseline_events is None:
                baseline_events = row["events"]
            # The plane and the trace mode only *listen*: the executed run —
            # and therefore the step count — must be identical per protocol.
            assert row["events"] == baseline_events, (name, scenario, row)
            assert row["alerts"] == 0, (name, scenario, row)
            rows.append(row)

    headers = ["protocol", "scenario", "events", "actions", "retained", "events/sec"]
    table = format_table(
        headers,
        [
            [
                r["protocol"], r["scenario"], r["events"], r["actions"],
                r["retained"], f"{r['events_per_sec']:,.0f}",
            ]
            for r in rows
        ],
    )
    return rows, table


def trace_append_seconds(trace_mode, spec):
    """Wall seconds spent in ``trace.append`` for one bare profiled run (no
    metrics observer riding the append, so the bucket isolates retention
    cost — the thing sampling is supposed to cut)."""
    protocol = get_protocol("algorithm-b")
    kwargs = dict(
        num_readers=2,
        num_writers=2,
        num_objects=3,
        scheduler=FIFOScheduler(),
        seed=SEED,
        replication_factor=3,
        quorum="majority",
        consensus_factor=3,
    )
    if trace_mode is not None:
        kwargs.update(trace_mode=trace_mode)
    handle = protocol.build(**kwargs)
    profiler = KernelProfiler()
    profiler.install(handle.simulation)
    workload = generate_workload(spec, handle.readers, handle.writers, handle.objects)
    submit_workload(handle, workload)
    handle.run_to_completion()
    return profiler.seconds("trace_append"), profiler.count("trace_append")


def test_obs_overhead(benchmark):
    rows, table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    emit("obs_overhead", table)
    emit_json(
        "obs",
        {
            "grid": rows,
            "reps": REPS,
            "sample_rate": SAMPLE_RATE,
            "workload": {"reads_per_reader": 6, "writes_per_writer": 6, "seed": SEED},
        },
    )
    assert len(rows) == len(PROTOCOLS) * len(scenarios())
    for row in rows:
        assert row["events"] > 0 and row["events_per_sec"] > 0, row
        if row["scenario"] == "sampled":
            # Sampling must actually drop records — and only send/recv ones,
            # so the retained count stays well above rate * actions.
            assert row["retained"] < row["actions"], row
        else:
            assert row["retained"] == row["actions"], row


if __name__ == "__main__":
    spec = WorkloadSpec(reads_per_reader=6, writes_per_writer=6, seed=SEED)
    rows, table = regenerate(spec)
    emit("obs_overhead", table)
    emit_json(
        "obs",
        {
            "grid": rows,
            "reps": REPS,
            "sample_rate": SAMPLE_RATE,
            "workload": {"reads_per_reader": 6, "writes_per_writer": 6, "seed": SEED},
        },
    )
    # The sampling win, measured where wall clock is allowed to matter:
    # best-of-REPS trace_append seconds, full vs sampled retention.
    big = WorkloadSpec(reads_per_reader=12, writes_per_writer=12, seed=SEED)
    full_s = min(trace_append_seconds(None, big)[0] for _ in range(REPS))
    sampled_s = min(trace_append_seconds(TraceMode.sampled(SAMPLE_RATE, seed=SEED), big)[0] for _ in range(REPS))
    ratio = full_s / sampled_s if sampled_s > 0 else float("inf")
    print(
        f"[bench_obs] trace_append: full={full_s * 1e3:.2f} ms, "
        f"sampled={sampled_s * 1e3:.2f} ms ({ratio:.1f}x)"
    )
    if ratio < 2.0:
        print("[bench_obs] WARNING: sampled mode cut trace_append by < 2x", file=sys.stderr)
        raise SystemExit(1)
