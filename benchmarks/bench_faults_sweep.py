"""Extension experiment: the chaos grid — protocols × fault scenarios.

The paper proves what SNOW protocols guarantee on *reliable* asynchronous
channels; a deployed system (an Eiger-style store under TAO-like read traffic)
lives instead with latency tails, packet loss, duplication, server crashes and
network partitions.  This benchmark plays the same read-heavy workload through
every protocol under every standard fault scenario
(``repro.faults.scenarios``) **plus the partition grid** — partition placement
(client↔shard vs shard↔shard) × partition duration — and reports, per cell:
the measured SNOW verdict, the CAP-style pair availability
(completed/submitted) and consistency (did S survive), latency-under-fault
for the reads that did complete, and the retransmission traffic the transport
retry layer needed.

Two records are emitted: a human-readable table next to the other regenerated
figures, and ``results/BENCH_faults.json`` — stable machine-readable rows so
the availability/consistency trajectory is tracked across PRs.

Expected shape: the fault-free column reproduces the reliable-kernel numbers;
latency degrades under slow/tail-latency/lossy networks while availability
stays 1.0 (retry heals fair loss); the fail-stop scenario costs availability
on every protocol that must touch the dead shard; healed partitions cost only
latency (the transport parks and redelivers), with longer durations costing
more.
"""

from __future__ import annotations

from repro.analysis import fault_grid_rows, format_table, sweep_fault_grid
from repro.faults import fail_stop, partition_grid_scenarios, standard_fault_scenarios

from benchutil import emit, emit_json

PROTOCOLS = ("simple-rw", "algorithm-b", "algorithm-c", "eiger")
NUM_OBJECTS = 2
NUM_READERS = 2
NUM_WRITERS = 2
SEED = 7
CRASH_SERVER = "sx"  # the server holding the first object of a 2-object system
CLIENTS = ("r1", "r2", "w1", "w2")
SERVERS = ("sx", "sy")
PARTITION_DURATIONS = (20, 60)

HEADERS = [
    "protocol",
    "scenario",
    "SNOW",
    "avail",
    "consistent",
    "read vlat (mean)",
    "read vlat (p95)",
    "retransmits",
    "dropped",
    "msgs",
]


def scenarios():
    grid_scenarios = standard_fault_scenarios(seed=SEED, crash_server=CRASH_SERVER)
    grid_scenarios["fail-stop"] = fail_stop(server=CRASH_SERVER, at=12, seed=SEED)
    # The partition grid: placement (client↔shard / shard↔shard) × duration.
    grid_scenarios.update(
        partition_grid_scenarios(
            clients=CLIENTS, servers=SERVERS, durations=PARTITION_DURATIONS, seed=SEED
        )
    )
    return grid_scenarios


def regenerate():
    grid = sweep_fault_grid(
        protocols=PROTOCOLS,
        scenarios=scenarios(),
        num_readers=NUM_READERS,
        num_writers=NUM_WRITERS,
        num_objects=NUM_OBJECTS,
        seed=SEED,
    )
    rows = fault_grid_rows(grid)
    table_rows = [
        [
            row["protocol"],
            row["scenario"],
            row["snow"],
            f"{row['availability']:.2f}",
            {True: "yes", False: "NO", None: "-"}[row.get("consistent")],
            row.get("read_latency_virtual_mean"),
            row.get("read_latency_virtual_p95"),
            row.get("retransmissions", 0),
            row.get("messages_dropped", 0),
            row["total_messages"],
        ]
        for row in rows
    ]
    table = format_table(
        HEADERS, table_rows, title="Chaos grid: SNOW verdicts, availability and latency under faults"
    )
    return grid, rows, table


def test_faults_sweep(benchmark):
    grid, rows, table = benchmark(regenerate)
    emit("faults_sweep", table)
    emit_json("faults", {"grid": rows, "protocols": list(PROTOCOLS), "seed": SEED})

    cells = {(row["protocol"], row["scenario"]): row for row in rows}
    scenario_names = {row["scenario"] for row in rows}
    # The acceptance grid: >= 3 protocols x >= 4 fault scenarios, all run to the end.
    assert len(PROTOCOLS) >= 3 and len(scenario_names) >= 5
    assert len(rows) == len(PROTOCOLS) * len(scenario_names)

    partition_scenarios = sorted(n for n in scenario_names if n.startswith("partition-"))
    assert len(partition_scenarios) == 2 * len(PARTITION_DURATIONS)

    for protocol in PROTOCOLS:
        # Fault-free and heal-able scenarios lose nothing.
        for scenario in ("none", "slow-network", "tail-latency", "lossy", "dup-happy", "crash-recover"):
            assert cells[(protocol, scenario)]["availability"] == 1.0, (protocol, scenario)
        # Healed partitions (both placements, both durations) also lose
        # nothing: the transport parks blocked messages and redelivers at
        # the heal — the CAP cost shows up in latency, not availability.
        for scenario in partition_scenarios:
            assert cells[(protocol, scenario)]["availability"] == 1.0, (protocol, scenario)
            assert cells[(protocol, scenario)]["partition_duration"] in PARTITION_DURATIONS
        # The lossy network needed the retry layer.
        assert cells[(protocol, "lossy")]["retransmissions"] > 0
        # A dead shard costs availability: reads spanning it can never finish.
        assert cells[(protocol, "fail-stop")]["availability"] < 1.0

    # Latency under a slow network degrades relative to the fault-free column
    # for every protocol — measured on the virtual clock, the only clock that
    # can see the latency model's delays.
    for protocol in PROTOCOLS:
        slow = cells[(protocol, "slow-network")]["read_latency_virtual_mean"]
        baseline = cells[(protocol, "none")]["read_latency_virtual_mean"]
        assert slow > baseline, (protocol, slow, baseline)

    # A longer client↔shard outage delays completions at least as much as a
    # shorter one (virtual-clock latency is monotone in partition duration).
    for protocol in PROTOCOLS:
        short = cells[(protocol, f"partition-client-shard-d{PARTITION_DURATIONS[0]}")]
        long = cells[(protocol, f"partition-client-shard-d{PARTITION_DURATIONS[-1]}")]
        assert long["read_latency_virtual_p95"] >= short["read_latency_virtual_p95"], protocol
