"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that environments with older setuptools/pip tooling (no PEP 660 editable
support, no ``wheel`` package) can still do ``python setup.py develop`` or a
legacy ``pip install -e .``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'SNOW Revisited: Understanding When Ideal READ Transactions Are Possible'"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
