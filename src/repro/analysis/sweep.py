"""Parameter sweeps: contention, fan-out and concurrency series.

These sweeps back the "figure-shaped" benchmarks that go beyond the paper's
two summary matrices:

* :func:`sweep_versions_vs_writers` — algorithm C's reply sizes as the number
  of concurrent WRITE transactions grows (the ``|W|`` bound of Figure 1(b)
  and Section 9);
* :func:`sweep_rounds_vs_contention` — the unbounded-round baseline's collect
  count as write contention grows, versus the constant two rounds of
  algorithm B and one round of algorithms A/C (the motivation for bounded
  SNW algorithms);
* :func:`sweep_read_size` — latency as READ transactions span more shards
  (the fan-out dimension of real workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .runner import ExperimentConfig, ExperimentResult, run_experiment
from .workload import WorkloadSpec


@dataclass
class SweepPoint:
    """One (x, result) point of a sweep."""

    x: Any
    result: ExperimentResult

    @property
    def metrics(self):
        return self.result.metrics


@dataclass
class SweepResult:
    """A named series of sweep points."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, extractor) -> List[Tuple[Any, Any]]:
        return [(point.x, extractor(point.result)) for point in self.points]

    def max_versions_series(self) -> List[Tuple[Any, int]]:
        return self.series(lambda r: r.metrics.max_versions())

    def max_rounds_series(self) -> List[Tuple[Any, int]]:
        return self.series(lambda r: r.metrics.max_read_rounds())

    def mean_rounds_series(self) -> List[Tuple[Any, float]]:
        return self.series(
            lambda r: round(r.metrics.read_rounds.mean, 2) if r.metrics.read_rounds.count else 0.0
        )

    def mean_read_latency_series(self) -> List[Tuple[Any, float]]:
        return self.series(
            lambda r: round(r.metrics.read_latency_steps.mean, 1)
            if r.metrics.read_latency_steps.count
            else 0.0
        )


def sweep_versions_vs_writers(
    protocol: str = "algorithm-c",
    writer_counts: Sequence[int] = (1, 2, 4, 6, 8),
    num_objects: int = 3,
    scheduler: str = "random",
    seed: int = 1,
    writes_per_writer: int = 4,
    reads_per_reader: int = 6,
) -> SweepResult:
    """Versions carried by read replies as concurrent writers increase."""
    sweep = SweepResult(name=f"{protocol}: versions vs writers", x_label="writers")
    for writers in writer_counts:
        config = ExperimentConfig(
            protocol=protocol,
            num_readers=1,
            num_writers=writers,
            num_objects=num_objects,
            workload=WorkloadSpec(
                reads_per_reader=reads_per_reader,
                writes_per_writer=writes_per_writer,
                read_size=num_objects,
                write_size=num_objects,
                seed=seed,
            ),
            scheduler=scheduler,
            seed=seed,
            check_properties=False,
        )
        sweep.points.append(SweepPoint(x=writers, result=run_experiment(config)))
    return sweep


def sweep_rounds_vs_contention(
    protocols: Sequence[str] = ("algorithm-b", "algorithm-c", "occ-double-collect"),
    writer_counts: Sequence[int] = (1, 2, 4, 6),
    num_objects: int = 2,
    scheduler: str = "random",
    seed: int = 2,
) -> Dict[str, SweepResult]:
    """Worst-case read rounds as write contention grows, per protocol."""
    sweeps: Dict[str, SweepResult] = {}
    for protocol in protocols:
        sweep = SweepResult(name=f"{protocol}: rounds vs contention", x_label="writers")
        for writers in writer_counts:
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=1,
                num_writers=writers,
                num_objects=num_objects,
                workload=WorkloadSpec(
                    reads_per_reader=6,
                    writes_per_writer=4,
                    read_size=num_objects,
                    write_size=num_objects,
                    seed=seed,
                ),
                scheduler=scheduler,
                seed=seed,
                check_properties=False,
            )
            sweep.points.append(SweepPoint(x=writers, result=run_experiment(config)))
        sweeps[protocol] = sweep
    return sweeps


def sweep_read_size(
    protocols: Sequence[str] = ("simple-rw", "algorithm-a", "algorithm-b", "algorithm-c", "s2pl"),
    read_sizes: Sequence[int] = (1, 2, 4, 6),
    num_objects: int = 6,
    scheduler: str = "fifo",
    seed: int = 0,
) -> Dict[str, SweepResult]:
    """Read latency as the number of shards per READ transaction grows."""
    sweeps: Dict[str, SweepResult] = {}
    for protocol in protocols:
        sweep = SweepResult(name=f"{protocol}: latency vs read fan-out", x_label="objects per read")
        for size in read_sizes:
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=1 if protocol == "algorithm-a" else 2,
                num_writers=2,
                num_objects=num_objects,
                workload=WorkloadSpec(
                    reads_per_reader=5,
                    writes_per_writer=3,
                    read_size=size,
                    write_size=min(2, num_objects),
                    seed=seed,
                ),
                scheduler=scheduler,
                seed=seed,
                check_properties=False,
            )
            sweep.points.append(SweepPoint(x=size, result=run_experiment(config)))
        sweeps[protocol] = sweep
    return sweeps
