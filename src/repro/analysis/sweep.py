"""Parameter sweeps: contention, fan-out and concurrency series.

These sweeps back the "figure-shaped" benchmarks that go beyond the paper's
two summary matrices:

* :func:`sweep_versions_vs_writers` — algorithm C's reply sizes as the number
  of concurrent WRITE transactions grows (the ``|W|`` bound of Figure 1(b)
  and Section 9);
* :func:`sweep_rounds_vs_contention` — the unbounded-round baseline's collect
  count as write contention grows, versus the constant two rounds of
  algorithm B and one round of algorithms A/C (the motivation for bounded
  SNW algorithms);
* :func:`sweep_read_size` — latency as READ transactions span more shards
  (the fan-out dimension of real workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..faults.scenarios import standard_fault_scenarios
from .runner import ExperimentConfig, ExperimentResult, run_experiment
from .workload import WorkloadSpec


@dataclass
class SweepPoint:
    """One (x, result) point of a sweep."""

    x: Any
    result: ExperimentResult

    @property
    def metrics(self):
        return self.result.metrics


@dataclass
class SweepResult:
    """A named series of sweep points."""

    name: str
    x_label: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, extractor) -> List[Tuple[Any, Any]]:
        return [(point.x, extractor(point.result)) for point in self.points]

    def max_versions_series(self) -> List[Tuple[Any, int]]:
        return self.series(lambda r: r.metrics.max_versions())

    def max_rounds_series(self) -> List[Tuple[Any, int]]:
        return self.series(lambda r: r.metrics.max_read_rounds())

    def mean_rounds_series(self) -> List[Tuple[Any, float]]:
        return self.series(
            lambda r: round(r.metrics.read_rounds.mean, 2) if r.metrics.read_rounds.count else 0.0
        )

    def mean_read_latency_series(self) -> List[Tuple[Any, float]]:
        return self.series(
            lambda r: round(r.metrics.read_latency_steps.mean, 1)
            if r.metrics.read_latency_steps.count
            else 0.0
        )


def sweep_versions_vs_writers(
    protocol: str = "algorithm-c",
    writer_counts: Sequence[int] = (1, 2, 4, 6, 8),
    num_objects: int = 3,
    scheduler: str = "random",
    seed: int = 1,
    writes_per_writer: int = 4,
    reads_per_reader: int = 6,
) -> SweepResult:
    """Versions carried by read replies as concurrent writers increase."""
    sweep = SweepResult(name=f"{protocol}: versions vs writers", x_label="writers")
    for writers in writer_counts:
        config = ExperimentConfig(
            protocol=protocol,
            num_readers=1,
            num_writers=writers,
            num_objects=num_objects,
            workload=WorkloadSpec(
                reads_per_reader=reads_per_reader,
                writes_per_writer=writes_per_writer,
                read_size=num_objects,
                write_size=num_objects,
                seed=seed,
            ),
            scheduler=scheduler,
            seed=seed,
            check_properties=False,
        )
        sweep.points.append(SweepPoint(x=writers, result=run_experiment(config)))
    return sweep


def sweep_rounds_vs_contention(
    protocols: Sequence[str] = ("algorithm-b", "algorithm-c", "occ-double-collect"),
    writer_counts: Sequence[int] = (1, 2, 4, 6),
    num_objects: int = 2,
    scheduler: str = "random",
    seed: int = 2,
) -> Dict[str, SweepResult]:
    """Worst-case read rounds as write contention grows, per protocol."""
    sweeps: Dict[str, SweepResult] = {}
    for protocol in protocols:
        sweep = SweepResult(name=f"{protocol}: rounds vs contention", x_label="writers")
        for writers in writer_counts:
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=1,
                num_writers=writers,
                num_objects=num_objects,
                workload=WorkloadSpec(
                    reads_per_reader=6,
                    writes_per_writer=4,
                    read_size=num_objects,
                    write_size=num_objects,
                    seed=seed,
                ),
                scheduler=scheduler,
                seed=seed,
                check_properties=False,
            )
            sweep.points.append(SweepPoint(x=writers, result=run_experiment(config)))
        sweeps[protocol] = sweep
    return sweeps


def sweep_fault_grid(
    protocols: Sequence[str] = ("simple-rw", "algorithm-b", "algorithm-c", "eiger"),
    scenarios: Optional[Mapping[str, FaultPlan]] = None,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 7,
    check_properties: bool = True,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """The chaos grid: every protocol under every named fault scenario.

    Returns ``{protocol: {scenario: result}}``.  Each cell runs the same
    workload through the chaos scheduler under that scenario's
    :class:`FaultPlan`; the fault-free ``none`` column doubles as the
    latency/availability baseline the degradation numbers are relative to.

    The default scenarios crash the server holding the first object of the
    built systems, so the crash column actually bites.
    """
    if scenarios is None:
        from ..txn.objects import object_names, server_for_object

        crash_server = server_for_object(object_names(num_objects)[0])
        scenarios = standard_fault_scenarios(seed=seed, crash_server=crash_server)
    else:
        scenarios = dict(scenarios)
    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    grid: Dict[str, Dict[str, ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[str, ExperimentResult] = {}
        for scenario_name, plan in scenarios.items():
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=num_readers,
                num_writers=num_writers,
                num_objects=num_objects,
                workload=workload,
                scheduler="chaos",
                seed=seed,
                check_properties=check_properties,
                faults=plan,
            )
            row[scenario_name] = run_experiment(config)
        grid[protocol] = row
    return grid


def fault_grid_rows(grid: Mapping[str, Mapping[str, ExperimentResult]]) -> List[Dict[str, Any]]:
    """Flatten a chaos grid into JSON-ready rows (one per protocol×scenario).

    Each row carries the SNOW verdict, availability, latency-under-fault and
    retransmission counts — the machine-readable record tracked across PRs
    via ``BENCH_faults.json``.  Two CAP-style fields make the
    availability/consistency trade-off a first-class column pair:
    ``consistent`` (did strict serializability survive, over the completed
    transactions) next to ``availability`` (what fraction completed).
    Partition scenarios additionally report their axes
    (``partition_duration``; the placement is encoded in the scenario name),
    and replicated runs their ``replication_factor``/``quorum``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for scenario, result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            read_latency = metrics.read_latency_steps
            row: Dict[str, Any] = {
                "protocol": protocol,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "completed_reads_mean_latency_steps": round(read_latency.mean, 2)
                if read_latency.count
                else None,
                "completed_reads_p95_latency_steps": read_latency.p95 if read_latency.count else None,
                "max_read_rounds": metrics.max_read_rounds(),
                "total_steps": metrics.total_steps,
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row.update(faults.as_dict())
            else:
                row.update({"plan": "none", "availability": 1.0})
            plan = result.config.faults
            if plan is not None and plan.partitions:
                finite_heals = [p.heal - p.start for p in plan.partitions if p.heal is not None]
                row["partition_duration"] = max(finite_heals) if finite_heals else None
            if metrics.replication is not None:
                row.update(metrics.replication.as_dict())
            rows.append(row)
    return rows


def sweep_replication_factor(
    protocols: Sequence[str] = ("algorithm-a", "algorithm-b", "algorithm-c"),
    factors: Sequence[int] = (1, 2, 3),
    quorum: str = "majority",
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 9,
    crash_at: int = 6,
    check_properties: bool = True,
) -> Dict[str, Dict[Tuple[int, str], ExperimentResult]]:
    """The replication grid: protocol × replication factor × fault scenario.

    Per factor, two scenarios run: ``none`` (fault-free baseline) and
    ``crash-replica`` — a fail-stop of the *last* replica of the first
    object's group mid-run.  At factor 1 that replica is the object's only
    copy, so the crash costs availability; at factor ≥ 3 with a majority
    quorum the reads and writes complete on the surviving quorum and the
    verdict columns show the SNOW properties riding through the outage.
    Returns ``{protocol: {(factor, scenario): result}}``.
    """
    from ..faults.plan import CrashEvent, FaultPlan
    from ..txn.objects import object_names
    from ..txn.placement import replica_names

    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    first_object = object_names(num_objects)[0]
    grid: Dict[str, Dict[Tuple[int, str], ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[Tuple[int, str], ExperimentResult] = {}
        for factor in factors:
            crash_target = replica_names(first_object, factor)[-1]
            scenarios: Dict[str, FaultPlan] = {
                "none": FaultPlan.none(),
                "crash-replica": FaultPlan(
                    name="crash-replica",
                    crashes=(CrashEvent(server=crash_target, at=crash_at, recover=None),),
                    seed=seed,
                ),
            }
            for scenario_name, plan in scenarios.items():
                config = ExperimentConfig(
                    protocol=protocol,
                    num_readers=num_readers,
                    num_writers=num_writers,
                    num_objects=num_objects,
                    workload=workload,
                    scheduler="chaos",
                    seed=seed,
                    check_properties=check_properties,
                    faults=plan,
                    replication_factor=factor,
                    quorum=quorum if factor > 1 else "read-one-write-all",
                )
                row[(factor, scenario_name)] = run_experiment(config)
        grid[protocol] = row
    return grid


def replication_grid_rows(
    grid: Mapping[str, Mapping[Tuple[int, str], ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a replication grid into JSON-ready rows.

    One row per protocol × replication factor × scenario, carrying the SNOW
    verdict, availability split by reads/writes, and the quorum measurements
    — the machine-readable record tracked across PRs via
    ``BENCH_replication.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for (factor, scenario), result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            row: Dict[str, Any] = {
                "protocol": protocol,
                "replication_factor": factor,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "quorum": result.config.quorum if factor > 1 else "read-one-write-all",
                "max_read_rounds": metrics.max_read_rounds(),
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
                row["read_availability"] = round(faults.read_availability, 4)
                row["write_availability"] = round(faults.write_availability, 4)
            else:
                row["availability"] = 1.0
            if metrics.replication is not None:
                row.update(metrics.replication.as_dict())
            rows.append(row)
    return rows


def sweep_consensus_factor(
    protocols: Sequence[str] = ("algorithm-b", "algorithm-c", "occ-double-collect"),
    factors: Sequence[int] = (1, 3),
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 11,
    crash_at: int = 14,
    check_properties: bool = True,
) -> Dict[str, Dict[Tuple[int, str], ExperimentResult]]:
    """The failover grid: protocol × consensus factor × coordinator fate.

    Per factor, two scenarios run: ``none`` (fault-free baseline) and
    ``crash-leader`` — a fail-stop of the coordinator's leader mid-run.  At
    factor 1 the "leader" is the designated first storage server and the
    crash stalls every coordinator-dependent transaction (the seed's single
    point of failure); at factor ≥ 3 the surviving consensus members elect a
    new leader after a bounded leaderless window and the run completes with
    the fault-free verdicts.  Returns ``{protocol: {(factor, scenario):
    result}}``.
    """
    from ..faults.scenarios import coordinator_failover
    from ..txn.objects import object_names, server_for_object
    from ..txn.placement import coordinator_group_names

    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    single_coordinator = server_for_object(object_names(num_objects)[0])
    grid: Dict[str, Dict[Tuple[int, str], ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[Tuple[int, str], ExperimentResult] = {}
        for factor in factors:
            group = coordinator_group_names(factor)
            leader = group[0] if group else single_coordinator
            scenarios: Dict[str, FaultPlan] = {
                "none": FaultPlan.none(),
                "crash-leader": coordinator_failover(leader=leader, at=crash_at, seed=seed),
            }
            for scenario_name, plan in scenarios.items():
                config = ExperimentConfig(
                    protocol=protocol,
                    num_readers=num_readers,
                    num_writers=num_writers,
                    num_objects=num_objects,
                    workload=workload,
                    scheduler="chaos",
                    seed=seed,
                    check_properties=check_properties,
                    faults=plan,
                    consensus_factor=factor,
                )
                row[(factor, scenario_name)] = run_experiment(config)
        grid[protocol] = row
    return grid


def consensus_grid_rows(
    grid: Mapping[str, Mapping[Tuple[int, str], ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a failover grid into JSON-ready rows.

    One row per protocol × consensus factor × scenario, carrying the SNOW
    verdict, availability, the election/term counters and the commit-latency
    tax — the machine-readable record tracked across PRs via
    ``BENCH_failover.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for (factor, scenario), result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            row: Dict[str, Any] = {
                "protocol": protocol,
                "consensus_factor": factor,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "max_read_rounds": metrics.max_read_rounds(),
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
                row["read_availability"] = round(faults.read_availability, 4)
                row["write_availability"] = round(faults.write_availability, 4)
            else:
                row["availability"] = 1.0
            if metrics.consensus is not None:
                row.update(metrics.consensus.as_dict())
            rows.append(row)
    return rows


def sweep_persistence(
    protocols: Sequence[str] = ("algorithm-b", "algorithm-c", "occ-double-collect"),
    modes: Optional[Mapping[str, Optional[Any]]] = None,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 11,
    crash_at: int = 10,
    recover_at: int = 45,
    check_properties: bool = True,
) -> Dict[str, Dict[Tuple[str, str], ExperimentResult]]:
    """The durability grid: protocol × persistence mode × coordinator fate.

    Per mode (``None`` = the seed's volatile members, or any
    :class:`~repro.persist.PersistencePolicy`), two scenarios run: ``none``
    (fault-free baseline) and ``amnesia-member`` — a crash-with-amnesia of
    one consensus member, recovered mid-run.  With a store attached the
    amnesiac member recovers its term/vote/log instead of resetting, so the
    verdict/availability columns match the fault-free baseline while the new
    persistence block reports the recovery/compaction work it took.  Returns
    ``{protocol: {(mode, scenario): result}}``.
    """
    from ..faults.plan import CrashEvent, RetryPolicy
    from ..persist import PersistencePolicy

    if modes is None:
        modes = {
            "volatile": None,
            "durable": PersistencePolicy(),
            "durable+compact": PersistencePolicy(compact_every=4),
        }
    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    scenarios: Dict[str, FaultPlan] = {
        "none": FaultPlan.none(),
        "amnesia-member": FaultPlan(
            name="amnesia-member",
            crashes=(
                CrashEvent(server="coor.2", at=crash_at, recover=recover_at, preserve_state=False),
            ),
            retry=RetryPolicy(timeout_steps=10, max_attempts=8),
            seed=seed,
        ),
    }
    grid: Dict[str, Dict[Tuple[str, str], ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[Tuple[str, str], ExperimentResult] = {}
        for mode_name, persistence in modes.items():
            for scenario_name, plan in scenarios.items():
                config = ExperimentConfig(
                    protocol=protocol,
                    num_readers=num_readers,
                    num_writers=num_writers,
                    num_objects=num_objects,
                    workload=workload,
                    scheduler="chaos",
                    seed=seed,
                    check_properties=check_properties,
                    faults=plan,
                    consensus_factor=3,
                    persistence=persistence,
                )
                row[(mode_name, scenario_name)] = run_experiment(config)
        grid[protocol] = row
    return grid


def persistence_grid_rows(
    grid: Mapping[str, Mapping[Tuple[str, str], ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a durability grid into JSON-ready rows.

    One row per protocol × persistence mode × scenario: the SNOW verdict and
    availability (the invariant columns the regression gate pins), the
    election counters, and the persistence block (recoveries, checkpoints,
    compaction ratio, retained-vs-total log length) — the machine-readable
    record tracked across PRs via ``BENCH_persist.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for (mode, scenario), result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            row: Dict[str, Any] = {
                "protocol": protocol,
                "persistence": mode,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
            else:
                row["availability"] = 1.0
            if metrics.consensus is not None:
                row["elections"] = metrics.consensus.elections
                row["max_term"] = metrics.consensus.max_term
            if metrics.persistence is not None:
                row.update(metrics.persistence.as_dict())
            rows.append(row)
    return rows


def sweep_lease(
    protocols: Sequence[str] = ("algorithm-b", "algorithm-c", "occ-double-collect"),
    modes: Optional[Mapping[str, Optional[Any]]] = None,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 11,
    crash_at: int = 12,
    check_properties: bool = True,
) -> Dict[str, Dict[Tuple[str, str], ExperimentResult]]:
    """The leader-lease grid: protocol × lease mode × coordinator fate.

    Per mode (``None`` = the seed's commit-everything read path, or anything
    :class:`~repro.consensus.LeasePolicy` accepts), two scenarios run at
    ``replication_factor=3`` + majority + ``consensus_factor=3``: ``steady``
    (fault-free baseline) and ``leader-crash`` — the lease holder fail-stops
    mid-run, so the grid crosses the read fast path with an election.  With
    leases on, read-only coordinator requests (``get-tag-arr``) are served
    locally under a quorum-proven window instead of round-tripping through
    the replicated log; protocols whose coordinator requests all mutate
    (OCC's ``get-ts`` mints a timestamp) pin the null effect — the knob
    changes nothing.  Returns ``{protocol: {(mode, scenario): result}}``.
    """
    from ..faults.scenarios import coordinator_failover

    if modes is None:
        modes = {"none": None, "leased": True}
    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    scenarios: Dict[str, FaultPlan] = {
        "steady": FaultPlan.none(),
        "leader-crash": coordinator_failover(leader="coor", at=crash_at, seed=seed),
    }
    grid: Dict[str, Dict[Tuple[str, str], ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[Tuple[str, str], ExperimentResult] = {}
        for mode_name, leases in modes.items():
            for scenario_name, plan in scenarios.items():
                config = ExperimentConfig(
                    protocol=protocol,
                    num_readers=num_readers,
                    num_writers=num_writers,
                    num_objects=num_objects,
                    workload=workload,
                    scheduler="chaos",
                    seed=seed,
                    check_properties=check_properties,
                    faults=plan,
                    replication_factor=3,
                    quorum="majority",
                    consensus_factor=3,
                    leases=leases,
                )
                row[(mode_name, scenario_name)] = run_experiment(config)
        grid[protocol] = row
    return grid


def lease_grid_rows(
    grid: Mapping[str, Mapping[Tuple[str, str], ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a lease grid into JSON-ready rows.

    One row per protocol × lease mode × scenario: the SNOW verdict and
    Lemma-20 column (``max_read_rounds``) the fast path must not disturb,
    the commit-latency aggregate the leased read latency is compared
    against, and the lease block (acquisitions/renewals/expiries, local
    reads vs read applies, the commit-bypass latency histogram's summary) —
    the machine-readable record tracked across PRs via ``BENCH_lease.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for (mode, scenario), result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            consensus = metrics.consensus
            row: Dict[str, Any] = {
                "protocol": protocol,
                "leases": mode,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "max_read_rounds": metrics.max_read_rounds(),
                "total_messages": metrics.total_messages,
                "client_read_latency_mean": round(metrics.read_latency_steps.mean, 2)
                if metrics.read_latency_steps.count
                else None,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
            else:
                row["availability"] = 1.0
            if consensus is not None:
                row["elections"] = consensus.elections
                row["max_term"] = consensus.max_term
                row["commit_latency_mean"] = (
                    round(consensus.commit_latency.mean, 2)
                    if consensus.commit_latency.count
                    else None
                )
                row["commit_latency_p95"] = (
                    round(consensus.commit_latency.p95, 2)
                    if consensus.commit_latency.count
                    else None
                )
                row.update(
                    {
                        key: value
                        for key, value in consensus.as_dict().items()
                        if key.startswith(("lease_", "local_read", "read_applies"))
                    }
                )
            rows.append(row)
    return rows


def sweep_reconfig(
    protocols: Sequence[str] = ("algorithm-a", "algorithm-b"),
    replication_factor: int = 3,
    quorum: str = "majority",
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 13,
    loss_rates: Sequence[float] = (0.05, 0.15, 0.30),
    check_properties: bool = True,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """The reconfiguration grid: protocol × membership scenario.

    Per protocol at ``replication_factor=3`` + majority:

    * ``none`` — fixed membership, the baseline every verdict is compared to;
    * ``replace-dead-replica`` — the last replica of the first object's group
      fail-stops, then a joint-consensus change swaps in a fresh replica (the
      "replace a dead replica is an experiment, not an outage" scenario);
    * ``grow-group`` — the first object's group grows rf 3 → 5 mid-run,
      fault-free (state transfer before commit);
    * ``lossy-replace-pNN`` (one per entry of ``loss_rates``) — the
      replace-dead-replica change under uniform message loss, the axis that
      shows epoch retries and the unavailability window growing with the
      drop probability while the verdict columns stay put.

    Returns ``{protocol: {scenario: result}}``.
    """
    from dataclasses import replace as dc_replace

    from ..faults.plan import DropPolicy, RetryPolicy
    from ..faults.scenarios import grow_group_mid_run, replace_dead_replica
    from ..txn.objects import object_names

    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    first_object = object_names(num_objects)[0]
    scenarios: Dict[str, Tuple[Optional[FaultPlan], Any]] = {
        "none": (None, None),
        "replace-dead-replica": replace_dead_replica(
            first_object, replication_factor, seed=seed
        ),
        "grow-group": grow_group_mid_run(first_object, replication_factor),
    }
    for probability in loss_rates:
        plan, reconfig = replace_dead_replica(first_object, replication_factor, seed=seed)
        name = f"lossy-replace-p{round(probability * 100):02d}"
        scenarios[name] = (
            dc_replace(
                plan,
                name=name,
                drops=DropPolicy(probability=probability, max_consecutive=4),
                retry=RetryPolicy(timeout_steps=10, max_attempts=8),
            ),
            reconfig,
        )
    grid: Dict[str, Dict[str, ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[str, ExperimentResult] = {}
        for scenario_name, (plan, reconfig) in scenarios.items():
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=num_readers,
                num_writers=num_writers,
                num_objects=num_objects,
                workload=workload,
                scheduler="chaos",
                seed=seed,
                check_properties=check_properties,
                faults=plan,
                replication_factor=replication_factor,
                quorum=quorum,
                reconfig=reconfig,
            )
            row[scenario_name] = run_experiment(config)
        grid[protocol] = row
    return grid


def reconfig_grid_rows(
    grid: Mapping[str, Mapping[str, ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a reconfiguration grid into JSON-ready rows.

    One row per protocol × scenario, carrying the SNOW verdict, availability,
    the loss accounting of the lossy cells (drops and retransmissions grow
    with the drop probability; ``total_messages`` counts unique protocol
    messages, so it stays flat), and the reconfiguration accounting (epochs,
    transfer volume, epoch retries, unavailability window) — the
    machine-readable record tracked across PRs via ``BENCH_reconfig.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for scenario, result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            row: Dict[str, Any] = {
                "protocol": protocol,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "max_read_rounds": metrics.max_read_rounds(),
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
                row["messages_dropped"] = faults.messages_dropped
                row["retransmissions"] = faults.retransmissions
            else:
                row["availability"] = 1.0
            if metrics.replication is not None:
                row["replication_factor"] = metrics.replication.replication_factor
                row["quorum"] = metrics.replication.quorum
            if metrics.reconfig is not None:
                row.update(metrics.reconfig.as_dict())
            rows.append(row)
    return rows


def sweep_controller(
    protocols: Sequence[str] = (
        "algorithm-a",
        "algorithm-b",
        "algorithm-c",
        "occ-double-collect",
        "eiger",
        "naive-snow",
    ),
    replication_factor: int = 3,
    quorum: str = "majority",
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 2,
    workload: Optional[WorkloadSpec] = None,
    seed: int = 17,
    check_properties: bool = True,
) -> Dict[str, Dict[str, ExperimentResult]]:
    """The self-healing grid: protocol family × controller scenario.

    Two scenarios run per protocol at ``replication_factor=3`` + majority,
    both with the rebalancing controller installed:

    * ``none`` — fault-free; the controller probes but derives nothing (its
      zero-plan behaviour is itself an acceptance criterion);
    * ``auto-heal-dead-replica`` — the last replica of the first object's
      group fail-stops with **no hand-authored plan**; the controller must
      detect it and restore full group strength autonomously.

    Returns ``{protocol: {scenario: result}}``.  The s2pl baseline is
    excluded: its lock rounds block on a fail-stopped replica by design
    (giving up N is its defining property), so dead-replica scenarios stall
    regardless of membership machinery.
    """
    from ..consensus.controller import ControllerPolicy
    from ..faults.scenarios import auto_heal
    from ..txn.objects import object_names

    workload = workload or WorkloadSpec(
        reads_per_reader=6, writes_per_writer=3, read_size=num_objects, write_size=num_objects, seed=seed
    )
    first_object = object_names(num_objects)[0]
    plan, policy = auto_heal(first_object, replication_factor, seed=seed)
    scenarios: Dict[str, Tuple[Optional[FaultPlan], Any]] = {
        "none": (None, ControllerPolicy()),
        "auto-heal-dead-replica": (plan, policy),
    }
    grid: Dict[str, Dict[str, ExperimentResult]] = {}
    for protocol in protocols:
        row: Dict[str, ExperimentResult] = {}
        for scenario_name, (fault_plan, controller) in scenarios.items():
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=num_readers,
                num_writers=num_writers,
                num_objects=num_objects,
                workload=workload,
                scheduler="chaos",
                seed=seed,
                check_properties=check_properties,
                faults=fault_plan,
                replication_factor=replication_factor,
                quorum=quorum,
                controller=controller,
            )
            row[scenario_name] = run_experiment(config)
        grid[protocol] = row
    return grid


def controller_grid_rows(
    grid: Mapping[str, Mapping[str, ExperimentResult]],
) -> List[Dict[str, Any]]:
    """Flatten a self-healing grid into JSON-ready rows.

    One row per protocol × scenario, carrying the SNOW verdict,
    availability, the controller accounting (probes, detections, derived
    plans, time-to-heal, convergence) and the reconfiguration columns —
    the machine-readable record tracked across PRs via
    ``BENCH_controller.json``.
    """
    rows: List[Dict[str, Any]] = []
    for protocol, cells in grid.items():
        for scenario, result in cells.items():
            metrics = result.metrics
            faults = metrics.faults
            row: Dict[str, Any] = {
                "protocol": protocol,
                "scenario": scenario,
                "snow": result.property_string(),
                "consistent": result.snow.satisfies_s if result.snow is not None else None,
                "max_read_rounds": metrics.max_read_rounds(),
                "total_messages": metrics.total_messages,
            }
            if faults is not None:
                row["availability"] = round(faults.availability, 4)
            else:
                row["availability"] = 1.0
            if metrics.replication is not None:
                row["replication_factor"] = metrics.replication.replication_factor
                row["quorum"] = metrics.replication.quorum
            if metrics.reconfig is not None:
                row.update(metrics.reconfig.as_dict())
            if metrics.controller is not None:
                row.update(metrics.controller.as_dict())
            rows.append(row)
    return rows


def sweep_read_size(
    protocols: Sequence[str] = ("simple-rw", "algorithm-a", "algorithm-b", "algorithm-c", "s2pl"),
    read_sizes: Sequence[int] = (1, 2, 4, 6),
    num_objects: int = 6,
    scheduler: str = "fifo",
    seed: int = 0,
) -> Dict[str, SweepResult]:
    """Read latency as the number of shards per READ transaction grows."""
    sweeps: Dict[str, SweepResult] = {}
    for protocol in protocols:
        sweep = SweepResult(name=f"{protocol}: latency vs read fan-out", x_label="objects per read")
        for size in read_sizes:
            config = ExperimentConfig(
                protocol=protocol,
                num_readers=1 if protocol == "algorithm-a" else 2,
                num_writers=2,
                num_objects=num_objects,
                workload=WorkloadSpec(
                    reads_per_reader=5,
                    writes_per_writer=3,
                    read_size=size,
                    write_size=min(2, num_objects),
                    seed=seed,
                ),
                scheduler=scheduler,
                seed=seed,
                check_properties=False,
            )
            sweep.points.append(SweepPoint(x=size, result=run_experiment(config)))
        sweeps[protocol] = sweep
    return sweeps
