"""Experiment harness: workloads, runner, metrics, sweeps and reporting."""

from .metrics import (
    AggregateStats,
    ExperimentMetrics,
    TransactionMetrics,
    collect_metrics,
    percentile,
)
from .report import (
    LATENCY_HEADERS,
    format_latency_comparison,
    format_markdown_table,
    format_series,
    format_table,
    latency_comparison_rows,
)
from .runner import (
    ExperimentConfig,
    ExperimentResult,
    compare_protocols,
    make_scheduler,
    run_experiment,
    run_many,
)
from .sweep import (
    SweepPoint,
    SweepResult,
    sweep_read_size,
    sweep_rounds_vs_contention,
    sweep_versions_vs_writers,
)
from .workload import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    read_heavy_spec,
    submit_workload,
    write_heavy_spec,
)

__all__ = [
    "AggregateStats",
    "ExperimentMetrics",
    "TransactionMetrics",
    "collect_metrics",
    "percentile",
    "LATENCY_HEADERS",
    "format_latency_comparison",
    "format_markdown_table",
    "format_series",
    "format_table",
    "latency_comparison_rows",
    "ExperimentConfig",
    "ExperimentResult",
    "compare_protocols",
    "make_scheduler",
    "run_experiment",
    "run_many",
    "SweepPoint",
    "SweepResult",
    "sweep_read_size",
    "sweep_rounds_vs_contention",
    "sweep_versions_vs_writers",
    "GeneratedWorkload",
    "WorkloadSpec",
    "generate_workload",
    "read_heavy_spec",
    "submit_workload",
    "write_heavy_spec",
]
