"""Workload generation for experiments and benchmarks.

The paper motivates its results with the read-dominated workloads of
real-world storage systems (Facebook's TAO reports 500 reads per write,
Google's F1 three orders of magnitude more reads than general transactions —
Section 1).  The workload generator produces deterministic, seedable streams
of READ and WRITE transactions with configurable read/write mix, transaction
sizes and object-popularity skew, so the benchmark harness can sweep exactly
those dimensions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..txn.transactions import ReadTransaction, WriteTransaction, read as make_read, write_pairs


@dataclass
class WorkloadSpec:
    """Parameters of a generated workload.

    ``reads_per_reader`` / ``writes_per_writer`` are issued closed-loop per
    client (the kernel invokes a client's next transaction only after its
    previous one responded — well-formedness).  ``read_size`` / ``write_size``
    are the number of distinct objects touched per transaction (clamped to
    the number of objects).  ``zipf_s`` adds object-popularity skew: 0 means
    uniform, larger values concentrate accesses on the first objects.
    """

    reads_per_reader: int = 5
    writes_per_writer: int = 5
    read_size: int = 2
    write_size: int = 2
    zipf_s: float = 0.0
    seed: int = 0
    value_prefix: str = "v"

    def describe(self) -> str:
        return (
            f"{self.reads_per_reader} reads/reader x {self.read_size} objects, "
            f"{self.writes_per_writer} writes/writer x {self.write_size} objects, "
            f"zipf_s={self.zipf_s}, seed={self.seed}"
        )


@dataclass
class GeneratedWorkload:
    """The concrete transactions of one workload instance."""

    reads: Tuple[Tuple[str, ReadTransaction], ...]  # (reader, txn)
    writes: Tuple[Tuple[str, WriteTransaction], ...]  # (writer, txn)

    @property
    def total_transactions(self) -> int:
        return len(self.reads) + len(self.writes)

    def read_ratio(self) -> float:
        total = self.total_transactions
        return len(self.reads) / total if total else 0.0


def _zipf_weights(count: int, s: float) -> List[float]:
    if s <= 0:
        return [1.0] * count
    return [1.0 / ((rank + 1) ** s) for rank in range(count)]


def _pick_objects(rng: random.Random, objects: Sequence[str], size: int, s: float) -> Tuple[str, ...]:
    size = max(1, min(size, len(objects)))
    if s <= 0:
        return tuple(sorted(rng.sample(list(objects), size)))
    weights = _zipf_weights(len(objects), s)
    chosen: List[str] = []
    candidates = list(objects)
    candidate_weights = list(weights)
    for _ in range(size):
        total = sum(candidate_weights)
        pick = rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(candidate_weights):
            cumulative += weight
            if pick <= cumulative:
                chosen.append(candidates.pop(index))
                candidate_weights.pop(index)
                break
        else:  # pragma: no cover - floating point edge
            chosen.append(candidates.pop())
            candidate_weights.pop()
    return tuple(sorted(chosen))


def generate_workload(
    spec: WorkloadSpec,
    readers: Sequence[str],
    writers: Sequence[str],
    objects: Sequence[str],
) -> GeneratedWorkload:
    """Generate the transactions of a workload (deterministic in ``spec.seed``)."""
    rng = random.Random(spec.seed)
    reads: List[Tuple[str, ReadTransaction]] = []
    writes: List[Tuple[str, WriteTransaction]] = []
    for reader in readers:
        for _ in range(spec.reads_per_reader):
            targets = _pick_objects(rng, objects, spec.read_size, spec.zipf_s)
            reads.append((reader, make_read(*targets)))
    for writer_index, writer in enumerate(writers, start=1):
        for sequence in range(1, spec.writes_per_writer + 1):
            targets = _pick_objects(rng, objects, spec.write_size, spec.zipf_s)
            updates = tuple(
                (obj, f"{spec.value_prefix}-{writer}-{sequence}-{obj}") for obj in targets
            )
            writes.append((writer, write_pairs(updates)))
    return GeneratedWorkload(reads=tuple(reads), writes=tuple(writes))


def submit_workload(handle, workload: GeneratedWorkload) -> Tuple[List[str], List[str]]:
    """Submit a generated workload to a built system (interleaving clients).

    Transactions are queued round-robin across clients so that the closed-loop
    driver interleaves reads and writes rather than running all of one
    client's transactions first.  Returns the submitted read and write ids.
    """
    read_ids: List[str] = []
    write_ids: List[str] = []
    per_client: Dict[str, List[Any]] = {}
    for reader, txn in workload.reads:
        per_client.setdefault(reader, []).append(txn)
    for writer, txn in workload.writes:
        per_client.setdefault(writer, []).append(txn)
    # Round-robin across clients for submission order.
    progressing = True
    position = 0
    while progressing:
        progressing = False
        for client, queue in per_client.items():
            if position < len(queue):
                progressing = True
                txn = queue[position]
                if isinstance(txn, ReadTransaction):
                    read_ids.append(handle.simulation.submit(client, txn, txn_id=txn.txn_id))
                else:
                    write_ids.append(handle.simulation.submit(client, txn, txn_id=txn.txn_id))
        position += 1
    return read_ids, write_ids


def read_heavy_spec(reads: int = 10, writes: int = 2, size: int = 2, seed: int = 0) -> WorkloadSpec:
    """A TAO-like read-heavy mix."""
    return WorkloadSpec(reads_per_reader=reads, writes_per_writer=writes, read_size=size, write_size=size, seed=seed)


def write_heavy_spec(reads: int = 3, writes: int = 10, size: int = 2, seed: int = 0) -> WorkloadSpec:
    """A contention-heavy mix used to stress retry/blocking behaviour."""
    return WorkloadSpec(reads_per_reader=reads, writes_per_writer=writes, read_size=size, write_size=size, seed=seed)
