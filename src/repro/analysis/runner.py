"""Experiment runner: one protocol, one workload, one schedule → one result.

The runner is the glue the benchmark harness is built on: it instantiates a
protocol through the registry, generates and submits a workload, runs the
simulation to completion, and packages the SNOW verdict together with the
latency/message metrics.  Everything is parameterised by plain dataclasses so
benchmark sweeps are declarative lists of configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.snow import SnowReport, check_snow
from ..faults.chaos import ChaosScheduler
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..ioa.scheduler import (
    AdversarialScheduler,
    FIFOScheduler,
    LIFOScheduler,
    RandomScheduler,
    Scheduler,
)
from ..protocols.registry import get_protocol
from ..txn.history import History
from .metrics import ExperimentMetrics, collect_metrics
from .workload import GeneratedWorkload, WorkloadSpec, generate_workload, submit_workload

#: Registry of config-addressable schedulers; extend via register_scheduler.
#: ``chaos+adversarial`` composes the fault-plane-aware chaos scheduler over
#: a rule-driven adversary (rules are added to ``scheduler.base`` after the
#: build, or via :func:`repro.faults.adversary.hunt_s_violations`): the
#: adversary orders events *and* the fault plan loses/delays them — the
#: combination the fault-aware S-violation hunts drive.
_SCHEDULER_FACTORIES: Dict[str, Callable[[int], Scheduler]] = {
    "fifo": lambda seed: FIFOScheduler(),
    "lifo": lambda seed: LIFOScheduler(),
    "random": lambda seed: RandomScheduler(seed=seed),
    "chaos": lambda seed: ChaosScheduler(seed=seed),
    "chaos+adversarial": lambda seed: ChaosScheduler(
        base=AdversarialScheduler(base=RandomScheduler(seed=seed)), seed=seed
    ),
}


def scheduler_names() -> Tuple[str, ...]:
    """All scheduler names accepted by experiment configs, sorted."""
    return tuple(sorted(_SCHEDULER_FACTORIES))


def register_scheduler(name: str, factory: Callable[[int], Scheduler]) -> None:
    """Register an extra named scheduler (``factory`` takes the seed)."""
    if name in _SCHEDULER_FACTORIES:
        raise ValueError(f"scheduler name {name!r} is already registered")
    _SCHEDULER_FACTORIES[name] = factory


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Instantiate a scheduler by registry name (see :func:`scheduler_names`)."""
    try:
        factory = _SCHEDULER_FACTORIES[name]
    except KeyError:
        known = ", ".join(repr(n) for n in scheduler_names())
        raise ValueError(f"unknown scheduler {name!r}; valid schedulers: {known}") from None
    return factory(seed)


@dataclass
class ExperimentConfig:
    """Declarative description of one experiment run."""

    protocol: str
    num_readers: int = 2
    num_writers: int = 2
    num_objects: int = 2
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    scheduler: str = "fifo"
    seed: int = 0
    c2c: Optional[bool] = None
    initial_value: Any = 0
    check_properties: bool = True
    #: optional fault plan; None keeps the reliable channels of the paper.
    #: A faulted run executes until idle rather than to completion, so
    #: availability (completed/submitted) becomes a first-class result.
    faults: Optional[FaultPlan] = None
    #: replicas per object; 1 is the paper's one-server-per-object setting.
    replication_factor: int = 1
    #: quorum policy name (see :func:`repro.txn.placement.quorum_policy_names`).
    quorum: str = "read-one-write-all"
    #: consensus members replicating the coordinator; 1 is the seed's single
    #: designated server (see :mod:`repro.consensus`).
    consensus_factor: int = 1
    #: scheduled membership changes; None keeps membership fixed for the
    #: whole run (see :mod:`repro.consensus.reconfig`).
    reconfig: Optional[Any] = None
    #: automated-rebalancing policy; None runs without the control loop
    #: (see :mod:`repro.consensus.controller`).
    controller: Optional[Any] = None
    #: install the observability plane (kernel metrics registry + causal
    #: spans; see :mod:`repro.obs`).  Purely additive: the trace and every
    #: metric block stay identical — the collectors just read the registry
    #: instead of re-walking the trace.
    observe: bool = False
    #: also enable the wall-clock kernel profiler (implies ``observe``);
    #: profiler output never enters deterministic results.
    profile: bool = False
    #: attach the streaming invariant monitors (implies ``observe``); the
    #: run's alerts are readable via ``result.obs.monitors.alerts``.
    monitors: bool = False
    #: attach the health/SLO plane (implies ``observe``); read via
    #: ``result.obs.health_view`` (see :mod:`repro.obs.health`).
    health: bool = False
    #: trace record retention (None = full; see :class:`repro.ioa.TraceMode`)
    trace_mode: Optional[Any] = None
    #: stable storage for consensus members (a
    #: :class:`~repro.persist.PersistencePolicy` or plane); None keeps the
    #: seed's volatile members (see :mod:`repro.persist`)
    persistence: Optional[Any] = None
    #: leader leases for the consensus read fast path (``True`` or a
    #: :class:`~repro.consensus.LeasePolicy`); None keeps the seed's
    #: commit-everything read path (see :mod:`repro.consensus.lease`)
    leases: Optional[Any] = None

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed, workload=replace(self.workload, seed=seed))

    def describe(self) -> str:
        base = (
            f"{self.protocol} ({self.num_readers}R/{self.num_writers}W/{self.num_objects} objects, "
            f"{self.scheduler} seed={self.seed}): {self.workload.describe()}"
        )
        if self.replication_factor > 1:
            base += f" [replication={self.replication_factor}, quorum={self.quorum}]"
        if self.consensus_factor > 1:
            base += f" [consensus={self.consensus_factor}]"
        if self.reconfig is not None:
            base += f" [{self.reconfig.describe()}]"
        if self.controller is not None:
            base += f" [{self.controller.describe()}]"
        if self.faults is not None:
            base += f" [{self.faults.describe()}]"
        extras = [
            flag
            for flag, on in (
                ("observe", self.observe and not self.profile),
                ("observe+profile", self.profile),
                ("monitors", self.monitors),
                ("health", self.health),
            )
            if on
        ]
        if extras:
            base += f" [{', '.join(extras)}]"
        if self.trace_mode is not None:
            base += f" [trace={self.trace_mode.describe()}]"
        if self.persistence is not None:
            base += f" [{self.persistence.describe()}]"
        if self.leases is not None:
            from ..consensus import LeasePolicy

            base += f" [{LeasePolicy.of(self.leases).describe()}]"
        return base


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    metrics: ExperimentMetrics
    snow: Optional[SnowReport]
    history: History
    read_ids: Tuple[str, ...]
    write_ids: Tuple[str, ...]
    #: the run's observability plane; None unless ``config.observe``/``profile``
    obs: Optional[Any] = None

    @property
    def protocol(self) -> str:
        return self.config.protocol

    def property_string(self) -> str:
        return self.snow.property_string() if self.snow else "????"

    def describe(self) -> str:
        lines = [self.config.describe()]
        if self.snow is not None:
            lines.append(f"  properties: {self.snow.property_string()}")
        lines.append("  " + self.metrics.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment to completion and collect all measurements."""
    if (
        config.faults is not None
        and config.faults.latency is not None
        and not config.scheduler.startswith("chaos")
    ):
        # Only the chaos schedulers honour ready_at stamps; any other named
        # scheduler would silently ignore the latency model while the fault
        # metrics still report the plan as active — a misconfiguration that
        # looks like a healthy latency experiment.
        raise ValueError(
            f"fault plan {config.faults.name or 'faults'!r} has a latency model, which only the "
            f"'chaos'-family schedulers honour; got scheduler={config.scheduler!r}"
        )
    if config.check_properties and config.trace_mode is not None and config.trace_mode.kind != "full":
        # The SNOW N/O checkers walk per-message trace records; a partial
        # record yields *wrong* verdicts (phantom blocking servers, zero
        # replies seen), not merely incomplete ones — refuse up front rather
        # than after the run.
        raise ValueError(
            f"check_properties needs a full trace record, but trace_mode="
            f"{config.trace_mode.describe()} retains only some of it; pass "
            "check_properties=False for retention-mode runs (counters, "
            "monitors and the health plane stay exact)"
        )
    protocol = get_protocol(config.protocol)
    build_kwargs: Dict[str, Any] = dict(
        num_readers=config.num_readers,
        num_writers=config.num_writers,
        num_objects=config.num_objects,
        scheduler=make_scheduler(config.scheduler, config.seed),
        seed=config.seed,
        initial_value=config.initial_value,
        replication_factor=config.replication_factor,
        quorum=config.quorum,
        consensus_factor=config.consensus_factor,
        reconfig=config.reconfig,
        controller=config.controller,
        persistence=config.persistence,
        leases=config.leases,
    )
    if config.c2c is not None:
        build_kwargs["c2c"] = config.c2c
    if not protocol.supports_multiple_readers:
        build_kwargs["num_readers"] = 1
    if config.faults is not None:
        build_kwargs["fault_plane"] = FaultInjector(config.faults, seed=config.seed)
    if config.observe or config.profile or config.monitors or config.health:
        from ..obs import ObservabilityPlane

        build_kwargs["obs"] = ObservabilityPlane(
            profile=config.profile,
            monitors=config.monitors,
            health=config.health,
        )
    if config.trace_mode is not None:
        build_kwargs["trace_mode"] = config.trace_mode
    handle = protocol.build(**build_kwargs)

    workload = generate_workload(config.workload, handle.readers, handle.writers, handle.objects)
    read_ids, write_ids = submit_workload(handle, workload)
    if config.faults is None:
        handle.run_to_completion()
    else:
        # Under faults a run may legally go idle with transactions stuck
        # behind a permanent partition or fail-stopped server; those count
        # against availability instead of raising LivenessError.
        handle.run()

    history = handle.history()
    metrics = collect_metrics(
        handle.simulation,
        protocol_name=config.protocol,
        placement=handle.placement,
        quorum_policy=handle.quorum_policy,
        directory=handle.directory,
    )
    snow = check_snow(handle.simulation, history) if config.check_properties else None
    return ExperimentResult(
        config=config,
        metrics=metrics,
        snow=snow,
        history=history,
        read_ids=tuple(read_ids),
        write_ids=tuple(write_ids),
        obs=handle.obs,
    )


def run_many(configs: Sequence[ExperimentConfig]) -> List[ExperimentResult]:
    """Run a list of experiment configurations."""
    return [run_experiment(config) for config in configs]


def compare_protocols(
    protocols: Sequence[str],
    workload: Optional[WorkloadSpec] = None,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 3,
    scheduler: str = "fifo",
    seed: int = 0,
    check_properties: bool = True,
) -> List[ExperimentResult]:
    """Run the same workload through several protocols (the latency comparison)."""
    workload = workload or WorkloadSpec(seed=seed)
    configs = [
        ExperimentConfig(
            protocol=name,
            num_readers=num_readers,
            num_writers=num_writers,
            num_objects=num_objects,
            workload=workload,
            scheduler=scheduler,
            seed=seed,
            check_properties=check_properties,
        )
        for name in protocols
    ]
    return run_many(configs)
