"""Experiment runner: one protocol, one workload, one schedule → one result.

The runner is the glue the benchmark harness is built on: it instantiates a
protocol through the registry, generates and submits a workload, runs the
simulation to completion, and packages the SNOW verdict together with the
latency/message metrics.  Everything is parameterised by plain dataclasses so
benchmark sweeps are declarative lists of configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.snow import SnowReport, check_snow
from ..ioa.scheduler import FIFOScheduler, LIFOScheduler, RandomScheduler, Scheduler
from ..protocols.registry import get_protocol
from ..txn.history import History
from .metrics import ExperimentMetrics, collect_metrics
from .workload import GeneratedWorkload, WorkloadSpec, generate_workload, submit_workload


def make_scheduler(name: str, seed: int = 0) -> Scheduler:
    """Scheduler factory used by configs: ``fifo``, ``lifo`` or ``random``."""
    if name == "fifo":
        return FIFOScheduler()
    if name == "lifo":
        return LIFOScheduler()
    if name == "random":
        return RandomScheduler(seed=seed)
    raise ValueError(f"unknown scheduler {name!r} (expected 'fifo', 'lifo' or 'random')")


@dataclass
class ExperimentConfig:
    """Declarative description of one experiment run."""

    protocol: str
    num_readers: int = 2
    num_writers: int = 2
    num_objects: int = 2
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    scheduler: str = "fifo"
    seed: int = 0
    c2c: Optional[bool] = None
    initial_value: Any = 0
    check_properties: bool = True

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed, workload=replace(self.workload, seed=seed))

    def describe(self) -> str:
        return (
            f"{self.protocol} ({self.num_readers}R/{self.num_writers}W/{self.num_objects} objects, "
            f"{self.scheduler} seed={self.seed}): {self.workload.describe()}"
        )


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    metrics: ExperimentMetrics
    snow: Optional[SnowReport]
    history: History
    read_ids: Tuple[str, ...]
    write_ids: Tuple[str, ...]

    @property
    def protocol(self) -> str:
        return self.config.protocol

    def property_string(self) -> str:
        return self.snow.property_string() if self.snow else "????"

    def describe(self) -> str:
        lines = [self.config.describe()]
        if self.snow is not None:
            lines.append(f"  properties: {self.snow.property_string()}")
        lines.append("  " + self.metrics.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment to completion and collect all measurements."""
    protocol = get_protocol(config.protocol)
    build_kwargs: Dict[str, Any] = dict(
        num_readers=config.num_readers,
        num_writers=config.num_writers,
        num_objects=config.num_objects,
        scheduler=make_scheduler(config.scheduler, config.seed),
        seed=config.seed,
        initial_value=config.initial_value,
    )
    if config.c2c is not None:
        build_kwargs["c2c"] = config.c2c
    if not protocol.supports_multiple_readers:
        build_kwargs["num_readers"] = 1
    handle = protocol.build(**build_kwargs)

    workload = generate_workload(config.workload, handle.readers, handle.writers, handle.objects)
    read_ids, write_ids = submit_workload(handle, workload)
    handle.run_to_completion()

    history = handle.history()
    metrics = collect_metrics(handle.simulation, protocol_name=config.protocol)
    snow = check_snow(handle.simulation, history) if config.check_properties else None
    return ExperimentResult(
        config=config,
        metrics=metrics,
        snow=snow,
        history=history,
        read_ids=tuple(read_ids),
        write_ids=tuple(write_ids),
    )


def run_many(configs: Sequence[ExperimentConfig]) -> List[ExperimentResult]:
    """Run a list of experiment configurations."""
    return [run_experiment(config) for config in configs]


def compare_protocols(
    protocols: Sequence[str],
    workload: Optional[WorkloadSpec] = None,
    num_readers: int = 2,
    num_writers: int = 2,
    num_objects: int = 3,
    scheduler: str = "fifo",
    seed: int = 0,
    check_properties: bool = True,
) -> List[ExperimentResult]:
    """Run the same workload through several protocols (the latency comparison)."""
    workload = workload or WorkloadSpec(seed=seed)
    configs = [
        ExperimentConfig(
            protocol=name,
            num_readers=num_readers,
            num_writers=num_writers,
            num_objects=num_objects,
            workload=workload,
            scheduler=scheduler,
            seed=seed,
            check_properties=check_properties,
        )
        for name in protocols
    ]
    return run_many(configs)
