"""Plain-text table and series rendering for benchmark output.

The benchmark harness prints the same kinds of rows the paper reports:
the Figure 1 matrices, a latency comparison across protocols (the paper's
"READ transactions should match simple reads" argument made quantitative),
and parameter-sweep series (versions returned vs. concurrent writers,
collect rounds vs. contention).  Everything is plain text so the benches can
``print`` it and the outputs land verbatim in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

from .metrics import ExperimentMetrics
from .runner import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Fixed-width table rendering."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    normalised_rows: List[List[str]] = []
    for row in rows:
        cells = [("" if cell is None else str(cell)) for cell in row]
        if len(cells) < columns:
            cells += [""] * (columns - len(cells))
        normalised_rows.append(cells)
        for index in range(columns):
            widths[index] = max(widths[index], len(cells[index]))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for cells in normalised_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """GitHub-flavoured markdown table (used when writing EXPERIMENTS.md-style reports)."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rows:
        lines.append("| " + " | ".join("" if cell is None else str(cell) for cell in row) + " |")
    return "\n".join(lines)


def latency_comparison_rows(results: Sequence[ExperimentResult]) -> List[List[Any]]:
    """Rows of the protocol latency comparison table."""
    rows: List[List[Any]] = []
    for result in results:
        metrics = result.metrics
        rows.append(
            [
                result.protocol,
                result.property_string(),
                f"{metrics.read_rounds.mean:.2f}" if metrics.read_rounds.count else "-",
                int(metrics.read_rounds.maximum) if metrics.read_rounds.count else "-",
                f"{metrics.read_latency_steps.mean:.1f}" if metrics.read_latency_steps.count else "-",
                f"{metrics.read_messages.mean:.1f}" if metrics.read_messages.count else "-",
                int(metrics.read_versions.maximum) if metrics.read_versions.count else "-",
                f"{metrics.write_latency_steps.mean:.1f}" if metrics.write_latency_steps.count else "-",
                metrics.total_messages,
            ]
        )
    return rows


LATENCY_HEADERS = (
    "protocol",
    "props",
    "read rounds (mean)",
    "read rounds (max)",
    "read latency steps",
    "read msgs",
    "max versions",
    "write latency steps",
    "total msgs",
)


def format_latency_comparison(results: Sequence[ExperimentResult], title: str = "READ latency comparison") -> str:
    return format_table(LATENCY_HEADERS, latency_comparison_rows(results), title=title)


def format_series(
    x_label: str,
    series: Mapping[str, Sequence[Tuple[Any, Any]]],
    title: str = "",
) -> str:
    """Render one or more (x, y) series as an aligned text table.

    ``series`` maps a series name to its (x, y) points; x values are unioned
    and each series column shows its value at that x (or blank).
    """
    xs: List[Any] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: List[Any] = [x]
        for name in series:
            value = dict(series[name]).get(x, "")
            row.append(value)
        rows.append(row)
    return format_table(headers, rows, title=title)
