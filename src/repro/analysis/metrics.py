"""Metric collection and aggregation for protocol experiments.

Latency in the simulator is measured in two complementary ways:

* **rounds** — the number of sequential client↔server round trips a READ
  transaction needed (the paper's latency measure: the O property's
  "one round" and the bounded-round guarantees of algorithms B and C);
* **trace steps** — the number of scheduler steps between invocation and
  response, a finer-grained proxy for wall-clock latency on an asynchronous
  network (every message delivery costs one step).

Message cost (requests + replies attributable to a transaction) captures the
throughput/overhead side: algorithm A pushes per-write work to the reader,
algorithms B and C to the coordinator, and the benchmark harness reports both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ioa.simulation import Simulation, TransactionRecord
from ..txn.transactions import ReadTransaction, WriteTransaction


@dataclass(frozen=True)
class TransactionMetrics:
    """Per-transaction measurements."""

    txn_id: str
    kind: str  # "read" | "write"
    client: str
    rounds: int
    messages_sent: int
    latency_steps: Optional[int]
    versions: int = 1
    annotations: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        return (
            f"{self.txn_id} ({self.kind}@{self.client}): rounds={self.rounds}, "
            f"messages={self.messages_sent}, latency={self.latency_steps}, versions={self.versions}"
        )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class AggregateStats:
    """Summary statistics over one metric."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "AggregateStats":
        if not values:
            return cls(count=0, mean=float("nan"), minimum=float("nan"), maximum=float("nan"), p50=float("nan"), p95=float("nan"))
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=float(min(values)),
            maximum=float(max(values)),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
        )

    def __eq__(self, other: object) -> Any:
        if other.__class__ is not self.__class__:
            return NotImplemented
        if self.count == 0 and other.count == 0:
            return True  # empty aggregates hold NaNs, which never compare equal
        return (self.count, self.mean, self.minimum, self.maximum, self.p50, self.p95) == (
            other.count, other.mean, other.minimum, other.maximum, other.p50, other.p95
        )

    def describe(self) -> str:
        if self.count == 0:
            return "n=0"
        return f"n={self.count} mean={self.mean:.2f} min={self.minimum:.0f} p50={self.p50:.0f} p95={self.p95:.0f} max={self.maximum:.0f}"


@dataclass(frozen=True)
class FaultMetrics:
    """Availability and network-fault measurements of one execution.

    Only populated when the simulation ran with a fault plane installed.
    ``availability`` is the fraction of submitted transactions that completed
    (a run under drops/partitions/crashes may legally go idle with
    transactions outstanding); the latency aggregates of the surrounding
    :class:`ExperimentMetrics` then cover *completed* transactions only,
    which is exactly "latency under fault".
    """

    plan: str
    submitted: int
    completed: int
    read_submitted: int
    read_completed: int
    write_submitted: int
    write_completed: int
    messages_dropped: int
    messages_duplicated: int
    duplicates_suppressed: int
    retransmissions: int
    held_by_partition: int
    held_by_crash: int
    abandoned_messages: int
    crashes: int
    recoveries: int
    #: latency on the *virtual* clock (kernel steps + fault-plane time
    #: jumps), completed transactions only.  Trace-step latency cannot see
    #: a latency model's delays — a delayed delivery adds no trace actions —
    #: so this is the clock "latency under fault" is measured on.
    read_latency_virtual: AggregateStats
    write_latency_virtual: AggregateStats

    @property
    def availability(self) -> float:
        return self.completed / self.submitted if self.submitted else 1.0

    @property
    def read_availability(self) -> float:
        return self.read_completed / self.read_submitted if self.read_submitted else 1.0

    @property
    def write_availability(self) -> float:
        return self.write_completed / self.write_submitted if self.write_submitted else 1.0

    def describe(self) -> str:
        return (
            f"faults[{self.plan}]: availability={self.availability:.2f} "
            f"(reads {self.read_completed}/{self.read_submitted}, "
            f"writes {self.write_completed}/{self.write_submitted}), "
            f"dropped={self.messages_dropped}, retransmitted={self.retransmissions}, "
            f"duplicated={self.messages_duplicated}, crash-held={self.held_by_crash}, "
            f"partition-held={self.held_by_partition}, abandoned={self.abandoned_messages}\n"
            f"  read latency (virtual): {self.read_latency_virtual.describe()}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan,
            "submitted": self.submitted,
            "completed": self.completed,
            "availability": round(self.availability, 4),
            "read_availability": round(self.read_availability, 4),
            "write_availability": round(self.write_availability, 4),
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "duplicates_suppressed": self.duplicates_suppressed,
            "retransmissions": self.retransmissions,
            "held_by_partition": self.held_by_partition,
            "held_by_crash": self.held_by_crash,
            "abandoned_messages": self.abandoned_messages,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "read_latency_virtual_mean": round(self.read_latency_virtual.mean, 2)
            if self.read_latency_virtual.count
            else None,
            "read_latency_virtual_p95": self.read_latency_virtual.p95
            if self.read_latency_virtual.count
            else None,
            "write_latency_virtual_mean": round(self.write_latency_virtual.mean, 2)
            if self.write_latency_virtual.count
            else None,
        }


@dataclass(frozen=True)
class ReplicationMetrics:
    """Placement/quorum measurements of one replicated execution.

    Only populated when the system was built with ``replication_factor > 1``.
    ``read_quorum_replies`` aggregates the ``quorum_replies`` annotation the
    replica-aware readers report — how many replies each READ actually
    collected before its quorum predicate fired (its minimum is the quorum
    size reached; under a replica outage it shows reads completing on fewer
    replies than the full fan-out).
    """

    replication_factor: int
    quorum: str
    read_quorum: int
    write_quorum: int
    num_replica_servers: int
    read_quorum_replies: AggregateStats

    def describe(self) -> str:
        return (
            f"replication: factor={self.replication_factor} quorum={self.quorum} "
            f"(R={self.read_quorum}, W={self.write_quorum}, servers={self.num_replica_servers}); "
            f"read quorum replies: {self.read_quorum_replies.describe()}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "replication_factor": self.replication_factor,
            "quorum": self.quorum,
            "read_quorum": self.read_quorum,
            "write_quorum": self.write_quorum,
            "num_replica_servers": self.num_replica_servers,
            "read_quorum_replies_mean": round(self.read_quorum_replies.mean, 2)
            if self.read_quorum_replies.count
            else None,
            "read_quorum_replies_min": self.read_quorum_replies.minimum
            if self.read_quorum_replies.count
            else None,
        }


@dataclass(frozen=True)
class ConsensusMetrics:
    """Replicated-coordinator measurements of one execution.

    Only populated when the system was built with ``consensus_factor > 1``.
    Everything is extracted from the self-describing internal actions the
    consensus members record (``candidacy`` / ``became-leader`` / ``apply``),
    so the block works uniformly across protocols and fault regimes.

    ``commit_latency`` is measured on the virtual clock from a request's
    (re)proposal to its application — the consensus tax each coordinator
    round pays; ``leader_elected_at`` records the virtual time of each
    election win, from which leaderless windows are derived (election vtime
    minus the crash time; see ``tests/consensus/test_leaderless_window.py``).
    """

    members: int
    elections: int
    leaders_elected: int
    max_term: int
    entries_applied: int
    commit_latency: AggregateStats
    #: virtual times at which new leaders were elected (for window bounds)
    leader_elected_at: Tuple[int, ...] = ()
    # Lease block (``BuildConfig.leases``; all zero without a lease policy):
    #: lease windows first proven / extended while live / noticed lapsed
    lease_acquisitions: int = 0
    lease_renewals: int = 0
    lease_expiries: int = 0
    #: reads the lease holder served locally (no log entry committed)
    local_reads: int = 0
    #: read-only requests that still went through a commit round
    read_applies: int = 0
    #: virtual-clock latency of locally-served reads (arrival → reply) —
    #: the commit-bypass counterpart of ``commit_latency``
    lease_read_latency: AggregateStats = field(
        default_factory=lambda: AggregateStats.from_values(())
    )

    @property
    def local_read_ratio(self) -> Optional[float]:
        """Fraction of coordinator reads the lease fast path absorbed."""
        total = self.local_reads + self.read_applies
        if total == 0:
            return None
        return self.local_reads / total

    def describe(self) -> str:
        base = (
            f"consensus: members={self.members} elections={self.elections} "
            f"leaders_elected={self.leaders_elected} max_term={self.max_term} "
            f"applied={self.entries_applied}; commit latency: {self.commit_latency.describe()}"
        )
        if self.local_reads or self.lease_acquisitions:
            ratio = self.local_read_ratio
            base += (
                f"; leases: acquired={self.lease_acquisitions} "
                f"renewed={self.lease_renewals} expired={self.lease_expiries} "
                f"local_reads={self.local_reads}"
                + (f" ({ratio:.0%} of reads)" if ratio is not None else "")
                + f"; local-read latency: {self.lease_read_latency.describe()}"
            )
        return base

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "consensus_members": self.members,
            "elections": self.elections,
            "leaders_elected": self.leaders_elected,
            "max_term": self.max_term,
            "entries_applied": self.entries_applied,
            "commit_latency_mean": round(self.commit_latency.mean, 2)
            if self.commit_latency.count
            else None,
            "commit_latency_p95": self.commit_latency.p95
            if self.commit_latency.count
            else None,
        }
        # Lease columns appear only when the run had lease activity, so the
        # committed BENCH_*.json rows of lease-free grids stay unchanged.
        if self.local_reads or self.lease_acquisitions:
            ratio = self.local_read_ratio
            out.update(
                {
                    "lease_acquisitions": self.lease_acquisitions,
                    "lease_renewals": self.lease_renewals,
                    "lease_expiries": self.lease_expiries,
                    "local_reads": self.local_reads,
                    "read_applies": self.read_applies,
                    "local_read_ratio": round(ratio, 4) if ratio is not None else None,
                    "lease_read_latency_mean": round(self.lease_read_latency.mean, 2)
                    if self.lease_read_latency.count
                    else None,
                    "lease_read_latency_p95": self.lease_read_latency.p95
                    if self.lease_read_latency.count
                    else None,
                }
            )
        return out


@dataclass(frozen=True)
class ReconfigMetrics:
    """Membership-reconfiguration measurements of one execution.

    Only populated when the system was built with a
    :class:`~repro.consensus.reconfig.ReconfigPlan`.  ``epochs`` is the final
    placement epoch (each change contributes a joint entry and a commit, so
    one completed change = two epochs); ``transfer_versions`` totals the
    versions streamed to freshly added replicas; ``epoch_retries`` counts the
    client rounds that had to restart after an ``epoch-mismatch``; and
    ``unavailability_window`` is the longest virtual-time span any single
    transaction spent blocked on such retries (0 when no round ever had to
    retry — the "membership change as a non-event" target the
    replace-dead-replica scenario pins in ``BENCH_reconfig.json``).
    """

    epochs: int
    reconfigs_completed: int
    joint_windows: int
    transfer_versions: int
    epoch_retries: int
    unavailability_window: int
    retired_servers: int

    def describe(self) -> str:
        return (
            f"reconfig: epochs={self.epochs} completed={self.reconfigs_completed} "
            f"transferred={self.transfer_versions} retries={self.epoch_retries} "
            f"unavailability_window={self.unavailability_window} retired={self.retired_servers}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "epochs": self.epochs,
            "reconfigs_completed": self.reconfigs_completed,
            "joint_windows": self.joint_windows,
            "transfer_versions": self.transfer_versions,
            "epoch_retries": self.epoch_retries,
            "unavailability_window": self.unavailability_window,
            "retired_servers": self.retired_servers,
        }


@dataclass(frozen=True)
class PersistenceMetrics:
    """Stable-storage measurements of one execution.

    Only populated when consensus members ran with a
    :class:`~repro.persist.PersistencePlane` attached.  ``recoveries`` counts
    the crash-recovery paths actually taken (``forget()`` with a store),
    ``checkpoints``/``compacted_entries`` the log-compaction activity, and
    ``retained_entries`` the *largest* in-memory log suffix any member ended
    with — the number compaction is supposed to bound (compare against
    ``log_length``, the full history length).  ``journal_bytes`` totals the
    on-disk journal sizes for file-backed stores (``None`` for the in-sim
    backend)."""

    members: int
    recoveries: int
    checkpoints: int
    compacted_entries: int
    log_length: int
    retained_entries: int
    store_appends: int
    store_snapshots: int
    journal_bytes: Optional[int] = None

    def compaction_ratio(self) -> float:
        """Fraction of the history discarded behind snapshots (0 = nothing)."""
        if self.log_length <= 0:
            return 0.0
        return self.compacted_entries / self.log_length

    def describe(self) -> str:
        base = (
            f"persistence: members={self.members} recoveries={self.recoveries} "
            f"checkpoints={self.checkpoints} compacted={self.compacted_entries} "
            f"retained={self.retained_entries}/{self.log_length}"
        )
        if self.journal_bytes is not None:
            base += f" journal_bytes={self.journal_bytes}"
        return base

    def as_dict(self) -> Dict[str, Any]:
        return {
            "persistent_members": self.members,
            "recoveries": self.recoveries,
            "checkpoints": self.checkpoints,
            "compacted_entries": self.compacted_entries,
            "log_length": self.log_length,
            "retained_entries": self.retained_entries,
            "compaction_ratio": round(self.compaction_ratio(), 4),
            "store_appends": self.store_appends,
            "store_snapshots": self.store_snapshots,
            "journal_bytes": self.journal_bytes,
        }


@dataclass(frozen=True)
class ControllerMetrics:
    """Automated-rebalancing measurements of one execution.

    Only populated when the system was built with a
    :class:`~repro.consensus.controller.ControllerPolicy`.  Everything comes
    from the controller's self-describing internal actions plus the shared
    directory: ``time_to_heal`` is the virtual-time span from the first
    ``replica-dead`` detection to the last derived change reaching its
    target configuration (``None`` when nothing was detected or nothing
    healed); ``converged`` means every derived change reached its target and
    no configuration change was left in flight.
    """

    probes: int
    acks: int
    dead_detected: int
    plans_replace: int
    plans_grow: int
    plans_rejected: int
    healed: int
    time_to_heal: Optional[int]
    converged: bool

    def describe(self) -> str:
        heal = "-" if self.time_to_heal is None else str(self.time_to_heal)
        return (
            f"controller: probes={self.probes} acks={self.acks} "
            f"dead={self.dead_detected} replace={self.plans_replace} "
            f"grow={self.plans_grow} healed={self.healed} "
            f"time_to_heal={heal} converged={self.converged}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "probes": self.probes,
            "probe_acks": self.acks,
            "dead_detected": self.dead_detected,
            "plans_replace": self.plans_replace,
            "plans_grow": self.plans_grow,
            "plans_rejected": self.plans_rejected,
            "healed": self.healed,
            "time_to_heal": self.time_to_heal,
            "converged": self.converged,
        }


@dataclass
class ExperimentMetrics:
    """Aggregated measurements of one protocol execution."""

    protocol: str
    transactions: Tuple[TransactionMetrics, ...]
    read_rounds: AggregateStats
    read_latency_steps: AggregateStats
    read_messages: AggregateStats
    read_versions: AggregateStats
    write_latency_steps: AggregateStats
    write_messages: AggregateStats
    total_messages: int
    total_steps: int
    #: populated only for runs with a fault plane installed
    faults: Optional[FaultMetrics] = None
    #: populated only for runs with replication_factor > 1
    replication: Optional[ReplicationMetrics] = None
    #: populated only for runs with consensus_factor > 1
    consensus: Optional[ConsensusMetrics] = None
    #: populated only for runs built with a reconfiguration plan
    reconfig: Optional[ReconfigMetrics] = None
    #: populated only for runs built with a rebalancing controller
    controller: Optional[ControllerMetrics] = None
    #: populated only for runs with a persistence plane attached
    persistence: Optional[PersistenceMetrics] = None

    def reads(self) -> Tuple[TransactionMetrics, ...]:
        return tuple(t for t in self.transactions if t.kind == "read")

    def writes(self) -> Tuple[TransactionMetrics, ...]:
        return tuple(t for t in self.transactions if t.kind == "write")

    def max_read_rounds(self) -> int:
        return int(self.read_rounds.maximum) if self.read_rounds.count else 0

    def max_versions(self) -> int:
        return int(self.read_versions.maximum) if self.read_versions.count else 1

    def describe(self) -> str:
        lines = [
            f"metrics[{self.protocol}]: {len(self.reads())} reads, {len(self.writes())} writes, "
            f"{self.total_messages} messages, {self.total_steps} steps",
            f"  read rounds   : {self.read_rounds.describe()}",
            f"  read latency  : {self.read_latency_steps.describe()}",
            f"  read messages : {self.read_messages.describe()}",
            f"  read versions : {self.read_versions.describe()}",
            f"  write latency : {self.write_latency_steps.describe()}",
        ]
        if self.faults is not None:
            lines.append("  " + self.faults.describe())
        if self.replication is not None:
            lines.append("  " + self.replication.describe())
        if self.consensus is not None:
            lines.append("  " + self.consensus.describe())
        if self.reconfig is not None:
            lines.append("  " + self.reconfig.describe())
        if self.controller is not None:
            lines.append("  " + self.controller.describe())
        if self.persistence is not None:
            lines.append("  " + self.persistence.describe())
        return "\n".join(lines)


def _versions_for_record(simulation: Simulation, record: TransactionRecord) -> int:
    from ..core.snow import versions_in_replies

    if not isinstance(record.txn, ReadTransaction):
        return 1
    max_versions, _replies = versions_in_replies(
        simulation.trace, str(record.txn_id), record.client, simulation.servers()
    )
    return max_versions


def _collect_fault_metrics(simulation: Simulation) -> Optional[FaultMetrics]:
    """Build the availability/fault block when a fault injector is installed."""
    from ..faults.injector import FaultInjector

    plane = getattr(simulation, "fault_plane", None)
    if not isinstance(plane, FaultInjector):
        return None
    records = simulation.transaction_records()
    reads = [r for r in records if isinstance(r.txn, ReadTransaction)]
    writes = [r for r in records if not isinstance(r.txn, ReadTransaction)]
    stats = plane.stats
    read_vlat = [r.latency_virtual() for r in reads if r.latency_virtual() is not None]
    write_vlat = [r.latency_virtual() for r in writes if r.latency_virtual() is not None]
    return FaultMetrics(
        plan=plane.plan.name or "faults",
        submitted=len(records),
        completed=sum(1 for r in records if r.complete),
        read_submitted=len(reads),
        read_completed=sum(1 for r in reads if r.complete),
        write_submitted=len(writes),
        write_completed=sum(1 for r in writes if r.complete),
        messages_dropped=stats.dropped,
        messages_duplicated=stats.duplicated,
        duplicates_suppressed=stats.duplicates_suppressed,
        retransmissions=stats.retransmissions,
        held_by_partition=stats.held_by_partition,
        held_by_crash=stats.held_by_crash,
        abandoned_messages=stats.abandoned,
        crashes=stats.crashes,
        recoveries=stats.recoveries,
        read_latency_virtual=AggregateStats.from_values(read_vlat),
        write_latency_virtual=AggregateStats.from_values(write_vlat),
    )


def _collect_replication_metrics(
    simulation: Simulation, placement, quorum_policy
) -> Optional[ReplicationMetrics]:
    """Build the replication block for a non-trivial placement."""
    if placement is None or quorum_policy is None or placement.is_trivial():
        return None
    factor = placement.replication_factor
    replies = [
        record.annotations["quorum_replies"]
        for record in simulation.transaction_records()
        if isinstance(record.txn, ReadTransaction) and "quorum_replies" in record.annotations
    ]
    return ReplicationMetrics(
        replication_factor=factor,
        quorum=quorum_policy.describe(),
        read_quorum=quorum_policy.read_quorum(factor),
        write_quorum=quorum_policy.write_quorum(factor),
        num_replica_servers=len(placement.servers()),
        read_quorum_replies=AggregateStats.from_values(replies),
    )


def _consensus_metrics_from_registry(simulation: Simulation, members: int) -> ConsensusMetrics:
    """Read the consensus block off the observability plane's registry.

    The plane's trace observer counted every consensus internal action as it
    was appended, so this is a handful of dictionary lookups instead of a
    full trace walk — and provably equal to the walk (pinned by
    ``tests/obs/test_plane_metrics.py``).
    """
    registry = simulation.obs.registry
    return ConsensusMetrics(
        members=members,
        elections=registry.counter_value("consensus.events", kind="candidacy"),
        leaders_elected=registry.counter_value("consensus.events", kind="became-leader"),
        max_term=max(1, int(registry.gauge_value("consensus.max_term") or 1)),
        entries_applied=registry.counter_value("consensus.events", kind="apply"),
        commit_latency=AggregateStats.from_values(
            [int(v) for v in registry.histogram_values("consensus.commit_latency")]
        ),
        leader_elected_at=tuple(
            int(v) for v in registry.histogram_values("consensus.leader_elected_vtime")
        ),
        lease_acquisitions=registry.counter_value("consensus.events", kind="lease-acquired"),
        lease_renewals=registry.counter_value("consensus.events", kind="lease-renewed"),
        lease_expiries=registry.counter_value("consensus.events", kind="lease-expired"),
        local_reads=registry.counter_value("consensus.events", kind="local-read"),
        read_applies=registry.counter_value("consensus.read_applies"),
        lease_read_latency=AggregateStats.from_values(
            [int(v) for v in registry.histogram_values("consensus.lease_read_latency")]
        ),
    )


def _collect_consensus_metrics(simulation: Simulation) -> Optional[ConsensusMetrics]:
    """Build the consensus block when a replicated coordinator is registered."""
    from ..ioa.actions import ActionKind

    group = getattr(simulation.topology, "consensus_group", lambda: ())()
    if not group:
        return None
    if getattr(simulation, "obs", None) is not None:
        return _consensus_metrics_from_registry(simulation, len(group))
    elections = leaders = applied = 0
    acquired = renewed = expired = local = read_applies = 0
    max_term = 1
    latencies: List[int] = []
    elected_at: List[int] = []
    read_latencies: List[int] = []
    for action in simulation.trace:
        if action.kind != ActionKind.INTERNAL or not action.info:
            continue
        info = dict(action.info)
        kind = info.get("consensus")
        if kind is None:
            continue
        max_term = max(max_term, int(info.get("term", 1)))
        if kind == "candidacy":
            elections += 1
        elif kind == "became-leader":
            leaders += 1
            elected_at.append(int(info.get("vtime", 0)))
        elif kind == "apply":
            applied += 1
            if "commit_latency" in info:
                latencies.append(int(info["commit_latency"]))
            if info.get("read"):
                read_applies += 1
        elif kind == "lease-acquired":
            acquired += 1
        elif kind == "lease-renewed":
            renewed += 1
        elif kind == "lease-expired":
            expired += 1
        elif kind == "local-read":
            local += 1
            if "read_latency" in info:
                read_latencies.append(int(info["read_latency"]))
    return ConsensusMetrics(
        members=len(group),
        elections=elections,
        leaders_elected=leaders,
        max_term=max_term,
        entries_applied=applied,
        commit_latency=AggregateStats.from_values(latencies),
        leader_elected_at=tuple(elected_at),
        lease_acquisitions=acquired,
        lease_renewals=renewed,
        lease_expiries=expired,
        local_reads=local,
        read_applies=read_applies,
        lease_read_latency=AggregateStats.from_values(read_latencies),
    )


def _collect_reconfig_metrics(simulation: Simulation, directory) -> Optional[ReconfigMetrics]:
    """Build the reconfiguration block from the shared placement directory."""
    if directory is None:
        return None
    joints = sum(1 for t in directory.transitions if t["kind"] == "joint-begin")
    commits = sum(1 for t in directory.transitions if t["kind"] == "commit")
    # The longest span any one transaction was blocked behind epoch retries:
    # from its first retry to its response (or to the final clock if it never
    # responded; to its last retry when no virtual clock was recorded).
    window = 0
    first_retry: Dict[str, int] = {}
    last_retry: Dict[str, int] = {}
    for txn, vtime in directory.retries:
        first_retry.setdefault(txn, vtime)
        last_retry[txn] = vtime
    records = {str(r.txn_id): r for r in simulation.transaction_records()}
    for txn, started in first_retry.items():
        record = records.get(txn)
        if record is not None and record.respond_vtime is not None:
            span = record.respond_vtime - started
        elif record is not None and not record.complete:
            span = simulation.now() - started
        else:
            span = last_retry[txn] - started + 1
        window = max(window, span)
    return ReconfigMetrics(
        epochs=directory.epoch,
        reconfigs_completed=commits,
        joint_windows=joints,
        transfer_versions=directory.transfer_volume(),
        epoch_retries=len(directory.retries),
        unavailability_window=window,
        retired_servers=len(directory.retired),
    )


def _controller_metrics_from_registry(
    simulation: Simulation, directory
) -> Optional[ControllerMetrics]:
    """Read the rebalancing block off the observability plane's registry
    (same shortcut as :func:`_consensus_metrics_from_registry`)."""
    registry = simulation.obs.registry
    if registry.counter_total("controller.events") == 0:
        return None
    dead = registry.counter_value("controller.events", kind="replica-dead")
    replaces = registry.counter_value("controller.events", kind="plan-replace")
    grows = registry.counter_value("controller.events", kind="plan-grow")
    healed = registry.counter_value("controller.events", kind="healed")
    first_dead = registry.gauge_value("controller.first_dead_vtime") if dead else None
    last_heal = registry.gauge_value("controller.last_heal_vtime") if healed else None
    return ControllerMetrics(
        probes=registry.counter_value("controller.probes"),
        acks=registry.counter_value("controller.acks"),
        dead_detected=dead,
        plans_replace=replaces,
        plans_grow=grows,
        plans_rejected=registry.counter_value("reconfig.events", kind="rejected"),
        healed=healed,
        time_to_heal=(
            int(last_heal) - int(first_dead)
            if first_dead is not None and last_heal is not None
            else None
        ),
        converged=(
            healed == replaces + grows
            and (directory is None or not directory.in_flight())
        ),
    )


def _collect_controller_metrics(
    simulation: Simulation, directory
) -> Optional[ControllerMetrics]:
    """Build the rebalancing block from the controller's internal actions."""
    from ..ioa.actions import ActionKind

    if getattr(simulation, "obs", None) is not None:
        return _controller_metrics_from_registry(simulation, directory)
    probes = acks = dead = replaces = grows = rejected = healed = 0
    first_dead: Optional[int] = None
    last_heal: Optional[int] = None
    seen = False
    for action in simulation.trace:
        if (
            action.kind == ActionKind.RECV
            and action.message is not None
            and action.message.msg_type == "ctl-ack"
        ):
            # Count delivered acks from the trace itself: acks landing after
            # the final tick would be invisible to any per-tick counter.
            acks += 1
            continue
        if action.kind != ActionKind.INTERNAL or not action.info:
            continue
        info = dict(action.info)
        if info.get("reconfig") == "rejected":
            rejected += 1
            continue
        kind = info.get("controller")
        if kind is None:
            continue
        seen = True
        if kind == "tick":
            probes += int(info.get("probes", 0))
        elif kind == "replica-dead":
            dead += 1
            if first_dead is None:
                first_dead = int(info.get("vtime", 0))
        elif kind == "plan-replace":
            replaces += 1
        elif kind == "plan-grow":
            grows += 1
        elif kind == "healed":
            healed += 1
            last_heal = int(info.get("vtime", 0))
    if not seen:
        return None
    time_to_heal = (
        last_heal - first_dead
        if first_dead is not None and last_heal is not None
        else None
    )
    converged = (
        healed == replaces + grows
        and (directory is None or not directory.in_flight())
    )
    return ControllerMetrics(
        probes=probes,
        acks=acks,
        dead_detected=dead,
        plans_replace=replaces,
        plans_grow=grows,
        plans_rejected=rejected,
        healed=healed,
        time_to_heal=time_to_heal,
        converged=converged,
    )


def _collect_persistence_metrics(simulation: Simulation) -> Optional[PersistenceMetrics]:
    """Build the persistence block when members carry stable stores."""
    group = getattr(simulation.topology, "consensus_group", lambda: ())()
    members = [simulation.automaton(name) for name in group]
    members = [m for m in members if getattr(m, "stable_store", None) is not None]
    if not members:
        return None
    stores = [m.stable_store for m in members]
    journal_bytes = None
    file_stores = [s for s in stores if getattr(s, "backend", "") == "file"]
    if file_stores:
        journal_bytes = sum(
            s.path.stat().st_size for s in file_stores if s.path.exists()
        )
    return PersistenceMetrics(
        members=len(members),
        recoveries=sum(m.recoveries for m in members),
        checkpoints=sum(m.checkpoints for m in members),
        compacted_entries=sum(m.log.compacted_entries for m in members),
        log_length=max(m.log.last_index for m in members),
        retained_entries=max(len(m.log.entries) for m in members),
        store_appends=sum(s.appends for s in stores),
        store_snapshots=sum(s.snapshots for s in stores),
        journal_bytes=journal_bytes,
    )


def collect_metrics(
    simulation: Simulation,
    protocol_name: str = "",
    placement=None,
    quorum_policy=None,
    directory=None,
) -> ExperimentMetrics:
    """Aggregate per-transaction measurements from a finished simulation.

    ``placement`` / ``quorum_policy`` (optional) enable the replication
    block; ``directory`` (optional) the reconfiguration block; pass them
    from the built system's handle.
    """
    transactions: List[TransactionMetrics] = []
    total_messages = 0
    for record in simulation.transaction_records():
        kind = "read" if isinstance(record.txn, ReadTransaction) else "write"
        versions = _versions_for_record(simulation, record)
        total_messages += record.messages_sent
        transactions.append(
            TransactionMetrics(
                txn_id=str(record.txn_id),
                kind=kind,
                client=record.client,
                rounds=record.rounds,
                messages_sent=record.messages_sent,
                latency_steps=record.latency_steps(),
                versions=versions,
                annotations=tuple(sorted(record.annotations.items())),
            )
        )

    reads = [t for t in transactions if t.kind == "read"]
    writes = [t for t in transactions if t.kind == "write"]
    return ExperimentMetrics(
        protocol=protocol_name,
        transactions=tuple(transactions),
        read_rounds=AggregateStats.from_values([t.rounds for t in reads]),
        read_latency_steps=AggregateStats.from_values(
            [t.latency_steps for t in reads if t.latency_steps is not None]
        ),
        read_messages=AggregateStats.from_values([t.messages_sent for t in reads]),
        read_versions=AggregateStats.from_values([t.versions for t in reads]),
        write_latency_steps=AggregateStats.from_values(
            [t.latency_steps for t in writes if t.latency_steps is not None]
        ),
        write_messages=AggregateStats.from_values([t.messages_sent for t in writes]),
        total_messages=total_messages,
        total_steps=simulation.steps_taken,
        faults=_collect_fault_metrics(simulation),
        replication=_collect_replication_metrics(simulation, placement, quorum_policy),
        consensus=_collect_consensus_metrics(simulation),
        reconfig=_collect_reconfig_metrics(simulation, directory),
        controller=_collect_controller_metrics(simulation, directory),
        persistence=_collect_persistence_metrics(simulation),
    )
