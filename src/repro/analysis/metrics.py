"""Metric collection and aggregation for protocol experiments.

Latency in the simulator is measured in two complementary ways:

* **rounds** — the number of sequential client↔server round trips a READ
  transaction needed (the paper's latency measure: the O property's
  "one round" and the bounded-round guarantees of algorithms B and C);
* **trace steps** — the number of scheduler steps between invocation and
  response, a finer-grained proxy for wall-clock latency on an asynchronous
  network (every message delivery costs one step).

Message cost (requests + replies attributable to a transaction) captures the
throughput/overhead side: algorithm A pushes per-write work to the reader,
algorithms B and C to the coordinator, and the benchmark harness reports both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..ioa.simulation import Simulation, TransactionRecord
from ..txn.transactions import ReadTransaction, WriteTransaction


@dataclass(frozen=True)
class TransactionMetrics:
    """Per-transaction measurements."""

    txn_id: str
    kind: str  # "read" | "write"
    client: str
    rounds: int
    messages_sent: int
    latency_steps: Optional[int]
    versions: int = 1
    annotations: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        return (
            f"{self.txn_id} ({self.kind}@{self.client}): rounds={self.rounds}, "
            f"messages={self.messages_sent}, latency={self.latency_steps}, versions={self.versions}"
        )


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class AggregateStats:
    """Summary statistics over one metric."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "AggregateStats":
        if not values:
            return cls(count=0, mean=float("nan"), minimum=float("nan"), maximum=float("nan"), p50=float("nan"), p95=float("nan"))
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=float(min(values)),
            maximum=float(max(values)),
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
        )

    def describe(self) -> str:
        if self.count == 0:
            return "n=0"
        return f"n={self.count} mean={self.mean:.2f} min={self.minimum:.0f} p50={self.p50:.0f} p95={self.p95:.0f} max={self.maximum:.0f}"


@dataclass
class ExperimentMetrics:
    """Aggregated measurements of one protocol execution."""

    protocol: str
    transactions: Tuple[TransactionMetrics, ...]
    read_rounds: AggregateStats
    read_latency_steps: AggregateStats
    read_messages: AggregateStats
    read_versions: AggregateStats
    write_latency_steps: AggregateStats
    write_messages: AggregateStats
    total_messages: int
    total_steps: int

    def reads(self) -> Tuple[TransactionMetrics, ...]:
        return tuple(t for t in self.transactions if t.kind == "read")

    def writes(self) -> Tuple[TransactionMetrics, ...]:
        return tuple(t for t in self.transactions if t.kind == "write")

    def max_read_rounds(self) -> int:
        return int(self.read_rounds.maximum) if self.read_rounds.count else 0

    def max_versions(self) -> int:
        return int(self.read_versions.maximum) if self.read_versions.count else 1

    def describe(self) -> str:
        lines = [
            f"metrics[{self.protocol}]: {len(self.reads())} reads, {len(self.writes())} writes, "
            f"{self.total_messages} messages, {self.total_steps} steps",
            f"  read rounds   : {self.read_rounds.describe()}",
            f"  read latency  : {self.read_latency_steps.describe()}",
            f"  read messages : {self.read_messages.describe()}",
            f"  read versions : {self.read_versions.describe()}",
            f"  write latency : {self.write_latency_steps.describe()}",
        ]
        return "\n".join(lines)


def _versions_for_record(simulation: Simulation, record: TransactionRecord) -> int:
    from ..core.snow import versions_in_replies

    if not isinstance(record.txn, ReadTransaction):
        return 1
    max_versions, _replies = versions_in_replies(
        simulation.trace, str(record.txn_id), record.client, simulation.servers()
    )
    return max_versions


def collect_metrics(simulation: Simulation, protocol_name: str = "") -> ExperimentMetrics:
    """Aggregate per-transaction measurements from a finished simulation."""
    transactions: List[TransactionMetrics] = []
    total_messages = 0
    for record in simulation.transaction_records():
        kind = "read" if isinstance(record.txn, ReadTransaction) else "write"
        versions = _versions_for_record(simulation, record)
        total_messages += record.messages_sent
        transactions.append(
            TransactionMetrics(
                txn_id=str(record.txn_id),
                kind=kind,
                client=record.client,
                rounds=record.rounds,
                messages_sent=record.messages_sent,
                latency_steps=record.latency_steps(),
                versions=versions,
                annotations=tuple(sorted(record.annotations.items())),
            )
        )

    reads = [t for t in transactions if t.kind == "read"]
    writes = [t for t in transactions if t.kind == "write"]
    return ExperimentMetrics(
        protocol=protocol_name,
        transactions=tuple(transactions),
        read_rounds=AggregateStats.from_values([t.rounds for t in reads]),
        read_latency_steps=AggregateStats.from_values(
            [t.latency_steps for t in reads if t.latency_steps is not None]
        ),
        read_messages=AggregateStats.from_values([t.messages_sent for t in reads]),
        read_versions=AggregateStats.from_values([t.versions for t in reads]),
        write_latency_steps=AggregateStats.from_values(
            [t.latency_steps for t in writes if t.latency_steps is not None]
        ),
        write_messages=AggregateStats.from_values([t.messages_sent for t in writes]),
        total_messages=total_messages,
        total_steps=simulation.steps_taken,
    )
