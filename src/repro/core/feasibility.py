"""Empirical reproduction of the result matrices of Figure 1.

Figure 1(a) — *Is SNOW possible?* — classifies settings by client population
(2 clients / MWSR / ≥3 clients) and by whether client-to-client communication
is allowed.  Impossibility cannot be established by running programs, so the
matrix is reproduced with a two-sided experiment that makes the boundary
visible:

* **possible cells** (MWSR or 2-client with C2C): algorithm A is executed
  under many randomized and adversarial schedules with concurrent conflicting
  WRITE transactions, and every execution is checked against *all four* SNOW
  properties — the checkers never find a violation;
* **impossible cells**: the natural SNOW candidate (one-round, one-version,
  non-blocking latest-value reads, :mod:`repro.protocols.naive_snow`) is
  subjected to the same schedules and a strict-serializability violation is
  found and reported (with the seed / schedule that produced it).  The
  accompanying mechanical proof replays in :mod:`repro.proofs` cover the
  actual impossibility argument (Theorems 1 and 2).

Figure 1(b) — *Bounded SNW algorithms* — is reproduced directly by running
algorithms A, B and C plus the double-collect baseline and measuring rounds
and versions with the SNOW checkers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioa.network import SystemSetting, standard_settings
from ..ioa.scheduler import (
    AdversarialScheduler,
    DelayRule,
    FIFOScheduler,
    RandomScheduler,
    holds_message,
    until_transaction_done,
)
from .snow import SnowReport


@dataclass
class FeasibilityVerdict:
    """One cell of the Figure 1(a) matrix."""

    setting: SystemSetting
    snow_possible: bool
    paper_reference: str
    method: str
    protocol: str
    schedules_checked: int
    violating_seed: Optional[int] = None
    violation_note: str = ""

    def cell(self) -> str:
        return "yes" if self.snow_possible else "no"

    def describe(self) -> str:
        base = f"{self.setting.describe()}: SNOW {'possible' if self.snow_possible else 'impossible'} ({self.paper_reference})"
        if self.snow_possible:
            return base + f"; {self.protocol} satisfied SNOW on {self.schedules_checked} schedules"
        return base + (
            f"; {self.protocol} violated S under seed {self.violating_seed}"
            if self.violating_seed is not None
            else f"; {self.violation_note}"
        )


def paper_expectation(setting: SystemSetting) -> Tuple[bool, str]:
    """The paper's verdict for a setting: (possible?, reference)."""
    if setting.num_clients < 2 or setting.num_servers < 2:
        return True, "trivial (single client or single server serializes everything)"
    if setting.num_readers >= 2:
        # At least two readers and one writer: impossible even with C2C (Theorem 1).
        return False, "Theorem 1 (three or more clients, even with C2C)"
    # Single reader (2-client or MWSR):
    if setting.c2c:
        return True, "Theorem 3 (algorithm A, MWSR with C2C)"
    return False, "Theorem 2 / Section 5.1 (MWSR without C2C)"


# ----------------------------------------------------------------------
# Workloads used by the empirical search
# ----------------------------------------------------------------------
def _submit_contending_workload(handle, rounds: int = 3) -> Tuple[List[str], List[str]]:
    """Concurrent conflicting reads and writes over every object.

    Each writer issues ``rounds`` WRITE transactions covering all objects
    (values encode writer and round); each reader issues ``rounds`` READ
    transactions over all objects.  Nothing is ordered across clients, so
    the scheduler is free to interleave everything (the W property's
    "conflicting writes" situation).
    """
    write_ids: List[str] = []
    read_ids: List[str] = []
    for round_index in range(1, rounds + 1):
        for writer_index, writer in enumerate(handle.writers, start=1):
            updates = {obj: f"{writer}-r{round_index}" for obj in handle.objects}
            write_ids.append(handle.submit_write(updates, writer=writer))
        for reader in handle.readers:
            read_ids.append(handle.submit_read(handle.objects, reader=reader))
    return read_ids, write_ids


def _fracture_scheduler(first_write_id: str, first_read_id: str, objects: Sequence[str]) -> AdversarialScheduler:
    """A targeted adversary that splits a read across a concurrent write.

    It holds the read request to the first object's server until the write's
    install message has been applied there, while holding the write's install
    message to the last object's server until the read has completed — a
    latest-value read then observes the write on one server and misses it on
    the other (a fractured read).
    """
    from ..ioa.scheduler import until_message_delivered
    from ..txn.objects import server_for_object

    first_server = server_for_object(objects[0])
    last_server = server_for_object(objects[-1])
    rules = [
        DelayRule(
            name="hold-read-at-first-server-until-write-installed-there",
            holds=holds_message(dst=first_server, predicate=lambda m: m.get("txn") == first_read_id),
            until=until_message_delivered("write-val", dst=first_server),
        ),
        DelayRule(
            name="hold-write-at-last-server-until-read-done",
            holds=holds_message(dst=last_server, predicate=lambda m: m.get("txn") == first_write_id),
            until=until_transaction_done(first_read_id),
        ),
    ]
    return AdversarialScheduler(rules=rules)


# ----------------------------------------------------------------------
# Per-setting experiment
# ----------------------------------------------------------------------
def run_protocol_once(
    protocol_name: str,
    setting: SystemSetting,
    scheduler,
    workload_rounds: int = 3,
    seed: int = 0,
) -> SnowReport:
    """Run one protocol in one setting under one scheduler and report SNOW."""
    from ..protocols.registry import get_protocol

    protocol = get_protocol(protocol_name)
    handle = protocol.build(
        num_readers=setting.num_readers,
        num_writers=setting.num_writers,
        num_objects=setting.num_servers,
        scheduler=scheduler,
        seed=seed,
        c2c=setting.c2c,
    )
    _submit_contending_workload(handle, rounds=workload_rounds)
    handle.run_to_completion()
    return handle.snow_report()


def verify_possible_cell(
    setting: SystemSetting,
    schedules: int = 20,
    workload_rounds: int = 3,
) -> FeasibilityVerdict:
    """Check algorithm A satisfies SNOW across many schedules in a possible cell."""
    checked = 0
    for seed in range(schedules):
        scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
        report = run_protocol_once("algorithm-a", setting, scheduler, workload_rounds, seed)
        checked += 1
        if not report.satisfies_snow:
            return FeasibilityVerdict(
                setting=setting,
                snow_possible=False,
                paper_reference=paper_expectation(setting)[1],
                method="verification-failed",
                protocol="algorithm-a",
                schedules_checked=checked,
                violating_seed=seed,
                violation_note=report.describe(),
            )
    return FeasibilityVerdict(
        setting=setting,
        snow_possible=True,
        paper_reference=paper_expectation(setting)[1],
        method="verified-protocol",
        protocol="algorithm-a",
        schedules_checked=checked,
    )


def find_violation_in_impossible_cell(
    setting: SystemSetting,
    schedules: int = 50,
    workload_rounds: int = 2,
) -> FeasibilityVerdict:
    """Find an S-violation of the natural NOW candidate in an impossible cell."""
    reference = paper_expectation(setting)[1]
    checked = 0

    # Targeted adversary first: deterministic and fast.
    from ..protocols.registry import get_protocol

    protocol = get_protocol("naive-snow")
    handle = protocol.build(
        num_readers=setting.num_readers,
        num_writers=setting.num_writers,
        num_objects=setting.num_servers,
        scheduler=FIFOScheduler(),
        c2c=setting.c2c,
    )
    # Submit the workload first, then wire the adversary to the generated ids
    # (the scheduler is not consulted until the simulation runs).
    read_ids, write_ids = _submit_contending_workload(handle, rounds=workload_rounds)
    handle.simulation.scheduler = _fracture_scheduler(write_ids[0], read_ids[0], handle.objects)
    handle.run_to_completion()
    report = handle.snow_report()
    checked += 1
    if not report.satisfies_s and report.satisfies_n and report.satisfies_o and report.satisfies_w:
        return FeasibilityVerdict(
            setting=setting,
            snow_possible=False,
            paper_reference=reference,
            method="targeted-adversary",
            protocol="naive-snow",
            schedules_checked=checked,
            violating_seed=None,
            violation_note="targeted fracture schedule: "
            + (report.serializability.describe() if report.serializability else ""),
        )

    # Randomized search as a fallback.
    for seed in range(1, schedules + 1):
        report = run_protocol_once("naive-snow", setting, RandomScheduler(seed=seed), workload_rounds, seed)
        checked += 1
        if not report.satisfies_s:
            return FeasibilityVerdict(
                setting=setting,
                snow_possible=False,
                paper_reference=reference,
                method="randomized-search",
                protocol="naive-snow",
                schedules_checked=checked,
                violating_seed=seed,
                violation_note=report.serializability.describe() if report.serializability else "",
            )
    return FeasibilityVerdict(
        setting=setting,
        snow_possible=False,
        paper_reference=reference,
        method="proof-only",
        protocol="naive-snow",
        schedules_checked=checked,
        violation_note="no violation found empirically; impossibility rests on the mechanical proof replays",
    )


def check_setting(setting: SystemSetting, schedules: int = 20) -> FeasibilityVerdict:
    """Produce the Figure 1(a) verdict for one setting."""
    possible, _reference = paper_expectation(setting)
    if possible:
        return verify_possible_cell(setting, schedules=schedules)
    return find_violation_in_impossible_cell(setting, schedules=schedules)


def feasibility_matrix(schedules: int = 12) -> List[FeasibilityVerdict]:
    """The full Figure 1(a) matrix over the standard settings."""
    return [check_setting(setting, schedules=schedules) for setting in standard_settings()]


def format_feasibility_matrix(verdicts: Sequence[FeasibilityVerdict]) -> str:
    """Render the verdicts as the paper's Figure 1(a) table."""
    rows = {"two-clients": {}, "mwsr": {}, "three-clients": {}}
    for verdict in verdicts:
        for prefix in rows:
            if verdict.setting.name.startswith(prefix):
                rows[prefix][verdict.setting.c2c] = verdict
    lines = [
        "Is SNOW possible?          C2C: yes    C2C: no",
        "-" * 48,
    ]
    labels = {"two-clients": "2 clients", "mwsr": "MWSR", "three-clients": ">= 3 clients"}
    for prefix, label in labels.items():
        with_c2c = rows[prefix].get(True)
        without_c2c = rows[prefix].get(False)
        lines.append(
            f"{label:<26} {with_c2c.cell() if with_c2c else '?':<11} "
            f"{without_c2c.cell() if without_c2c else '?'}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 1(b): bounded SNW algorithms
# ----------------------------------------------------------------------
@dataclass
class BoundedSnwRow:
    """One measured row of the Figure 1(b) matrix."""

    protocol: str
    setting: str
    rounds_observed: int
    versions_observed: int
    claimed_rounds: Optional[int]
    claimed_versions: Optional[int]
    satisfies_snw: bool
    one_version: bool
    one_round: bool
    note: str = ""

    def describe(self) -> str:
        rounds = "unbounded" if self.claimed_rounds is None else str(self.claimed_rounds)
        versions = "|W|" if self.claimed_versions is None else str(self.claimed_versions)
        return (
            f"{self.protocol:<20} rounds={self.rounds_observed} (claim {rounds}), "
            f"versions={self.versions_observed} (claim {versions}), SNW={'yes' if self.satisfies_snw else 'NO'}"
        )


def bounded_snw_matrix(
    num_writers: int = 3,
    num_objects: int = 3,
    workload_rounds: int = 3,
    seeds: Sequence[int] = (0, 1, 2),
) -> List[BoundedSnwRow]:
    """Measure rounds/versions/SNW for the Figure 1(b) protocols."""
    from ..protocols.registry import get_protocol

    rows: List[BoundedSnwRow] = []
    specs = [
        ("algorithm-a", dict(num_readers=1, num_writers=num_writers, c2c=True), "MWSR + C2C"),
        ("algorithm-b", dict(num_readers=2, num_writers=num_writers, c2c=False), "MWMR, no C2C"),
        ("algorithm-c", dict(num_readers=2, num_writers=num_writers, c2c=False), "MWMR, no C2C"),
        ("occ-double-collect", dict(num_readers=2, num_writers=num_writers, c2c=False), "MWMR, no C2C"),
    ]
    for name, kwargs, setting_label in specs:
        max_rounds = 0
        max_versions = 0
        snw = True
        one_round = True
        one_version = True
        for seed in seeds:
            protocol = get_protocol(name)
            scheduler = FIFOScheduler() if seed == 0 else RandomScheduler(seed=seed)
            handle = protocol.build(num_objects=num_objects, scheduler=scheduler, seed=seed, **kwargs)
            _submit_contending_workload(handle, rounds=workload_rounds)
            handle.run_to_completion()
            report = handle.snow_report()
            max_rounds = max(max_rounds, report.max_rounds())
            max_versions = max(max_versions, report.max_versions())
            snw = snw and report.satisfies_snw
            one_round = one_round and report.one_round
            one_version = one_version and report.one_version
        protocol = get_protocol(name)
        rows.append(
            BoundedSnwRow(
                protocol=name,
                setting=setting_label,
                rounds_observed=max_rounds,
                versions_observed=max_versions,
                claimed_rounds=protocol.claimed_read_rounds,
                claimed_versions=protocol.claimed_versions,
                satisfies_snw=snw,
                one_round=one_round,
                one_version=one_version,
            )
        )
    return rows


def format_bounded_snw_matrix(rows: Sequence[BoundedSnwRow]) -> str:
    """Render the measured Figure 1(b) matrix."""
    lines = [
        "Bounded SNW algorithms (rows measured on executions)",
        f"{'protocol':<22} {'setting':<16} {'rounds':<8} {'versions':<10} SNW",
        "-" * 66,
    ]
    for row in rows:
        lines.append(
            f"{row.protocol:<22} {row.setting:<16} {row.rounds_observed:<8} "
            f"{row.versions_observed:<10} {'yes' if row.satisfies_snw else 'NO'}"
        )
    return "\n".join(lines)
