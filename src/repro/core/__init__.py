"""Core analyses: SNOW property checkers, serializability, feasibility matrices."""

from .feasibility import (
    BoundedSnwRow,
    FeasibilityVerdict,
    bounded_snw_matrix,
    check_setting,
    feasibility_matrix,
    find_violation_in_impossible_cell,
    format_bounded_snw_matrix,
    format_feasibility_matrix,
    paper_expectation,
    run_protocol_once,
    verify_possible_cell,
)
from .serializability import (
    Lemma20Result,
    SerializabilityResult,
    check_lemma20,
    check_strict_serializability,
    tag_precedes,
)
from .snow import (
    ReadTransactionReport,
    SnowReport,
    analyze_read_transaction,
    blocking_servers_for,
    check_snow,
    round_trips_per_server,
    versions_in_replies,
)

__all__ = [
    "BoundedSnwRow",
    "FeasibilityVerdict",
    "bounded_snw_matrix",
    "check_setting",
    "feasibility_matrix",
    "find_violation_in_impossible_cell",
    "format_bounded_snw_matrix",
    "format_feasibility_matrix",
    "paper_expectation",
    "run_protocol_once",
    "verify_possible_cell",
    "Lemma20Result",
    "SerializabilityResult",
    "check_lemma20",
    "check_strict_serializability",
    "tag_precedes",
    "ReadTransactionReport",
    "SnowReport",
    "analyze_read_transaction",
    "blocking_servers_for",
    "check_snow",
    "round_trips_per_server",
    "versions_in_replies",
]
