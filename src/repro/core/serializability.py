"""Strict-serializability checkers.

Two complementary checkers are provided:

* :func:`check_strict_serializability` — the *semantic* checker.  Given a
  :class:`~repro.txn.history.History` it searches for a total order of the
  complete transactions that (a) respects real-time precedence and (b) makes
  every READ transaction's observed result equal to what the sequential data
  type ``OT`` would return at that point.  It returns a witness serial order
  when one exists and a diagnosis when none does.  This is the checker used
  to *verify* protocol executions and to *expose* the Eiger anomaly of
  Figure 5.

* :func:`check_lemma20` — the *proof-technique* checker.  Lemma 20 of the
  paper gives four conditions ``P1–P4`` on an irreflexive partial order ``≺``
  (derived from per-transaction tags) that together imply strict
  serializability; this is exactly how Theorems 3, 4 and 5 prove algorithms
  A, B and C correct.  The checker takes the tags reported by a protocol and
  verifies ``P1–P4`` mechanically, then (as a sanity cross-check) confirms
  that the tag order is accepted by the semantic checker.

Both checkers operate only on complete transactions, matching the paper's
reduction (via Lynch's Lemma 13.10) from arbitrary well-formed executions to
transaction-complete ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..txn.datatype import OTState, apply_transaction
from ..txn.history import History, HistoryEntry
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction


@dataclass
class SerializabilityResult:
    """Outcome of a strict-serializability check."""

    ok: bool
    witness_order: Tuple[str, ...] = ()
    violations: Tuple[str, ...] = ()
    explored_states: int = 0

    def describe(self) -> str:
        if self.ok:
            order = " < ".join(self.witness_order)
            return f"strictly serializable (witness order: {order}; {self.explored_states} states explored)"
        return "NOT strictly serializable: " + "; ".join(self.violations)


def _observed_read_map(entry: HistoryEntry) -> Optional[Dict[str, Any]]:
    """Normalise the observed result of a READ into an object→value dict."""
    result = entry.result
    if result is None:
        return None
    if isinstance(result, ReadResult):
        return result.as_dict
    if isinstance(result, Mapping):
        return dict(result)
    if isinstance(result, (list, tuple)):
        # positional: align with the transaction's object list
        return dict(zip(entry.txn.objects, result))
    return None


def check_strict_serializability(
    history: History,
    max_states: int = 2_000_000,
) -> SerializabilityResult:
    """Search for a legal strict serialization of ``history``.

    The search walks the DAG of "sets of already-serialized transactions":
    from a frontier state it may serialize next any transaction all of whose
    real-time predecessors are already serialized, provided a READ's observed
    values match the current abstract state.  Memoisation is on the pair
    ``(frozenset of placed txn ids, abstract state)`` — two different orders
    of the same writes that produce the same state are explored once.

    The worst case is exponential in the number of *concurrent* transactions,
    which is small in all experiments (the checkers are applied to bounded
    histories); ``max_states`` bounds the work defensively.
    """
    entries = list(history.complete_entries())
    if not entries:
        return SerializabilityResult(ok=True, witness_order=(), explored_states=0)

    by_id: Dict[str, HistoryEntry] = {e.txn_id: e for e in entries}
    ids: List[str] = [e.txn_id for e in entries]

    # Pre-compute real-time predecessors for each transaction.
    predecessors: Dict[str, FrozenSet[str]] = {}
    for entry in entries:
        preds = frozenset(other.txn_id for other in entries if other is not entry and other.precedes(entry))
        predecessors[entry.txn_id] = preds

    observed: Dict[str, Optional[Dict[str, Any]]] = {
        e.txn_id: _observed_read_map(e) if isinstance(e.txn, ReadTransaction) else None for e in entries
    }

    initial_state = OTState.initial(history.objects, history.initial_value)
    visited: Set[Tuple[FrozenSet[str], OTState]] = set()
    explored = 0

    # Iterative depth-first search with an explicit stack so deep histories
    # cannot blow the Python recursion limit.
    # Stack holds (placed_frozenset, state, order_list, candidate_iterator).
    def candidates(placed: FrozenSet[str], state: OTState) -> List[str]:
        out = []
        for txn_id in ids:
            if txn_id in placed:
                continue
            if not predecessors[txn_id] <= placed:
                continue
            entry = by_id[txn_id]
            if isinstance(entry.txn, ReadTransaction):
                expected, _ = apply_transaction(state, entry.txn)
                seen = observed[txn_id]
                if seen is not None and seen != expected.as_dict:
                    continue
            out.append(txn_id)
        return out

    stack: List[Tuple[FrozenSet[str], OTState, Tuple[str, ...], List[str]]] = []
    placed0: FrozenSet[str] = frozenset()
    stack.append((placed0, initial_state, (), candidates(placed0, initial_state)))
    visited.add((placed0, initial_state))

    while stack:
        placed, state, order, cands = stack[-1]
        if len(placed) == len(ids):
            return SerializabilityResult(ok=True, witness_order=order, explored_states=explored)
        if not cands:
            stack.pop()
            continue
        txn_id = cands.pop()
        entry = by_id[txn_id]
        _, next_state = apply_transaction(state, entry.txn)
        next_placed = placed | {txn_id}
        key = (next_placed, next_state)
        if key in visited:
            continue
        visited.add(key)
        explored += 1
        if explored > max_states:
            return SerializabilityResult(
                ok=False,
                violations=(f"search aborted after exploring {max_states} states",),
                explored_states=explored,
            )
        stack.append((next_placed, next_state, order + (txn_id,), candidates(next_placed, next_state)))

    # Exhausted without serializing everything: diagnose why.
    violations = _diagnose(history)
    return SerializabilityResult(ok=False, violations=violations, explored_states=explored)


def _diagnose(history: History) -> Tuple[str, ...]:
    """Produce human-readable hints about why no serialization exists."""
    notes: List[str] = []
    reads = [e for e in history.complete_entries() if isinstance(e.txn, ReadTransaction)]
    writes = [e for e in history.complete_entries() if isinstance(e.txn, WriteTransaction)]
    for read_entry in reads:
        seen = _observed_read_map(read_entry)
        if seen is None:
            continue
        # Which write wrote each observed value?
        for obj, value in seen.items():
            sources = [w for w in writes if obj in w.txn.objects and dict(w.txn.updates).get(obj) == value]
            if not sources and value != history.initial_value:
                notes.append(
                    f"{read_entry.txn_id} observed {obj}={value!r} which no WRITE transaction produced"
                )
        # Mixed-version detection: values from writes that are real-time ordered
        # while an intermediate write to another read object is skipped.
        source_writes: List[HistoryEntry] = []
        for obj, value in seen.items():
            for w in writes:
                if obj in w.txn.objects and dict(w.txn.updates).get(obj) == value:
                    source_writes.append(w)
        for earlier in source_writes:
            for later in source_writes:
                if earlier is later:
                    continue
                if earlier.precedes(later):
                    # read saw `earlier`'s value for some object although it also
                    # saw a later write; check whether `later` (or something after
                    # `earlier`) overwrote that object.
                    for obj, value in seen.items():
                        if obj in earlier.txn.objects and dict(earlier.txn.updates).get(obj) == value:
                            overwriters = [
                                w
                                for w in writes
                                if w is not earlier
                                and obj in w.txn.objects
                                and (earlier.precedes(w) or w is later)
                                and (w.precedes(later) or w is later)
                            ]
                            if overwriters:
                                notes.append(
                                    f"{read_entry.txn_id} mixes versions: it saw {later.txn_id} "
                                    f"(which real-time follows {earlier.txn_id}) but still returned "
                                    f"{obj}={value!r} from {earlier.txn_id}, skipping "
                                    f"{', '.join(w.txn_id for w in overwriters)}"
                                )
    if not notes:
        notes.append("no total order consistent with real-time precedence reproduces the observed read values")
    return tuple(dict.fromkeys(notes))


# ----------------------------------------------------------------------
# Lemma 20: tag-based sufficient condition
# ----------------------------------------------------------------------
@dataclass
class Lemma20Result:
    """Outcome of the Lemma 20 (P1–P4) check."""

    ok: bool
    violations: Tuple[str, ...] = ()
    order: Tuple[str, ...] = ()
    cross_check: Optional[SerializabilityResult] = None

    def describe(self) -> str:
        if self.ok:
            return f"P1-P4 hold; induced order: {' < '.join(self.order)}"
        return "Lemma 20 violated: " + "; ".join(self.violations)


def tag_precedes(
    tag_a: Any, is_write_a: bool, tag_b: Any, is_write_b: bool
) -> bool:
    """The ``≺`` order used by Theorems 3-5: tag order, writes before reads on ties."""
    if tag_a < tag_b:
        return True
    if tag_a == tag_b and is_write_a and not is_write_b:
        return True
    return False


def check_lemma20(
    history: History,
    tags: Mapping[str, Any],
    cross_check: bool = True,
) -> Lemma20Result:
    """Verify the conditions ``P1``–``P4`` of Lemma 20 for a tagged history.

    ``tags`` maps each complete transaction id to the tag assigned by the
    protocol (for algorithms A/B/C this is the index derived from the
    reader's/coordinator's ``List``).  The induced relation is::

        φ ≺ π  iff  tag(φ) < tag(π), or tag(φ) == tag(π) and φ is a WRITE and π is a READ

    Checks performed:

    * **P1** (finite past) — trivially true for finite histories, but we also
      reject non-numeric tags that would break well-foundedness.
    * **P2** (real-time consistency) — if π responds before φ is invoked then
      not ``φ ≺ π``.
    * **P3** (writes totally ordered) — any WRITE is ordered against every
      other transaction; with numeric tags this amounts to write tags being
      unique and comparable.
    * **P4** (reads see the latest preceding write) — for every READ and every
      object it returns, the value equals the one written by the ≺-latest
      WRITE to that object that precedes the READ, or the initial value if
      there is none.
    """
    entries = list(history.complete_entries())
    violations: List[str] = []

    missing = [e.txn_id for e in entries if e.txn_id not in tags]
    if missing:
        violations.append(f"missing tags for: {', '.join(missing)}")
        return Lemma20Result(ok=False, violations=tuple(violations))

    def is_write(entry: HistoryEntry) -> bool:
        return isinstance(entry.txn, WriteTransaction)

    def precedes(a: HistoryEntry, b: HistoryEntry) -> bool:
        return tag_precedes(tags[a.txn_id], is_write(a), tags[b.txn_id], is_write(b))

    # P1 -----------------------------------------------------------------
    for entry in entries:
        tag = tags[entry.txn_id]
        if not isinstance(tag, (int, float)) or isinstance(tag, bool):
            violations.append(f"P1: tag of {entry.txn_id} is not numeric ({tag!r})")
    if violations:
        # Non-numeric tags make the ≺ relation ill-defined; stop before P2-P4.
        return Lemma20Result(ok=False, violations=tuple(violations))

    # P2 -----------------------------------------------------------------
    for a in entries:
        for b in entries:
            if a is b:
                continue
            if a.precedes(b) and precedes(b, a):
                violations.append(
                    f"P2: {a.txn_id} responds before {b.txn_id} is invoked, yet {b.txn_id} ≺ {a.txn_id} "
                    f"(tags {tags[b.txn_id]!r} vs {tags[a.txn_id]!r})"
                )

    # P3 -----------------------------------------------------------------
    for a in entries:
        if not is_write(a):
            continue
        for b in entries:
            if a is b:
                continue
            if not precedes(a, b) and not precedes(b, a):
                violations.append(
                    f"P3: WRITE {a.txn_id} is not ordered against {b.txn_id} "
                    f"(tags {tags[a.txn_id]!r} vs {tags[b.txn_id]!r})"
                )

    # P4 -----------------------------------------------------------------
    for read_entry in entries:
        if is_write(read_entry):
            continue
        observed = _observed_read_map(read_entry)
        if observed is None:
            continue
        for obj, value in observed.items():
            prior_writes = [
                w
                for w in entries
                if is_write(w) and obj in w.txn.objects and precedes(w, read_entry)
            ]
            if prior_writes:
                latest = max(prior_writes, key=lambda w: tags[w.txn_id])
                expected = dict(latest.txn.updates)[obj]
                if value != expected:
                    violations.append(
                        f"P4: {read_entry.txn_id} returned {obj}={value!r} but the ≺-latest preceding "
                        f"write {latest.txn_id} wrote {obj}={expected!r}"
                    )
            else:
                if value != history.initial_value:
                    violations.append(
                        f"P4: {read_entry.txn_id} returned {obj}={value!r} with no preceding write "
                        f"(expected initial value {history.initial_value!r})"
                    )

    ok = not violations
    order: Tuple[str, ...] = ()
    if ok:
        order = tuple(
            e.txn_id
            for e in sorted(entries, key=lambda e: (tags[e.txn_id], 0 if is_write(e) else 1, e.invoke_index))
        )

    result = Lemma20Result(ok=ok, violations=tuple(violations), order=order)
    if ok and cross_check:
        result.cross_check = check_strict_serializability(history)
        if not result.cross_check.ok:
            result.ok = False
            result.violations = (
                "internal inconsistency: P1-P4 hold but the semantic checker rejects the history",
            ) + result.cross_check.violations
    return result
