"""Checkers for the N, O and W properties of SNOW (Definitions 2.1-2.3).

These checkers work on the *trace* of a finished simulation plus its
transaction history, so they apply uniformly to every protocol in
:mod:`repro.protocols` (including the blocking / multi-round baselines, which
is how the latency comparison benchmarks quantify exactly which property each
baseline gives up).

Conventions the protocol implementations follow (and the checkers rely on):

* every message that belongs to a transaction carries a ``txn`` payload field
  with the transaction id;
* every server reply to a read request carries a ``num_versions`` payload
  field stating how many versions of the object value the reply contains
  (1 for algorithms A and B, up to ``|Vals|`` for algorithm C).

The S property has its own module (:mod:`repro.core.serializability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..ioa.actions import Action, ActionKind, Message
from ..ioa.simulation import Simulation, TransactionRecord
from ..ioa.trace import Trace, TraceError
from ..txn.history import History, HistoryEntry
from ..txn.transactions import ReadTransaction, WriteTransaction
from .serializability import SerializabilityResult, check_strict_serializability


# ----------------------------------------------------------------------
# Per-read-transaction report
# ----------------------------------------------------------------------
@dataclass
class ReadTransactionReport:
    """SNOW-relevant measurements of a single READ transaction."""

    txn_id: str
    reader: str
    non_blocking: bool
    blocking_servers: Tuple[str, ...]
    rounds: int
    round_trips_per_server: Dict[str, int] = field(default_factory=dict)
    max_versions_in_reply: int = 1
    replies_seen: int = 0
    completed: bool = True

    @property
    def one_round(self) -> bool:
        """O's one-round half: each read is a single client↔server round trip."""
        return self.rounds <= 1 and all(count <= 1 for count in self.round_trips_per_server.values())

    @property
    def one_version(self) -> bool:
        """O's one-version half: every reply carries exactly one version."""
        return self.max_versions_in_reply <= 1

    @property
    def satisfies_o(self) -> bool:
        return self.one_round and self.one_version

    def describe(self) -> str:
        return (
            f"{self.txn_id}: non_blocking={self.non_blocking} rounds={self.rounds} "
            f"max_versions={self.max_versions_in_reply} one_round={self.one_round} "
            f"one_version={self.one_version}"
        )


@dataclass
class SnowReport:
    """Aggregate SNOW verdict for one execution of one protocol."""

    strict_serializable: bool
    non_blocking: bool
    one_round: bool
    one_version: bool
    writes_complete: bool
    conflicting_writes_present: bool
    read_reports: Tuple[ReadTransactionReport, ...] = ()
    serializability: Optional[SerializabilityResult] = None
    notes: Tuple[str, ...] = ()

    @property
    def satisfies_s(self) -> bool:
        return self.strict_serializable

    @property
    def satisfies_n(self) -> bool:
        return self.non_blocking

    @property
    def satisfies_o(self) -> bool:
        return self.one_round and self.one_version

    @property
    def satisfies_w(self) -> bool:
        return self.writes_complete

    @property
    def satisfies_snow(self) -> bool:
        return self.satisfies_s and self.satisfies_n and self.satisfies_o and self.satisfies_w

    @property
    def satisfies_snw(self) -> bool:
        """S + N + W (the bounded-latency family of Sections 8-9)."""
        return self.satisfies_s and self.satisfies_n and self.satisfies_w

    def max_rounds(self) -> int:
        return max((r.rounds for r in self.read_reports), default=0)

    def max_versions(self) -> int:
        return max((r.max_versions_in_reply for r in self.read_reports), default=1)

    def property_string(self) -> str:
        """Compact ``SNOW``-style string, lowercase for missing properties."""
        return "".join(
            [
                "S" if self.satisfies_s else "s",
                "N" if self.satisfies_n else "n",
                "O" if self.satisfies_o else "o",
                "W" if self.satisfies_w else "w",
            ]
        )

    def describe(self) -> str:
        lines = [
            f"SNOW report: {self.property_string()} "
            f"(rounds<= {self.max_rounds()}, versions<= {self.max_versions()})"
        ]
        for report in self.read_reports:
            lines.append("  " + report.describe())
        for note in self.notes:
            lines.append("  note: " + note)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# N property
# ----------------------------------------------------------------------
def blocking_servers_for(
    trace: Trace,
    txn_id: str,
    reader: str,
    servers: Sequence[str],
    consensus_group: Sequence[str] = (),
) -> Tuple[str, ...]:
    """Servers that violated non-blocking for the given READ transaction.

    For each server we locate every receipt of a request from ``reader``
    tagged with ``txn`` and the server's next reply back to ``reader`` with
    the same tag; if any *input* action (another message receipt) occurs at
    the server strictly between the two, the server blocked — it needed
    external input before it could answer (Definition 2.1 requires the
    response to be enabled with no intervening input action).

    A request that never gets a reply also counts as blocking (the server is
    waiting for something) unless the transaction never completed at all, in
    which case the caller decides how to treat it.

    Read-repair installs (payload ``repair=True``) are maintenance traffic a
    finished quorum round emits toward stale replicas — fire-and-forget by
    design, not part of the read algorithm's request/reply protocol — so
    they neither open a reply obligation here nor count as round trips in
    :func:`round_trips_per_server`.

    **Replicated coordinator extension.**  When the system replicates its
    coordinator (``consensus_group`` non-empty), the group is one *logical*
    metadata server: clients broadcast each request to every member, only the
    leader answers (after a consensus round among the members), and the
    intra-group replication traffic is internal to the service rather than
    input the read waits on.  Definition 2.1's per-activation test therefore
    cannot be applied member-by-member — followers legitimately never reply,
    and the leader's reply necessarily spans activations.  The group-level
    reading of non-blocking is the one the paper's property is about: the
    read never waits on *other transactions* — the consensus round is a
    bounded message exchange inside the service, like the quorum rounds of
    the placement layer.  The check for the group is accordingly: if the
    reader addressed the group, some member must have answered.
    """
    offenders: List[str] = []
    group_set = frozenset(consensus_group)
    server_set = set(servers)
    for server in servers:
        if server in group_set:
            continue
        projection = trace.project(server)
        for position, action in enumerate(projection):
            if action.kind != ActionKind.RECV or action.message is None:
                continue
            message = action.message
            if message.src != reader or message.get("txn") != txn_id:
                continue
            if message.get("repair"):
                continue
            reply_position: Optional[int] = None
            blocked = False
            for later_position in range(position + 1, len(projection)):
                later = projection[later_position]
                if (
                    later.kind == ActionKind.SEND
                    and later.message is not None
                    and later.message.dst == reader
                    and later.message.get("txn") == txn_id
                ):
                    reply_position = later_position
                    break
                if later.kind == ActionKind.RECV:
                    blocked = True
            if reply_position is None or blocked:
                offenders.append(server)
                break
    if group_set:
        requested = replied = False
        for action in trace:
            if action.kind != ActionKind.SEND or action.message is None:
                continue
            message = action.message
            if message.get("txn") != txn_id:
                continue
            if message.src == reader and message.dst in group_set:
                requested = True
            elif message.src in group_set and message.dst == reader:
                replied = True
        if requested and not replied:
            offenders.extend(sorted(group_set))
    return tuple(offenders)


# ----------------------------------------------------------------------
# O property
# ----------------------------------------------------------------------
def round_trips_per_server(
    trace: Trace,
    txn_id: str,
    reader: str,
    servers: Sequence[str],
) -> Dict[str, int]:
    """Number of requests the reader sent to each server for this transaction."""
    counts: Dict[str, int] = {}
    for action in trace:
        if action.kind != ActionKind.SEND or action.message is None:
            continue
        message = action.message
        if message.src != reader or message.dst not in servers:
            continue
        if message.get("txn") != txn_id or message.get("repair"):
            continue
        counts[message.dst] = counts.get(message.dst, 0) + 1
    return counts


def versions_in_replies(
    trace: Trace,
    txn_id: str,
    reader: str,
    servers: Sequence[str],
) -> Tuple[int, int]:
    """``(max_versions, replies_seen)`` over server replies for this transaction."""
    max_versions = 0
    replies = 0
    for action in trace:
        if action.kind != ActionKind.SEND or action.message is None:
            continue
        message = action.message
        if message.src not in servers or message.dst != reader:
            continue
        if message.get("txn") != txn_id:
            continue
        replies += 1
        max_versions = max(max_versions, int(message.get("num_versions", 1)))
    return (max_versions if replies else 1), replies


# ----------------------------------------------------------------------
# Aggregate check
# ----------------------------------------------------------------------
def analyze_read_transaction(
    simulation: Simulation,
    record: TransactionRecord,
) -> ReadTransactionReport:
    """Build the per-READ report for one transaction record."""
    servers = simulation.servers()
    trace = simulation.trace
    reader = record.client
    txn_id = str(record.txn_id)
    consensus_group = getattr(simulation.topology, "consensus_group", lambda: ())()
    offenders = blocking_servers_for(trace, txn_id, reader, servers, consensus_group)
    trips = round_trips_per_server(trace, txn_id, reader, servers)
    max_versions, replies = versions_in_replies(trace, txn_id, reader, servers)
    return ReadTransactionReport(
        txn_id=txn_id,
        reader=reader,
        non_blocking=not offenders,
        blocking_servers=offenders,
        rounds=record.rounds,
        round_trips_per_server=trips,
        max_versions_in_reply=max_versions,
        replies_seen=replies,
        completed=record.complete,
    )


def check_snow(
    simulation: Simulation,
    history: Optional[History] = None,
    objects: Optional[Sequence[str]] = None,
) -> SnowReport:
    """Run every SNOW property checker against a finished simulation.

    Needs a full-mode trace: the N and O checkers walk per-message
    ``SEND``/``RECV`` records, and a ``sampled``/``ring`` trace retains only
    some of them — the verdict would be *wrong* (phantom blocking servers,
    zero replies seen), not merely incomplete, so a partial record is
    refused loudly, mirroring :meth:`Trace.prefix`.
    """
    if not simulation.trace.is_full():
        raise TraceError(
            f"check_snow() needs a full-mode trace (this one is "
            f"{simulation.trace.mode.describe()}): the N/O checkers walk "
            "per-message records and a partial record would yield wrong "
            "verdicts, not just incomplete ones"
        )
    if history is None:
        history = History.from_simulation(simulation, objects=objects)

    notes: List[str] = []

    # S ------------------------------------------------------------------
    serializability = check_strict_serializability(history.restricted_to_complete())

    # W ------------------------------------------------------------------
    write_entries = history.writes()
    writes_complete = all(entry.complete for entry in write_entries)
    if not writes_complete:
        incomplete = [e.txn_id for e in write_entries if not e.complete]
        notes.append("incomplete WRITE transactions: " + ", ".join(incomplete))
    conflicting = False
    for read_entry in history.reads():
        for write_entry in write_entries:
            if not write_entry.complete or not read_entry.complete:
                continue
            if read_entry.overlaps(write_entry) and set(read_entry.txn.objects) & set(write_entry.txn.objects):
                conflicting = True
                break
        if conflicting:
            break

    # N and O --------------------------------------------------------------
    read_reports: List[ReadTransactionReport] = []
    for record in simulation.transaction_records():
        if isinstance(record.txn, ReadTransaction) and record.complete:
            read_reports.append(analyze_read_transaction(simulation, record))

    non_blocking = all(r.non_blocking for r in read_reports)
    one_round = all(r.one_round for r in read_reports)
    one_version = all(r.one_version for r in read_reports)

    return SnowReport(
        strict_serializable=serializability.ok,
        non_blocking=non_blocking,
        one_round=one_round,
        one_version=one_version,
        writes_complete=writes_complete,
        conflicting_writes_present=conflicting,
        read_reports=tuple(read_reports),
        serializability=serializability,
        notes=tuple(notes),
    )
