"""The natural (and doomed) SNOW candidate: read the latest value everywhere.

This protocol does exactly what a designer unaware of the SNOW theorem would
try first: READ transactions send one parallel request per object and every
server immediately answers with its *current latest* value — one round, one
version, non-blocking, and WRITE transactions are plain per-server installs.

It satisfies N, O and W by construction.  It does **not** satisfy S: with at
least two servers a READ that races a multi-object WRITE can observe the new
value on one server and the old value on another ("fractured read"), and no
serial order explains that.  The feasibility analysis
(:mod:`repro.core.feasibility`) uses this protocol as the executable witness
of the impossible cells of Figure 1(a): for every setting in which SNOW is
impossible, an adversarial or randomized schedule quickly produces an
execution whose history the strict-serializability checker rejects — while
the same searches over algorithm A's executions (in the possible cells) find
nothing.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol


class NaiveServer(ServerAutomaton):
    """Installs writes immediately; answers reads with the latest value."""

    def __init__(self, name: str, object_id: str, initial_value: Any = 0) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.store = VersionStore(object_id, initial_value)

    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "write-val":
            self.store.put(message.get("key"), message.get("value"))
            ctx.send(message.src, "ack-write", {"txn": message.get("txn")}, phase="write")
        elif message.msg_type == "read-latest":
            version = self.store.latest()
            ctx.send(
                message.src,
                "read-latest-reply",
                {
                    "txn": message.get("txn"),
                    "object": self.object_id,
                    "value": version.value,
                    "num_versions": 1,
                },
                phase="read",
            )


class NaiveWriter(WriterAutomaton):
    """Installs each update at its server and waits for the acks."""

    def __init__(self, name: str, objects: Sequence[str]) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.z = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        for object_id, value in txn.updates:
            yield Send(
                dst=server_for_object(object_id),
                msg_type="write-val",
                payload={"txn": txn.txn_id, "object": object_id, "key": key, "value": value},
                phase="write",
            )
        yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "ack-write" and m.get("txn") == txn_id,
            count=len(txn.updates),
            description="write acks",
        )
        return WRITE_OK


class NaiveReader(ReaderAutomaton):
    """One parallel round of read-latest requests."""

    def __init__(self, name: str, objects: Sequence[str]) -> None:
        super().__init__(name)
        self.objects = tuple(objects)

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        for object_id in txn.objects:
            yield Send(
                dst=server_for_object(object_id),
                msg_type="read-latest",
                payload={"txn": txn.txn_id, "object": object_id},
                phase="read",
            )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "read-latest-reply" and m.get("txn") == txn_id,
            count=len(txn.objects),
            description="read replies",
        )
        values = {reply.get("object"): reply.get("value") for reply in replies}
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class NaiveSnowCandidate(Protocol):
    """N + O + W by construction, S only by luck — the executable impossibility witness."""

    name = "naive-snow"
    description = "Latest-value one-round reads: satisfies N, O, W but violates S under contention"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "NOW (S fails: fractured reads)"
    claimed_read_rounds = 1
    claimed_versions = 1

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(NaiveReader(reader, objects))
        for writer in config.writers():
            automata.append(NaiveWriter(writer, objects))
        for object_id, server in zip(objects, config.servers()):
            automata.append(NaiveServer(server, object_id, config.initial_value))
        return automata
