"""The natural (and doomed) SNOW candidate: read the latest value everywhere.

This protocol does exactly what a designer unaware of the SNOW theorem would
try first: READ transactions send one parallel request per object and every
server immediately answers with its *current latest* value — one round, one
version, non-blocking, and WRITE transactions are plain per-server installs.

It satisfies N, O and W by construction.  It does **not** satisfy S: with at
least two servers a READ that races a multi-object WRITE can observe the new
value on one server and the old value on another ("fractured read"), and no
serial order explains that.  The feasibility analysis
(:mod:`repro.core.feasibility`) uses this protocol as the executable witness
of the impossible cells of Figure 1(a): for every setting in which SNOW is
impossible, an adversarial or randomized schedule quickly produces an
execution whose history the strict-serializability checker rejects — while
the same searches over algorithm A's executions (in the possible cells) find
nothing.

Under the placement layer, writes install at a write quorum per object and
reads take a read quorum per object, keeping the version with the largest
key among the quorum (replies carry the key only in replicated groups, so
single-copy traces stay byte-identical).  Replication changes nothing about
the protocol's character: it stays NOW-but-not-S.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .replication import (
    ReplicatedStorageServer,
    default_policy,
    emit_sends,
    epoch_quorum_round,
    per_object_reply_await,
    placement_or_single_copy,
    write_value_round,
)


class NaiveServer(ReplicatedStorageServer):
    """Installs writes immediately; answers reads with the latest value.

    The shared storage replica already speaks this wire (``write-val`` /
    ``read-latest``) — the only deviation from the seed's server is the
    ``phase`` label on write acks, restored here.
    """

    def handle_write_val(self, message: Message, ctx: Context) -> None:
        self.store.put(message.get("key"), message.get("value"))
        if message.get("repair"):
            return  # read-repair installs are fire-and-forget (no ack)
        ctx.send(message.src, "ack-write", self._ack_payload(message), phase="write")


class NaiveWriter(WriterAutomaton):
    """Installs each update at a write quorum of its replica group."""

    #: shared placement directory when built with a reconfiguration plan
    #: (injected by the build; None keeps the rounds byte-identical)
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.z = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        yield from write_value_round(
            txn.txn_id, tuple(txn.updates), key, self.placement, self.policy, phase="write",
            directory=self.directory, ctx=ctx, batch=self.batch_fanout,
        )
        return WRITE_OK


class NaiveReader(ReaderAutomaton):
    """One parallel round of read-latest requests over the replica groups."""

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        if self.directory is not None:
            directory = self.directory
            read_set = tuple(txn.objects)

            def send_factory(epoch: int, attempt: int):
                return [
                    Send(
                        dst=replica,
                        msg_type="read-latest",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "epoch": epoch,
                            "attempt": attempt,
                        },
                        phase="read",
                    )
                    for object_id in read_set
                    for replica in directory.targets(object_id)
                ]

            replies, _attempt = yield from epoch_quorum_round(
                txn.txn_id,
                directory,
                ctx,
                send_factory,
                reply_types=("read-latest-reply",),
                needs_factory=lambda: {
                    obj: directory.read_needed(obj) for obj in read_set
                },
                description="read replies",
                batch=self.batch_fanout,
            )
            replies = [m for m in replies if m.msg_type == "read-latest-reply"]
        else:
            yield from emit_sends(
                [
                    Send(
                        dst=replica,
                        msg_type="read-latest",
                        payload={"txn": txn.txn_id, "object": object_id},
                        phase="read",
                    )
                    for object_id in txn.objects
                    for replica in self.placement.group(object_id)
                ],
                self.batch_fanout,
            )
            replies = yield per_object_reply_await(
                txn.txn_id,
                tuple(txn.objects),
                self.placement,
                self.policy,
                reply_type="read-latest-reply",
                description="read replies",
            )
        values: Dict[str, Any] = {}
        best_key: Dict[str, Key] = {}
        for reply in replies:
            object_id = reply.get("object")
            key = reply.get("key")
            if key is None:
                # Single-copy reply: exactly one per object, take it.
                values[object_id] = reply.get("value")
                continue
            # Replicated: keep the newest version among the quorum (first
            # reply wins key ties, which keeps the choice deterministic).
            if object_id in best_key and key <= best_key[object_id]:
                continue
            best_key[object_id] = key
            values[object_id] = reply.get("value")
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class NaiveSnowCandidate(Protocol):
    """N + O + W by construction, S only by luck — the executable impossibility witness."""

    name = "naive-snow"
    description = "Latest-value one-round reads: satisfies N, O, W but violates S under contention"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "NOW (S fails: fractured reads)"
    claimed_read_rounds = 1
    claimed_versions = 1
    supports_reconfig = True

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        return NaiveServer(name, object_id, config.initial_value, group=group)

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        policy = config.quorum_policy()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(NaiveReader(reader, objects, placement, policy))
        for writer in config.writers():
            automata.append(NaiveWriter(writer, objects, placement, policy))
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    NaiveServer(replica, object_id, config.initial_value, group=group)
                )
        return automata
