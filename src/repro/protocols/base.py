"""Protocol framework: building systems, submitting workloads, collecting results.

Every protocol in the repository (the paper's algorithms A, B and C, the
Eiger-style protocol of Section 6, and the baselines) is packaged as a
:class:`Protocol`.  A protocol knows how to *build* a system — readers,
writers and servers wired onto a :class:`~repro.ioa.simulation.Simulation`
with the right topology — and the returned :class:`SystemHandle` provides a
uniform surface for submitting transactions, running the execution and
extracting histories, SNOW reports and Lemma-20 tags.

Conventions shared by all protocol implementations:

* servers are named after the object they hold (``ox`` ↦ ``sx``, ``o3`` ↦ ``s3``);
  with ``replication_factor=N`` the placement layer adds replicas
  ``sx.2 … sx.N`` behind the same primary name (see
  :mod:`repro.txn.placement`);
* readers are ``r1, r2, …`` and writers ``w1, w2, …``;
* every protocol message belonging to a transaction carries a ``txn`` payload
  field, and every server reply to a read request carries ``num_versions`` —
  the SNOW checkers in :mod:`repro.core.snow` rely on both;
* protocols report the tag they assign to each transaction via
  ``ctx.annotate_transaction(txn_id, tag=...)`` so that the Lemma 20 checker
  can be applied to any execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..consensus.controller import ControllerPolicy, ReconfigController
from ..consensus.reconfig import (
    CONSENSUS_GROUP,
    REPLICA_GROUP,
    PlacementDirectory,
    ReconfigDriver,
    ReconfigPlan,
)
from ..ioa.automaton import Automaton
from ..ioa.network import FaultPlane, Topology
from ..ioa.scheduler import Scheduler
from ..ioa.simulation import Simulation
from ..ioa.trace import Trace
from ..txn.history import History
from ..txn.objects import object_names, server_for_object
from ..txn.placement import (
    Placement,
    QuorumPolicy,
    coordinator_group_names,
    quorum_policy,
)
from ..txn.transactions import ReadTransaction, WriteTransaction, read as make_read, write_pairs


def reader_names(count: int) -> Tuple[str, ...]:
    return tuple(f"r{i}" for i in range(1, count + 1))


def writer_names(count: int) -> Tuple[str, ...]:
    return tuple(f"w{i}" for i in range(1, count + 1))


@dataclass
class BuildConfig:
    """Parameters of one system instantiation."""

    num_readers: int = 1
    num_writers: int = 1
    num_objects: int = 2
    initial_value: Any = 0
    seed: int = 0
    c2c: Optional[bool] = None  # None = protocol default
    scheduler: Optional[Scheduler] = None
    max_steps: int = 200_000
    #: optional network-conditions hook (None = the paper's reliable channels)
    fault_plane: Optional[FaultPlane] = None
    #: replicas per object (1 = the paper's one-server-per-object setting)
    replication_factor: int = 1
    #: quorum policy name or instance (see :mod:`repro.txn.placement`)
    quorum: Any = "read-one-write-all"
    #: consensus members replicating the coordinator / timestamp oracle
    #: (1 = the seed's single designated server, byte-identical)
    consensus_factor: int = 1
    #: randomized election timeout window in virtual-time steps (None = the
    #: consensus layer's default; only meaningful with consensus_factor > 1)
    election_timeout: Optional[Tuple[int, int]] = None
    #: scheduled membership changes (None = fixed membership, byte-identical
    #: to the seed; see :mod:`repro.consensus.reconfig`)
    reconfig: Optional[ReconfigPlan] = None
    #: automated-rebalancing control loop (None = no controller, byte-
    #: identical; see :mod:`repro.consensus.controller`)
    controller: Optional[ControllerPolicy] = None
    #: observability plane (None = no metrics/span hooks at all; an enabled
    #: plane is a passive listener, so the trace stays byte-identical —
    #: see :mod:`repro.obs`)
    obs: Optional[Any] = None
    #: trace record retention (None = full, byte-identical to seed; see
    #: :class:`~repro.ioa.trace.TraceMode` — ``sampled``/``ring`` keep
    #: counters and streaming monitors exact while recording fewer actions)
    trace_mode: Optional[Any] = None
    #: batch each quorum fan-out into one kernel flight (one scheduler event
    #: delivers the whole round; see :func:`repro.protocols.replication.
    #: emit_sends`).  Off by default: batching coalesces events, so every
    #: golden-pinned trace is recorded with it off.
    fanout_batching: bool = False
    #: pack queued consensus requests into one log entry per commit round
    #: (see :attr:`repro.consensus.coordinator.ReplicatedCoordinator.
    #: append_batching`); needs ``consensus_factor >= 2``.  Off by default.
    consensus_batching: bool = False
    #: stable storage for consensus members (a
    #: :class:`~repro.persist.PersistencePolicy` or ready-made
    #: :class:`~repro.persist.PersistencePlane`); needs ``consensus_factor
    #: >= 2``.  None (the default) keeps the seed's volatile members,
    #: byte-identical.
    persistence: Optional[Any] = None
    #: leader leases for the replicated coordinator (``True``, a duration,
    #: or a :class:`~repro.consensus.lease.LeasePolicy`): the lease holder
    #: answers read-only coordinator requests locally instead of committing
    #: a log entry; needs ``consensus_factor >= 2``.  None (the default)
    #: keeps the commit-round read path, byte-identical.
    leases: Optional[Any] = None

    def objects(self) -> Tuple[str, ...]:
        return object_names(self.num_objects)

    def placement(self) -> Placement:
        """The object → replica-group map of this system."""
        return Placement.for_objects(self.objects(), self.replication_factor)

    def quorum_policy(self) -> QuorumPolicy:
        return quorum_policy(self.quorum)

    def servers(self) -> Tuple[str, ...]:
        """Every storage server (all replicas), object-major, primaries first."""
        return self.placement().servers()

    def consensus_group(self) -> Tuple[str, ...]:
        """The replicated-coordinator members (empty at consensus_factor=1)."""
        return coordinator_group_names(self.consensus_factor)

    def readers(self) -> Tuple[str, ...]:
        return reader_names(self.num_readers)

    def writers(self) -> Tuple[str, ...]:
        return writer_names(self.num_writers)


class SystemHandle:
    """A built system: the simulation plus naming and result helpers."""

    def __init__(
        self,
        protocol: "Protocol",
        simulation: Simulation,
        config: BuildConfig,
        directory=None,
        persistence=None,
    ) -> None:
        self.protocol = protocol
        self.simulation = simulation
        self.config = config
        #: the shared epoch-versioned placement directory; None unless the
        #: system was built with a reconfiguration plan
        self.directory = directory
        #: the persistence plane (member name -> stable store); None unless
        #: the system was built with ``persistence=...``
        self.persistence = persistence
        #: the observability plane; None unless the system was built with one
        self.obs = config.obs
        self.readers = config.readers()
        self.writers = config.writers()
        self.objects = config.objects()
        self.placement = config.placement()
        self.quorum_policy = config.quorum_policy()
        self.servers = config.servers()
        self.consensus_group = config.consensus_group()
        self.initial_value = config.initial_value
        self._round_robin_reader = 0
        self._round_robin_writer = 0

    # ------------------------------------------------------------------
    # Workload submission
    # ------------------------------------------------------------------
    def submit_read(
        self,
        objects: Optional[Sequence[str]] = None,
        reader: Optional[str] = None,
        after: Sequence[str] = (),
        txn_id: str = "",
    ) -> str:
        """Queue a READ transaction; returns its transaction id."""
        if objects is None:
            objects = self.objects
        if reader is None:
            reader = self.readers[self._round_robin_reader % len(self.readers)]
            self._round_robin_reader += 1
        txn = make_read(*objects, txn_id=txn_id)
        return self.simulation.submit(reader, txn, txn_id=txn.txn_id, after=after)

    def submit_write(
        self,
        updates: Mapping[str, Any],
        writer: Optional[str] = None,
        after: Sequence[str] = (),
        txn_id: str = "",
    ) -> str:
        """Queue a WRITE transaction; returns its transaction id."""
        if writer is None:
            writer = self.writers[self._round_robin_writer % len(self.writers)]
            self._round_robin_writer += 1
        txn = write_pairs(tuple(updates.items()), txn_id=txn_id)
        return self.simulation.submit(writer, txn, txn_id=txn.txn_id, after=after)

    # ------------------------------------------------------------------
    # Execution and results
    # ------------------------------------------------------------------
    def run(self) -> Trace:
        return self.simulation.run()

    def run_to_completion(self) -> Trace:
        return self.simulation.run_to_completion()

    def history(self) -> History:
        return History.from_simulation(
            self.simulation, objects=self.objects, initial_value=self.initial_value
        )

    def snow_report(self):
        """Full SNOW property report (lazy import to avoid package cycles)."""
        from ..core.snow import check_snow

        return check_snow(self.simulation, self.history())

    def serializability(self):
        from ..core.serializability import check_strict_serializability

        return check_strict_serializability(self.history().restricted_to_complete())

    def tags(self) -> Dict[str, Any]:
        """Tags reported by the protocol (for the Lemma 20 checker)."""
        out: Dict[str, Any] = {}
        for record in self.simulation.transaction_records():
            if "tag" in record.annotations:
                out[str(record.txn_id)] = record.annotations["tag"]
        return out

    def lemma20(self):
        from ..core.serializability import check_lemma20

        return check_lemma20(self.history().restricted_to_complete(), self.tags())

    def transaction_records(self):
        return self.simulation.transaction_records()

    def trace(self) -> Trace:
        return self.simulation.trace

    def describe(self) -> str:
        base = (
            f"{self.protocol.name} system: readers={list(self.readers)}, writers={list(self.writers)}, "
            f"servers={list(self.servers)}, objects={list(self.objects)}"
        )
        if not self.placement.is_trivial():
            base += (
                f", replication={self.placement.replication_factor} "
                f"({self.quorum_policy.describe()})"
            )
        if self.consensus_group:
            base += f", consensus={len(self.consensus_group)} members [{','.join(self.consensus_group)}]"
        if self.directory is not None:
            base += f", reconfigurable (epoch {self.directory.epoch})"
        return base


class Protocol:
    """Base class for protocol packages.

    Subclasses set the class attributes describing the protocol's setting and
    implement :meth:`make_automata`, returning the automata to register.
    """

    name: str = "abstract"
    description: str = ""
    #: whether the protocol needs client-to-client communication (algorithm A does)
    requires_c2c: bool = False
    #: whether the protocol routes through a designated coordinator /
    #: timestamp oracle (the metadata service consensus_factor replicates)
    has_coordinator: bool = False
    #: whether the protocol supports mid-run membership reconfiguration (its
    #: client rounds are epoch-aware and it implements :meth:`make_replica`)
    supports_reconfig: bool = False
    #: whether the protocol is defined for more than one reader / writer
    supports_multiple_readers: bool = True
    supports_multiple_writers: bool = True
    #: documentation string of the guarantees the paper claims for the protocol
    claimed_properties: str = ""
    #: documented worst-case number of read rounds (None = unbounded)
    claimed_read_rounds: Optional[int] = None
    #: documented worst-case number of versions per reply (None = unbounded / |W|)
    claimed_versions: Optional[int] = 1

    # ------------------------------------------------------------------
    def make_automata(self, config: BuildConfig) -> Sequence[Automaton]:
        raise NotImplementedError

    def make_replica(
        self, config: BuildConfig, object_id: str, name: str, group: Tuple[str, ...]
    ) -> Automaton:
        """Build one storage replica for a mid-run membership change.

        Protocols that set ``supports_reconfig`` override this with exactly
        the server class :meth:`make_automata` uses, so a spawned replica is
        indistinguishable from a founding one.
        """
        raise NotImplementedError(
            f"protocol {self.name} does not build dynamic replicas (supports_reconfig=False)"
        )

    def make_consensus_machine(self, config: BuildConfig):
        """The coordinator state machine the consensus group replicates
        (None for protocols without a coordinator)."""
        return None

    def default_c2c(self) -> bool:
        return self.requires_c2c

    def validate_config(self, config: BuildConfig) -> None:
        if config.num_readers < 1 or config.num_writers < 1 or config.num_objects < 1:
            raise ValueError("system needs at least one reader, one writer and one object")
        if config.num_readers > 1 and not self.supports_multiple_readers:
            raise ValueError(f"protocol {self.name} is defined for a single reader (MWSR setting)")
        if config.num_writers > 1 and not self.supports_multiple_writers:
            raise ValueError(f"protocol {self.name} is defined for a single writer")
        if config.replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {config.replication_factor}"
            )
        if config.consensus_factor < 1:
            raise ValueError(
                f"consensus_factor must be >= 1, got {config.consensus_factor}"
            )
        if config.consensus_factor > 1 and not self.has_coordinator:
            raise ValueError(
                f"protocol {self.name} has no coordinator/metadata service to replicate "
                f"(consensus_factor={config.consensus_factor} needs one)"
            )
        if config.consensus_batching and config.consensus_factor < 2:
            raise ValueError(
                "consensus_batching packs replicated-coordinator log entries; "
                "it needs consensus_factor >= 2 (there is no log at factor 1)"
            )
        if config.persistence is not None:
            if config.consensus_factor < 2:
                raise ValueError(
                    "persistence attaches stable storage to replicated-"
                    "coordinator members; it needs consensus_factor >= 2 "
                    "(there is no member state to persist at factor 1)"
                )
            from ..persist import PersistencePlane

            PersistencePlane.of(config.persistence)  # raises on a bad value
        if config.leases is not None:
            if config.consensus_factor < 2:
                raise ValueError(
                    "leases let the replicated coordinator's lease holder "
                    "serve reads locally; they need consensus_factor >= 2 "
                    "(the factor-1 designated server already answers locally)"
                )
            from ..consensus.lease import LeasePolicy

            LeasePolicy.of(config.leases)  # raises on a bad value
        if config.controller is not None and getattr(config.controller, "use_health", False):
            health = getattr(config.obs, "health", None) if config.obs is not None else None
            if health is None:
                raise ValueError(
                    "ControllerPolicy.use_health consumes the observability "
                    "plane's health signals, but this build has none — pass "
                    "obs=ObservabilityPlane(health=True) (or a custom "
                    "SLOPolicy) alongside the controller"
                )
        if config.controller is not None:
            if not self.supports_reconfig:
                raise ValueError(
                    f"protocol {self.name} does not support membership reconfiguration "
                    "(its client rounds are not epoch-aware), so the rebalancing "
                    "controller cannot drive it"
                )
            if type(self).make_replica is Protocol.make_replica:
                raise ValueError(
                    f"protocol {self.name} sets supports_reconfig but does not "
                    "override make_replica; the rebalancing controller cannot "
                    "spawn its replacement replicas"
                )
        if config.reconfig is not None and config.reconfig.requests:
            if not self.supports_reconfig:
                raise ValueError(
                    f"protocol {self.name} does not support membership reconfiguration "
                    "(its client rounds are not epoch-aware)"
                )
            if any(r.kind == REPLICA_GROUP for r in config.reconfig.requests) and (
                type(self).make_replica is Protocol.make_replica
            ):
                raise ValueError(
                    f"protocol {self.name} sets supports_reconfig but does not "
                    "override make_replica; replica-group changes cannot spawn "
                    "its servers"
                )
            if any(r.kind == CONSENSUS_GROUP for r in config.reconfig.requests) and (
                config.consensus_factor < 2
            ):
                raise ValueError(
                    "consensus-group reconfiguration needs consensus_factor >= 2 "
                    "(there is no group to reconfigure at factor 1)"
                )
            if self.has_coordinator and config.consensus_factor == 1:
                # The designated coordinator is the primary of the first
                # object; retiring it through a replica-group change would
                # strand every coordinator round (the coordinator role does
                # not migrate). Replicate the coordinator first.
                coordinator = config.servers()[0]
                first_object = config.objects()[0]
                for request in config.reconfig.requests:
                    if (
                        request.object_id == first_object
                        and coordinator not in request.group
                    ):
                        raise ValueError(
                            f"reconfiguration would retire {coordinator!r}, the "
                            f"designated coordinator of protocol {self.name}; the "
                            "coordinator role does not migrate through a replica-"
                            "group change — replicate it with consensus_factor >= 2 "
                            "first"
                        )
        # Quorum intersection must hold for every replica group.
        config.placement().validate_policy(config.quorum_policy())
        c2c = config.c2c if config.c2c is not None else self.default_c2c()
        if self.requires_c2c and not c2c:
            raise ValueError(
                f"protocol {self.name} requires client-to-client communication, "
                "but the configuration disallows it"
            )

    # ------------------------------------------------------------------
    def build(
        self,
        num_readers: int = 1,
        num_writers: int = 1,
        num_objects: int = 2,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        initial_value: Any = 0,
        c2c: Optional[bool] = None,
        max_steps: int = 200_000,
        fault_plane: Optional[FaultPlane] = None,
        replication_factor: int = 1,
        quorum: Any = "read-one-write-all",
        consensus_factor: int = 1,
        election_timeout: Optional[Tuple[int, int]] = None,
        reconfig: Optional[ReconfigPlan] = None,
        controller: Optional[ControllerPolicy] = None,
        obs: Optional[Any] = None,
        trace_mode: Optional[Any] = None,
        fanout_batching: bool = False,
        consensus_batching: bool = False,
        persistence: Optional[Any] = None,
        leases: Optional[Any] = None,
    ) -> SystemHandle:
        """Instantiate the protocol as a ready-to-run system.

        ``fault_plane`` installs a network-conditions hook (see
        :mod:`repro.faults`); ``None`` keeps the paper's reliable channels.
        ``replication_factor`` places each object on a group of N servers and
        ``quorum`` (a name or a :class:`~repro.txn.placement.QuorumPolicy`)
        drives the read/write quorum rounds.  ``consensus_factor`` replicates
        the coordinator / timestamp oracle over N consensus members (see
        :mod:`repro.consensus`); ``election_timeout`` overrides their
        randomized election window.  ``reconfig`` installs a
        :class:`~repro.consensus.reconfig.ReconfigPlan` of mid-run membership
        changes (a shared epoch-versioned
        :class:`~repro.consensus.reconfig.PlacementDirectory` plus the admin
        driver automaton); ``controller`` installs the automated-rebalancing
        control loop (:mod:`repro.consensus.controller`), which *derives*
        membership changes from observed failures and latency and feeds them
        to the same driver.  ``obs`` installs an
        :class:`~repro.obs.ObservabilityPlane` (kernel metrics registry,
        streaming invariant monitors, health/SLO plane, optional wall-clock
        profiler); the plane only listens, so even an enabled plane leaves
        the trace byte-identical.  ``trace_mode`` selects trace record
        retention (:class:`~repro.ioa.TraceMode`; ``None``/``full`` keeps
        every action).  ``persistence`` attaches stable storage to every
        consensus member (:mod:`repro.persist`): term/vote/log survive
        crash-with-amnesia, and with ``compact_every`` set the members
        checkpoint their state machines and compact their logs.  ``leases``
        installs a :class:`~repro.consensus.lease.LeasePolicy` on every
        consensus member: the leader answers read-only coordinator requests
        locally under a quorum-proven lease instead of committing a log
        entry.  The defaults reproduce the paper's one-server-per-object,
        single-coordinator system byte-for-byte.
        """
        config = BuildConfig(
            num_readers=num_readers,
            num_writers=num_writers,
            num_objects=num_objects,
            initial_value=initial_value,
            seed=seed,
            c2c=c2c,
            scheduler=scheduler,
            max_steps=max_steps,
            fault_plane=fault_plane,
            replication_factor=replication_factor,
            quorum=quorum,
            consensus_factor=consensus_factor,
            election_timeout=election_timeout,
            reconfig=reconfig,
            controller=controller,
            obs=obs,
            trace_mode=trace_mode,
            fanout_batching=fanout_batching,
            consensus_batching=consensus_batching,
            persistence=persistence,
            leases=leases,
        )
        self.validate_config(config)
        allow_c2c = config.c2c if config.c2c is not None else self.default_c2c()
        topology = Topology(allow_client_to_client=allow_c2c)
        placement = config.placement()
        topology.set_replica_groups(
            {obj: placement.group(obj) for obj in placement.objects()}
        )
        topology.set_consensus_group(config.consensus_group())
        simulation = Simulation(
            topology=topology,
            scheduler=config.scheduler,
            seed=config.seed,
            max_steps=config.max_steps,
            fault_plane=config.fault_plane,
            obs=config.obs,
            trace_mode=config.trace_mode,
        )
        if config.obs is not None:
            monitors = getattr(config.obs, "monitors", None)
            if monitors is not None:
                # The quorum-intersection monitor needs the build's quorum
                # rule to judge joint configurations as they open.
                monitors.set_quorum_policy(config.quorum_policy())
        simulation.add_automata(self.make_automata(config))
        if config.fanout_batching or config.consensus_batching:
            self._apply_batching(config, simulation)
        if config.leases is not None:
            self._apply_leases(config, simulation)
        persistence_plane = None
        if config.persistence is not None:
            persistence_plane = self._apply_persistence(config, simulation)
        directory = None
        if (
            config.reconfig is not None and config.reconfig.requests
        ) or config.controller is not None:
            directory = self._install_reconfig(
                config, placement, simulation, persistence_plane
            )
        return SystemHandle(
            protocol=self,
            simulation=simulation,
            config=config,
            directory=directory,
            persistence=persistence_plane,
        )

    def _apply_batching(self, config: BuildConfig, simulation: Simulation) -> None:
        """Flip the batching knobs on the freshly built automata.

        Post-build injection (like the placement directory): clients carrying
        a ``batch_fanout`` attribute get the fan-out knob, consensus members
        carrying ``append_batching`` get the log-packing knob — automata
        without the attribute (servers, drivers) are untouched, so protocols
        opt in simply by reading the class attributes.
        """
        for automaton in simulation.automata():
            if config.fanout_batching and hasattr(automaton, "batch_fanout"):
                automaton.batch_fanout = True
            if config.consensus_batching and hasattr(automaton, "append_batching"):
                automaton.append_batching = True

    def _apply_leases(self, config: BuildConfig, simulation: Simulation) -> None:
        """Install the lease policy on every consensus member (post-build
        injection, like batching): automata exposing ``lease_policy`` —
        exactly the :class:`~repro.consensus.coordinator.
        ReplicatedCoordinator` members — get the normalized policy; every
        member holds the same one, so leader and promisers agree on the
        lease duration by construction."""
        from ..consensus.lease import LeasePolicy

        policy = LeasePolicy.of(config.leases)
        for automaton in simulation.automata():
            if hasattr(automaton, "lease_policy"):
                automaton.lease_policy = policy

    def _apply_persistence(self, config: BuildConfig, simulation: Simulation):
        """Attach a stable store to every consensus member (post-build
        injection, like batching): automata exposing ``stable_store`` —
        exactly the :class:`~repro.consensus.coordinator.
        ReplicatedCoordinator` members — get their per-name store from the
        plane.  Passing a plane whose stores already hold state (a rebuild
        over surviving storage) makes every member recover during attach."""
        from ..persist import PersistencePlane

        plane = PersistencePlane.of(config.persistence)
        for automaton in simulation.automata():
            if hasattr(automaton, "stable_store"):
                automaton.attach_store(
                    plane.store_for(automaton.name),
                    compact_every=plane.policy.compact_every,
                )
        return plane

    def _install_reconfig(
        self,
        config: BuildConfig,
        placement: Placement,
        simulation: Simulation,
        persistence_plane=None,
    ) -> PlacementDirectory:
        """Wire the reconfiguration layer onto a freshly built system.

        The shared :class:`PlacementDirectory` is handed (by reference) to
        every automaton exposing a ``directory`` attribute — the epoch-aware
        clients and storage replicas — and the admin driver is registered
        with the factories it needs to spawn replicas / consensus members.
        """
        directory = PlacementDirectory(
            placement, config.quorum_policy(), config.consensus_group()
        )
        if self.has_coordinator and config.consensus_factor == 1:
            # The coordinator role does not migrate through replica-group
            # changes: at consensus_factor=1 the designated first server must
            # never be retired by a *derived* change (planned changes are
            # rejected at validation already).
            directory.protected.add(config.servers()[0])
        for automaton in simulation.automata():
            if hasattr(automaton, "directory"):
                automaton.directory = directory
        consensus_member_factory = None
        if config.consensus_factor > 1:
            from ..consensus.coordinator import (
                DEFAULT_ELECTION_TIMEOUT,
                ReplicatedCoordinator,
            )

            timeout = tuple(config.election_timeout or DEFAULT_ELECTION_TIMEOUT)
            bootstrap = config.consensus_group()[0]

            def consensus_member_factory(name, union, _protocol=self):
                member = ReplicatedCoordinator(
                    name=name,
                    group=union,
                    machine=_protocol.make_consensus_machine(config),
                    seed=config.seed,
                    election_timeout=timeout,
                    bootstrap_leader=bootstrap,
                )
                # Mid-run members inherit the build's batching knobs.
                member.append_batching = config.consensus_batching
                member.batch_fanout = config.fanout_batching
                if config.leases is not None:
                    # ... and the lease policy: a spawned member promises
                    # (and may later hold) leases like a founding one.
                    from ..consensus.lease import LeasePolicy

                    member.lease_policy = LeasePolicy.of(config.leases)
                if persistence_plane is not None:
                    # ... and its durability: a spawned member persists (and
                    # recovers) exactly like a founding one.
                    member.attach_store(
                        persistence_plane.store_for(name),
                        compact_every=persistence_plane.policy.compact_every,
                    )
                return member

        driver = ReconfigDriver(
            plan=config.reconfig if config.reconfig is not None else ReconfigPlan(),
            directory=directory,
            replica_factory=lambda obj, name, group: self.make_replica(
                config, obj, name, group
            ),
            consensus_member_factory=consensus_member_factory,
        )
        simulation.add_automaton(driver)
        if config.controller is not None:
            health = None
            if config.controller.use_health:
                # Existence validated in validate_config; the view is the
                # read-only query API over the plane's health accumulator.
                from ..obs.health import HealthView

                health = HealthView(config.obs.health)
            simulation.add_automaton(
                ReconfigController(
                    policy=config.controller, directory=directory, health=health
                )
            )
        return directory

    def describe(self) -> str:
        rounds = "unbounded" if self.claimed_read_rounds is None else str(self.claimed_read_rounds)
        versions = "|W|" if self.claimed_versions is None else str(self.claimed_versions)
        return (
            f"{self.name}: {self.description} "
            f"[claims {self.claimed_properties}; rounds<={rounds}, versions<={versions}]"
        )
