"""Shared machinery of algorithms B and C (Sections 8-9).

Both bounded-latency MWMR algorithms use the same WRITE transaction protocol
(Pseudocode 5) and the same server-side state: a multi-version store ``Vals``
on every storage replica plus, on one designated *coordinator* server ``s*``,
the append-only ``List`` recording, per WRITE transaction, which objects it
updated and under which key.  The algorithms differ only in how READ
transactions consult the coordinator — sequentially (B: two rounds, one
version) or concurrently (C: one round, many versions).

Under the placement layer every object is held by a replica group; the
``write-value`` phase installs at every replica and awaits a write quorum
per object, while the coordinator remains a single logical metadata server
(the primary replica of the first object, exactly the first server of the
seed).  Replicating the ``List`` itself is future work (it needs a
reconfiguration/consensus story; see ROADMAP).

This module provides:

* :class:`CoordinatedWriter` — the Pseudocode 5 writer (``write-value`` then
  ``update-coor``);
* :class:`CoordinatedServer` — the storage-replica automaton
  (:class:`~repro.protocols.replication.ReplicatedStorageServer`) extended
  with the coordinator role (``update-coor``, ``get-tag-arr``, tag
  piggy-backing on ``read-vals``);
* :func:`coordinator_name` — the convention designating the coordinator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ServerAutomaton, Send, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import WriteTransaction, WRITE_OK
from .replication import (
    ReplicatedStorageServer,
    default_policy,
    placement_or_single_copy,
    write_value_round,
)


def coordinator_name(servers: Sequence[str]) -> str:
    """The designated coordinator ``s*``: by convention the first server."""
    if not servers:
        raise SimulationError("a coordinated system needs at least one server")
    return servers[0]


class CoordinatedWriter(WriterAutomaton):
    """Writer of algorithms B and C (Pseudocode 5).

    Phases of ``W((o_{i1}, v_{i1}), …)``:

    1. ``write-value`` — create key ``κ = (z+1, w)``, install ``(κ, v_i)`` at
       every replica of every written object, await a write quorum of acks
       per object;
    2. ``update-coor`` — tell the coordinator which objects ``κ`` updated,
       await ``(ack, t_w)``; ``t_w`` is the transaction's tag.
    """

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        coordinator: str,
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.z = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        # write-value phase (a write quorum per written object) --------------
        yield from write_value_round(
            txn.txn_id, tuple(txn.updates), key, self.placement, self.policy
        )
        # update-coor phase ---------------------------------------------------
        bits = tuple((obj, 1 if obj in dict(txn.updates) else 0) for obj in self.objects)
        yield Send(
            dst=self.coordinator,
            msg_type="update-coor",
            payload={"txn": txn.txn_id, "key": key, "bits": bits},
            phase="update-coor",
        )
        acks = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "ack-coor" and m.get("txn") == txn_id,
            count=1,
            description="update-coor ack",
        )
        tag = acks[0].get("tag")
        ctx.annotate_transaction(txn.txn_id, tag=tag, protocol="coordinated")
        return WRITE_OK


class CoordinatedServer(ReplicatedStorageServer):
    """Storage replica of algorithms B and C, optionally the coordinator.

    Every replica keeps the multi-version store ``Vals`` (inherited).  The
    coordinator additionally keeps ``List`` (entries ``(κ, bits)``, 1-based
    positions in the pseudocode; the initial entry stands for the initial
    versions) and answers ``get-tag-arr`` requests with, per requested
    object, the key of the newest list entry that updated it, together with
    the read tag ``t_r = max`` of those positions.
    """

    missing_key_hint = "the coordinator only hands out keys whose write-value phase completed"

    def __init__(
        self,
        name: str,
        object_id: str,
        objects: Sequence[str],
        is_coordinator: bool,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name, object_id, initial_value, group=group)
        self.objects = tuple(objects)
        self.is_coordinator = is_coordinator
        self.entries: List[Tuple[Key, Dict[str, int]]] = [
            (Key.initial(), {obj: 1 for obj in self.objects})
        ]

    def forget(self) -> None:
        """Amnesia: lose the store *and* (on the coordinator) the ``List``."""
        super().forget()
        self.entries = [(Key.initial(), {obj: 1 for obj in self.objects})]

    # ------------------------------------------------------------------
    # Coordinator-side helpers
    # ------------------------------------------------------------------
    def latest_index_for(self, object_id: str) -> int:
        for position in range(len(self.entries) - 1, -1, -1):
            if self.entries[position][1].get(object_id, 0) == 1:
                return position + 1
        raise SimulationError(f"coordinator list has no entry for object {object_id!r}")

    def tag_array_for(self, read_set: Sequence[str]) -> Tuple[int, Dict[str, Key]]:
        """``(t_r, {object: κ})`` for the requested read set."""
        keys: Dict[str, Key] = {}
        tag = 1
        for object_id in read_set:
            index = self.latest_index_for(object_id)
            tag = max(tag, index)
            keys[object_id] = self.entries[index - 1][0]
        return tag, keys

    # ------------------------------------------------------------------
    def on_unhandled(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "update-coor":
            self._on_update_coor(message, ctx)
        elif message.msg_type == "get-tag-arr":
            self._on_get_tag_arr(message, ctx)

    def _on_update_coor(self, message: Message, ctx: Context) -> None:
        if not self.is_coordinator:
            raise SimulationError(f"server {self.name} is not the coordinator but received update-coor")
        key: Key = message.get("key")
        bits = dict(message.get("bits", ()))
        self.entries.append((key, {obj: int(bits.get(obj, 0)) for obj in self.objects}))
        tag = len(self.entries)
        ctx.send(message.src, "ack-coor", {"txn": message.get("txn"), "tag": tag}, phase="update-coor")

    def _on_get_tag_arr(self, message: Message, ctx: Context) -> None:
        if not self.is_coordinator:
            raise SimulationError(f"server {self.name} is not the coordinator but received get-tag-arr")
        read_set = tuple(message.get("read_set", ()))
        tag, keys = self.tag_array_for(read_set)
        ctx.send(
            message.src,
            "tag-arr-reply",
            {
                "txn": message.get("txn"),
                "tag": tag,
                "keys": tuple(keys.items()),
                "num_versions": 1,
            },
            phase="get-tag-array",
        )

    def extend_read_vals_payload(self, message: Message, payload: Dict[str, Any]) -> None:
        """Piggy-back the tag array when the reader combined its requests.

        When ``want_tags`` is set (the coordinator also holds a requested
        object) the tag array rides on the same reply so the READ stays a
        single round trip per server.
        """
        if message.get("want_tags"):
            if not self.is_coordinator:
                raise SimulationError(f"server {self.name} asked for tags but is not the coordinator")
            read_set = tuple(message.get("read_set", ()))
            tag, keys = self.tag_array_for(read_set)
            payload["tag"] = tag
            payload["keys"] = tuple(keys.items())
