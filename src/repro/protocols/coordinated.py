"""Shared machinery of algorithms B and C (Sections 8-9).

Both bounded-latency MWMR algorithms use the same WRITE transaction protocol
(Pseudocode 5) and the same server-side state: a multi-version store ``Vals``
on every storage replica plus, on one designated *coordinator* server ``s*``,
the append-only ``List`` recording, per WRITE transaction, which objects it
updated and under which key.  The algorithms differ only in how READ
transactions consult the coordinator — sequentially (B: two rounds, one
version) or concurrently (C: one round, many versions).

Under the placement layer every object is held by a replica group; the
``write-value`` phase installs at every replica and awaits a write quorum
per object.  The ``List`` itself is a metadata service with two deployments:

* ``consensus_factor=1`` (the seed's setting) — one logical metadata server,
  the primary replica of the first object, exactly the first server of the
  seed; the :class:`CoordinatedServer` there holds the ``List``;
* ``consensus_factor>=2`` — the ``List`` becomes a replicated state machine
  over a dedicated consensus group (:mod:`repro.consensus`): clients
  broadcast their coordinator requests to every member and the elected
  leader replies once the request committed.  Both deployments apply the
  *same* :class:`~repro.consensus.machines.CoordinatorList`, so their
  metadata transitions are identical by construction.

This module provides:

* :class:`CoordinatedWriter` — the Pseudocode 5 writer (``write-value`` then
  ``update-coor``);
* :class:`CoordinatedServer` — the storage-replica automaton
  (:class:`~repro.protocols.replication.ReplicatedStorageServer`) extended
  with the coordinator role (``update-coor``, ``get-tag-arr``, tag
  piggy-backing on ``read-vals``);
* :func:`coordinator_name` / :func:`coordinator_targets` — the conventions
  designating the coordinator (single server or consensus group);
* :func:`consensus_members_for` — the consensus-group automata of a build.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..consensus.coordinator import DEFAULT_ELECTION_TIMEOUT, consensus_members
from ..consensus.machines import CoordinatorList
from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ServerAutomaton, Send, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import WriteTransaction, WRITE_OK
from .replication import (
    ReplicatedStorageServer,
    default_policy,
    emit_sends,
    placement_or_single_copy,
    write_value_round,
)


def coordinator_name(servers: Sequence[str]) -> str:
    """The designated coordinator ``s*``: by convention the first server."""
    if not servers:
        raise SimulationError("a coordinated system needs at least one server")
    return servers[0]


def live_coordinator_targets(directory, fallback: Tuple[str, ...]) -> Tuple[str, ...]:
    """The coordinator group a client must broadcast to *right now*.

    Under reconfiguration the shared directory's view wins (the union of
    ``C_old,new`` while a consensus change is joint); without a directory —
    or when it tracks no consensus group — the build-time targets stand.
    One definition, used by every coordinator-addressing client.
    """
    if directory is not None:
        targets = directory.coordinator_targets()
        if targets:
            return targets
    return fallback


def coordinator_targets(config) -> Tuple[str, ...]:
    """The processes clients address coordinator requests to.

    The consensus group when the metadata service is replicated
    (``consensus_factor >= 2``), else the designated first storage server —
    a one-element group, so client code is a single loop either way and
    ``consensus_factor=1`` sends are byte-identical to the seed.
    """
    group = config.consensus_group()
    if group:
        return group
    return (coordinator_name(config.servers()),)


def consensus_members_for(config, machine_factory) -> List[Any]:
    """The consensus-group automata of a build (empty at consensus_factor=1)."""
    group = config.consensus_group()
    if not group:
        return []
    timeout = config.election_timeout or DEFAULT_ELECTION_TIMEOUT
    return consensus_members(
        group, machine_factory, seed=config.seed, election_timeout=timeout
    )


class CoordinatedWriter(WriterAutomaton):
    """Writer of algorithms B and C (Pseudocode 5).

    Phases of ``W((o_{i1}, v_{i1}), …)``:

    1. ``write-value`` — create key ``κ = (z+1, w)``, install ``(κ, v_i)`` at
       every replica of every written object, await a write quorum of acks
       per object;
    2. ``update-coor`` — tell the coordinator which objects ``κ`` updated,
       await ``(ack, t_w)``; ``t_w`` is the transaction's tag.
    """

    #: shared placement directory when built with a reconfiguration plan
    #: (injected by the build; None keeps the rounds byte-identical)
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        coordinator: str,
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
        coordinator_group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator
        self.coordinator_group: Tuple[str, ...] = (
            tuple(coordinator_group) if coordinator_group else (coordinator,)
        )
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.z = 0

    def _coordinator_targets(self) -> Tuple[str, ...]:
        return live_coordinator_targets(self.directory, self.coordinator_group)

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        # write-value phase (a write quorum per written object) --------------
        yield from write_value_round(
            txn.txn_id, tuple(txn.updates), key, self.placement, self.policy,
            directory=self.directory, ctx=ctx, batch=self.batch_fanout,
        )
        # update-coor phase (broadcast to the coordinator group; only the
        # consensus leader answers, once the entry committed) -----------------
        bits = tuple((obj, 1 if obj in dict(txn.updates) else 0) for obj in self.objects)
        yield from emit_sends(
            [
                Send(
                    dst=target,
                    msg_type="update-coor",
                    payload={"txn": txn.txn_id, "key": key, "bits": bits},
                    phase="update-coor",
                )
                for target in self._coordinator_targets()
            ],
            self.batch_fanout,
        )
        acks = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "ack-coor" and m.get("txn") == txn_id,
            count=1,
            description="update-coor ack",
        )
        tag = acks[0].get("tag")
        ctx.annotate_transaction(txn.txn_id, tag=tag, protocol="coordinated")
        return WRITE_OK


class CoordinatedServer(ReplicatedStorageServer):
    """Storage replica of algorithms B and C, optionally the coordinator.

    Every replica keeps the multi-version store ``Vals`` (inherited).  The
    coordinator additionally keeps ``List`` (entries ``(κ, bits)``, 1-based
    positions in the pseudocode; the initial entry stands for the initial
    versions) and answers ``get-tag-arr`` requests with, per requested
    object, the key of the newest list entry that updated it, together with
    the read tag ``t_r = max`` of those positions.
    """

    missing_key_hint = "the coordinator only hands out keys whose write-value phase completed"

    def __init__(
        self,
        name: str,
        object_id: str,
        objects: Sequence[str],
        is_coordinator: bool,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name, object_id, initial_value, group=group)
        self.objects = tuple(objects)
        self.is_coordinator = is_coordinator
        # The same List implementation the replicated coordinator applies —
        # one definition of the metadata transitions for both deployments.
        self.coordinator_list = CoordinatorList(self.objects)

    @property
    def entries(self) -> List[Tuple[Key, Dict[str, int]]]:
        """The raw ``List`` entries (kept for introspection and tests)."""
        return self.coordinator_list.entries

    def forget(self) -> None:
        """Amnesia: lose the store *and* (on the coordinator) the ``List``."""
        super().forget()
        self.coordinator_list.reset()

    # ------------------------------------------------------------------
    # Coordinator-side helpers
    # ------------------------------------------------------------------
    def latest_index_for(self, object_id: str) -> int:
        return self.coordinator_list.latest_index_for(object_id)

    def tag_array_for(self, read_set: Sequence[str]) -> Tuple[int, Dict[str, Key]]:
        """``(t_r, {object: κ})`` for the requested read set."""
        return self.coordinator_list.tag_array_for(read_set)

    # ------------------------------------------------------------------
    def on_unhandled(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "update-coor":
            self._on_update_coor(message, ctx)
        elif message.msg_type == "get-tag-arr":
            self._on_get_tag_arr(message, ctx)

    def _on_update_coor(self, message: Message, ctx: Context) -> None:
        if not self.is_coordinator:
            raise SimulationError(f"server {self.name} is not the coordinator but received update-coor")
        tag = self.coordinator_list.append(message.get("key"), dict(message.get("bits", ())))
        ctx.send(message.src, "ack-coor", {"txn": message.get("txn"), "tag": tag}, phase="update-coor")

    def _on_get_tag_arr(self, message: Message, ctx: Context) -> None:
        if not self.is_coordinator:
            raise SimulationError(f"server {self.name} is not the coordinator but received get-tag-arr")
        read_set = tuple(message.get("read_set", ()))
        tag, keys = self.tag_array_for(read_set)
        ctx.send(
            message.src,
            "tag-arr-reply",
            {
                "txn": message.get("txn"),
                "tag": tag,
                "keys": tuple(keys.items()),
                "num_versions": 1,
            },
            phase="get-tag-array",
        )

    def extend_read_vals_payload(self, message: Message, payload: Dict[str, Any]) -> None:
        """Piggy-back the tag array when the reader combined its requests.

        When ``want_tags`` is set (the coordinator also holds a requested
        object) the tag array rides on the same reply so the READ stays a
        single round trip per server.
        """
        if message.get("want_tags"):
            if not self.is_coordinator:
                raise SimulationError(f"server {self.name} asked for tags but is not the coordinator")
            read_set = tuple(message.get("read_set", ()))
            tag, keys = self.tag_array_for(read_set)
            payload["tag"] = tag
            payload["keys"] = tuple(keys.items())
