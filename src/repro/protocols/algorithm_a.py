"""Algorithm A (Section 5.2, Pseudocode 4): SNOW in the MWSR setting with C2C.

Algorithm A shows that **all four SNOW properties are achievable** in the
multi-writer single-reader setting, provided clients may send messages to
each other: after installing its values at the servers, a writer informs the
*reader* directly (the ``info-reader`` phase) which objects it updated and
under which key.  The reader therefore always knows, locally, the latest
completed key for every object, and its READ transactions are a single
non-blocking one-version round: ask each server for exactly the key recorded
in the reader's ``List``.

Roles
-----

* **Writer** ``w`` — two phases per WRITE transaction:
  ``write-value`` (install ``(κ, v_i)`` at every replica of every written
  object, await a write quorum of acks per object) then ``info-reader``
  (tell the reader which objects were written under ``κ``; the reader's
  acknowledgement carries the transaction's tag).
* **Reader** ``r`` — keeps ``List``, an append-only log of
  ``(κ, (b_1 … b_k))`` tuples; READ transactions pick, per requested object,
  the key of the latest list entry that wrote the object and fetch exactly
  that version from the object's replica group, in one parallel round
  (first hit within the read quorum wins; quorum intersection guarantees
  one).
* **Server** ``s_i`` — one replica of one object: the shared multi-version
  store ``Vals`` (:class:`~repro.protocols.replication.ReplicatedStorageServer`)
  answering ``read-val κ`` immediately with the value stored under ``κ``.

With ``replication_factor=1`` (the paper's setting) every quorum is of size
one and the wire protocol is byte-identical to the single-copy pseudocode.

Tags (for the Lemma 20 checker): a WRITE's tag is ``|List|`` after its entry
is appended; a READ's tag is the (1-based) index of the newest list entry it
used.  This matches the order used in the proof of Theorem 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.actions import Message
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .replication import (
    ReplicatedStorageServer,
    default_policy,
    key_read_round,
    placement_or_single_copy,
    write_value_round,
)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class AlgorithmAReader(ReaderAutomaton):
    """The single reader of algorithm A.

    State: ``List`` — ordered entries ``(key, bits)`` where ``bits`` maps each
    object to 1 if the corresponding WRITE updated it.  The initial entry is
    ``(κ₀, all-ones)`` standing for the initial versions.
    """

    #: shared placement directory when built with a reconfiguration plan
    #: (injected by the build; None keeps the rounds byte-identical)
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.entries: List[Tuple[Key, Dict[str, int]]] = [
            (Key.initial(), {obj: 1 for obj in self.objects})
        ]

    # -- info-reader handling (may arrive at any time) --------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type != "info-reader":
            return
        key: Key = message.get("key")
        bits = dict(message.get("bits", ()))
        self.entries.append((key, {obj: int(bits.get(obj, 0)) for obj in self.objects}))
        tag = len(self.entries)  # |List| with 1-based counting, matching the pseudocode
        ctx.send(
            message.src,
            "ack-info",
            {"txn": message.get("txn"), "tag": tag},
            phase="info-reader",
        )

    # -- READ transactions -------------------------------------------------
    def latest_index_for(self, object_id: str) -> int:
        """1-based index of the newest list entry that wrote ``object_id``."""
        for position in range(len(self.entries) - 1, -1, -1):
            if self.entries[position][1].get(object_id, 0) == 1:
                return position + 1
        raise SimulationError(f"reader list has no entry for object {object_id!r}")

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        chosen: Dict[str, Key] = {}
        tag = 1
        for object_id in txn.objects:
            index = self.latest_index_for(object_id)
            tag = max(tag, index)
            chosen[object_id] = self.entries[index - 1][0]
        # read-value phase: one parallel round over the replica groups,
        # one version per reply, first hit per object within the quorum.
        values, replies = yield from key_read_round(
            txn.txn_id, chosen, self.placement, self.policy,
            directory=self.directory, ctx=ctx, batch=self.batch_fanout,
        )
        annotations: Dict[str, Any] = {"tag": tag, "protocol": "algorithm-a"}
        if not self.placement.is_trivial():
            annotations["quorum_replies"] = len(replies)
        ctx.annotate_transaction(txn.txn_id, **annotations)
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class AlgorithmAWriter(WriterAutomaton):
    """A writer of algorithm A: write-value phase then info-reader phase."""

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        reader: str,
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.reader = reader
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.z = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        # write-value phase (a write quorum per written object) --------------
        yield from write_value_round(
            txn.txn_id, tuple(txn.updates), key, self.placement, self.policy,
            directory=self.directory, ctx=ctx, batch=self.batch_fanout,
        )
        # info-reader phase (client-to-client!) ------------------------------
        bits = tuple((obj, 1 if obj in dict(txn.updates) else 0) for obj in self.objects)
        yield Send(
            dst=self.reader,
            msg_type="info-reader",
            payload={"txn": txn.txn_id, "key": key, "bits": bits},
            phase="info-reader",
        )
        acks = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "ack-info" and m.get("txn") == txn_id,
            count=1,
            description="info-reader ack",
            counts_as_round=False,
        )
        tag = acks[0].get("tag")
        ctx.annotate_transaction(txn.txn_id, tag=tag, protocol="algorithm-a")
        return WRITE_OK


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class AlgorithmAServer(ReplicatedStorageServer):
    """A server of algorithm A: a multi-version store answering by exact key."""

    missing_key_hint = "algorithm A's reader should never request an uninstalled version"


# ----------------------------------------------------------------------
# Protocol package
# ----------------------------------------------------------------------
class AlgorithmA(Protocol):
    """SNOW READ transactions for MWSR with client-to-client communication."""

    name = "algorithm-a"
    description = "Paper's algorithm A: SNOW in the multi-writer single-reader setting using C2C"
    requires_c2c = True
    supports_reconfig = True
    supports_multiple_readers = False
    supports_multiple_writers = True
    claimed_properties = "SNOW (Theorem 3)"
    claimed_read_rounds = 1
    claimed_versions = 1

    def make_replica(self, config, object_id, name, group):
        return AlgorithmAServer(name, object_id, config.initial_value, group=group)

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        policy = config.quorum_policy()
        reader_name = config.readers()[0]
        automata: List[Any] = [AlgorithmAReader(reader_name, objects, placement, policy)]
        for writer in config.writers():
            automata.append(AlgorithmAWriter(writer, objects, reader_name, placement, policy))
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    AlgorithmAServer(replica, object_id, config.initial_value, group=group)
                )
        return automata
