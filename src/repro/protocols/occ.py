"""Multi-round optimistic baseline: validating-retry one-version reads.

This is the executable witness of the ``(1 version, ∞ rounds)`` cell of
Figure 1(b): READ transactions that are strictly serializable, non-blocking
and one-version, at the price of an *unbounded* number of rounds under write
contention — the family of pre-existing designs the paper contrasts its
bounded algorithms B and C against.

Design
------

* WRITE transactions first obtain a globally unique, monotonically increasing
  **timestamp** from a timestamp server (we reuse the first server, ``s*``,
  for this role), then install ``(timestamp, value, write-set)`` at every
  written server; servers keep the value with the highest timestamp per
  object ("last writer wins" in timestamp order, which is consistent across
  servers because timestamps are issued centrally *before* any install).

* READ transactions repeatedly *collect* ``(value, timestamp, write-set,
  apply-counter)`` from every requested server and accept as soon as

  1. two consecutive collects observed the same apply-counter at every
     server (so the collected vector of latest versions coexisted at an
     instant inside the read's execution interval), and
  2. the snapshot is **write-set closed**: whenever the version returned for
     object *i* belongs to a WRITE transaction that also wrote object *j*
     (also being read), the version returned for *j* is at least as new —
     i.e. the read never observes a multi-object WRITE "half applied".

  Otherwise it retries; every concurrent conflicting WRITE can force another
  round, so the number of rounds is unbounded in theory and grows with
  contention in practice (measured by the contention benchmark).

Why this is strictly serializable (sketch): timestamps order all WRITE
transactions consistently with real time (a WRITE that completes before
another starts has a strictly smaller timestamp, because the timestamp is
obtained before any install and installs complete before the response);
condition (1) pins an instant ``t*`` inside the READ at which exactly the
returned values were the per-server newest; condition (2) rules out the only
way that instant can disagree with the timestamp order, namely a multi-object
WRITE applied at one read object but not yet at another.  Serializing every
WRITE at its timestamp and the READ just after the largest timestamp it
observed then reproduces the observed values.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..consensus.machines import TimestampStateMachine
from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, server_for_object
from ..txn.placement import Placement
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .coordinated import consensus_members_for, coordinator_targets, live_coordinator_targets
from .replication import (
    DirectoryAwareServer,
    emit_sends,
    epoch_quorum_round,
    placement_or_single_copy,
)


class OccServer(DirectoryAwareServer, ServerAutomaton):
    """Timestamp-ordered latest-value store with an apply counter.

    The first server additionally acts as the timestamp oracle for writers.
    """

    def __init__(
        self,
        name: str,
        object_id: str,
        is_timestamp_server: bool,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.is_timestamp_server = is_timestamp_server
        self.initial_value = initial_value
        self.group: Tuple[str, ...] = tuple(group) if group is not None else (name,)
        self.timestamp_counter = 0
        self.apply_counter = 0
        self.latest_value: Any = initial_value
        self.latest_timestamp = 0
        self.latest_write_set: Tuple[str, ...] = ()

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose counters and the latest version."""
        self.timestamp_counter = 0
        self.apply_counter = 0
        self.latest_value = self.initial_value
        self.latest_timestamp = 0
        self.latest_write_set = ()

    # -- reconfiguration state transfer -----------------------------------
    def sync_versions(self) -> Tuple[Any, ...]:
        """OCC state is a latest-version register, not a multi-version store:
        stream the (timestamp, value, write-set) triple."""
        return ((self.latest_timestamp, self.latest_value, tuple(self.latest_write_set)),)

    def install_sync(self, versions: Sequence[Any]) -> int:
        installed = 0
        for timestamp, value, write_set in versions:
            if int(timestamp) > self.latest_timestamp:
                self.latest_timestamp = int(timestamp)
                self.latest_value = value
                self.latest_write_set = tuple(write_set)
                installed += 1
        return installed

    def on_message(self, message: Message, ctx: Context) -> None:
        if self.handle_directory_message(message, ctx):
            return
        if message.msg_type == "get-ts":
            if not self.is_timestamp_server:
                raise SimulationError(f"server {self.name} is not the timestamp server")
            self.timestamp_counter += 1
            ctx.send(
                message.src,
                "ts-reply",
                {"txn": message.get("txn"), "timestamp": self.timestamp_counter},
                phase="get-timestamp",
            )
        elif message.msg_type == "install":
            timestamp = int(message.get("timestamp", 0))
            self.apply_counter += 1
            if timestamp > self.latest_timestamp:
                self.latest_timestamp = timestamp
                self.latest_value = message.get("value")
                self.latest_write_set = tuple(message.get("write_set", ()))
            payload: Dict[str, Any] = {"txn": message.get("txn")}
            if self.directory is not None:
                # Per-object ack counting is what the epoch-aware partial
                # install quorums need; plain runs stay field-identical.
                payload["object"] = self.object_id
                self._echo_attempt(message, payload)
            ctx.send(message.src, "install-ack", payload, phase="install")
        elif message.msg_type == "collect":
            ctx.send(
                message.src,
                "collect-reply",
                {
                    "txn": message.get("txn"),
                    "object": self.object_id,
                    "value": self.latest_value,
                    "timestamp": self.latest_timestamp,
                    "write_set": self.latest_write_set,
                    "counter": self.apply_counter,
                    "attempt": message.get("attempt"),
                    "num_versions": 1,
                },
                phase="collect",
            )


class OccWriter(WriterAutomaton):
    """Timestamp first, install second (at every replica — write-all).

    Timestamp-ordered last-writer-wins only converges when every replica
    sees every install, so partial write quorums are not an option here —
    except under a reconfiguration directory, where installs become an
    epoch-aware round (a write quorum per active configuration, with
    ``epoch-mismatch`` retries): quorum intersection with the collect
    quorums then carries the latest install to every read.
    """

    #: shared placement directory when built with a reconfiguration plan
    #: (injected by the build; None keeps the rounds byte-identical)
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        timestamp_server: str,
        placement: Optional[Placement] = None,
        timestamp_group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.timestamp_server = timestamp_server
        self.timestamp_group: Tuple[str, ...] = (
            tuple(timestamp_group) if timestamp_group else (timestamp_server,)
        )
        self.placement = placement_or_single_copy(self.objects, placement)

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        yield from emit_sends(
            [
                Send(
                    dst=target,
                    msg_type="get-ts",
                    payload={"txn": txn.txn_id},
                    phase="get-timestamp",
                )
                for target in live_coordinator_targets(self.directory, self.timestamp_group)
            ],
            self.batch_fanout,
        )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "ts-reply" and m.get("txn") == txn_id,
            count=1,
            description="timestamp",
        )
        timestamp = int(replies[0].get("timestamp"))
        write_set = tuple(obj for obj, _ in txn.updates)
        if self.directory is not None:
            yield from self._epoch_install_round(txn, timestamp, write_set, ctx)
            ctx.annotate_transaction(txn.txn_id, protocol="occ", timestamp=timestamp)
            return WRITE_OK
        sends = [
            Send(
                dst=replica,
                msg_type="install",
                payload={
                    "txn": txn.txn_id,
                    "object": object_id,
                    "value": value,
                    "timestamp": timestamp,
                    "write_set": write_set,
                },
                phase="install",
            )
            for object_id, value in txn.updates
            for replica in self.placement.group(object_id)
        ]
        installs = len(sends)
        yield from emit_sends(sends, self.batch_fanout)
        yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "install-ack" and m.get("txn") == txn_id,
            count=installs,
            description="install acks",
        )
        ctx.annotate_transaction(txn.txn_id, protocol="occ", timestamp=timestamp)
        return WRITE_OK

    def _epoch_install_round(self, txn: WriteTransaction, timestamp: int, write_set, ctx: Context):
        """Epoch-aware install: a write quorum per object per active config.

        Retried installs are idempotent at the replicas (a duplicate install
        only bumps the apply counter, which at worst costs the reader one
        extra collect round).
        """
        directory = self.directory
        updates = tuple(txn.updates)

        def send_factory(epoch: int, attempt: int):
            return [
                Send(
                    dst=replica,
                    msg_type="install",
                    payload={
                        "txn": txn.txn_id,
                        "object": object_id,
                        "value": value,
                        "timestamp": timestamp,
                        "write_set": write_set,
                        "epoch": epoch,
                        "attempt": attempt,
                    },
                    phase="install",
                )
                for object_id, value in updates
                for replica in directory.targets(object_id)
            ]

        yield from epoch_quorum_round(
            txn.txn_id,
            directory,
            ctx,
            send_factory,
            reply_types=("install-ack",),
            needs_factory=lambda: {obj: directory.write_needed(obj) for obj, _ in updates},
            description="install acks",
            batch=self.batch_fanout,
        )


class OccReader(ReaderAutomaton):
    """Collect-validate-retry reader (non-blocking, one-version, unbounded rounds).

    Under replication each collect gathers from **every** replica of every
    requested object (read-all — the counterpart of the writer's write-all);
    the per-replica apply counters must be stable between two consecutive
    collects at every replica, and the value chosen per object is the one
    with the highest timestamp among its replicas (they agree whenever the
    counters are stable and no install is in flight to part of the group).

    Under a reconfiguration directory each collect is instead an epoch-aware
    quorum round (a read quorum per object per active configuration, with
    ``epoch-mismatch`` retries); the double-collect validation then runs
    over the replicas common to both collects, which must still cover a read
    quorum — intersection with the install quorums keeps the chosen versions
    current.
    """

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        max_attempts: int = 128,
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.max_attempts = max_attempts

    def _collect(self, txn: ReadTransaction, attempt: int):
        sends = [
            Send(
                dst=replica,
                msg_type="collect",
                payload={"txn": txn.txn_id, "object": object_id, "attempt": attempt},
                phase="collect",
            )
            for object_id in txn.objects
            for replica in self.placement.group(object_id)
        ]
        targets = len(sends)
        yield from emit_sends(sends, self.batch_fanout)
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id, a=attempt: m.msg_type == "collect-reply"
            and m.get("txn") == txn_id
            and m.get("attempt") == a,
            count=targets,
            description=f"collect #{attempt}",
        )
        # Keyed by replica server: the double-collect validation is a
        # per-replica counter comparison (at replication factor 1 the key is
        # in bijection with the object, exactly the seed's snapshot).
        snapshot: Dict[str, Dict[str, Any]] = {}
        for reply in replies:
            snapshot[reply.src] = {
                "object": reply.get("object"),
                "value": reply.get("value"),
                "timestamp": int(reply.get("timestamp", 0)),
                "write_set": tuple(reply.get("write_set", ())),
                "counter": int(reply.get("counter", 0)),
            }
        return snapshot

    def _collect_epoch(self, txn: ReadTransaction, ctx: Context, start_attempt: int):
        """One epoch-aware collect over the directory's current targets.

        Returns ``(snapshot, attempt)``; the attempt counter is global across
        the transaction's collects so stale replies of an earlier collect can
        never satisfy a later collect's await.
        """
        directory = self.directory

        def send_factory(epoch: int, attempt: int):
            return [
                Send(
                    dst=replica,
                    msg_type="collect",
                    payload={
                        "txn": txn.txn_id,
                        "object": object_id,
                        "attempt": attempt,
                        "epoch": epoch,
                    },
                    phase="collect",
                )
                for object_id in txn.objects
                for replica in directory.targets(object_id)
            ]

        replies, attempt = yield from epoch_quorum_round(
            txn.txn_id,
            directory,
            ctx,
            send_factory,
            reply_types=("collect-reply",),
            needs_factory=lambda: {
                obj: directory.read_needed(obj) for obj in txn.objects
            },
            description=f"collect (from #{start_attempt + 1})",
            start_attempt=start_attempt,
            batch=self.batch_fanout,
        )
        snapshot: Dict[str, Dict[str, Any]] = {}
        for reply in replies:
            if reply.msg_type != "collect-reply":
                continue
            snapshot[reply.src] = {
                "object": reply.get("object"),
                "value": reply.get("value"),
                "timestamp": int(reply.get("timestamp", 0)),
                "write_set": tuple(reply.get("write_set", ())),
                "counter": int(reply.get("counter", 0)),
            }
        return snapshot, attempt

    def _common_covers_quorum(self, common, read_set: Sequence[str]) -> bool:
        """Whether the replicas answering *both* collects still cover a read
        quorum per object per active configuration — the stability check's
        footing when membership moved between the collects."""
        for object_id in read_set:
            for group, need in self.directory.read_needed(object_id):
                if sum(1 for replica in group if replica in common) < need:
                    return False
        return True

    def _chosen_per_object(
        self,
        snapshot: Dict[str, Dict[str, Any]],
        read_set: Sequence[str],
    ) -> Dict[str, Dict[str, Any]]:
        """Per object, the replica view with the highest timestamp.

        Group order breaks ties, which keeps the choice deterministic.
        """
        chosen: Dict[str, Dict[str, Any]] = {}
        for object_id in read_set:
            if self.directory is not None:
                candidates = self.directory.targets(object_id)
            else:
                candidates = self.placement.group(object_id)
            best: Optional[Dict[str, Any]] = None
            for replica in candidates:
                info = snapshot.get(replica)
                if info is None:
                    continue
                if best is None or info["timestamp"] > best["timestamp"]:
                    best = info
            if best is None:
                raise SimulationError(
                    f"occ reader {self.name} collected no reply for {object_id!r}"
                )
            chosen[object_id] = best
        return chosen

    @staticmethod
    def _write_set_closed(chosen: Dict[str, Dict[str, Any]], read_set: Sequence[str]) -> bool:
        """No multi-object WRITE is observed half-applied within the read set."""
        for object_i in read_set:
            info_i = chosen[object_i]
            for object_j in info_i["write_set"]:
                if object_j == object_i or object_j not in chosen:
                    continue
                if chosen[object_j]["timestamp"] < info_i["timestamp"]:
                    return False
        return True

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        if self.directory is not None:
            result = yield from self._run_epoch(txn, ctx)
            return result
        previous = yield from self._collect(txn, attempt=1)
        attempts = 1
        while attempts < self.max_attempts:
            attempts += 1
            current = yield from self._collect(txn, attempt=attempts)
            counters_match = all(
                previous[replica]["counter"] == current[replica]["counter"]
                for replica in current
            )
            chosen = self._chosen_per_object(current, txn.objects)
            if counters_match and self._write_set_closed(chosen, txn.objects):
                ctx.annotate_transaction(
                    txn.txn_id,
                    protocol="occ",
                    collects=attempts,
                    snapshot_timestamp=max(chosen[obj]["timestamp"] for obj in txn.objects),
                )
                return ReadResult.from_mapping({obj: chosen[obj]["value"] for obj in txn.objects})
            previous = current
        raise SimulationError(
            f"occ reader {self.name} exhausted {self.max_attempts} collects for {txn.txn_id}: "
            "write contention never quiesced"
        )

    def _run_epoch(self, txn: ReadTransaction, ctx: Context):
        """The epoch-aware collect-validate-retry loop (directory installed)."""
        previous, attempt = yield from self._collect_epoch(txn, ctx, 0)
        collects = 1
        while collects < self.max_attempts:
            collects += 1
            current, attempt = yield from self._collect_epoch(txn, ctx, attempt)
            common = set(previous) & set(current)
            counters_match = all(
                previous[replica]["counter"] == current[replica]["counter"]
                for replica in common
            )
            chosen = self._chosen_per_object(current, txn.objects)
            if (
                counters_match
                and self._common_covers_quorum(common, txn.objects)
                and self._write_set_closed(chosen, txn.objects)
            ):
                ctx.annotate_transaction(
                    txn.txn_id,
                    protocol="occ",
                    collects=collects,
                    snapshot_timestamp=max(chosen[obj]["timestamp"] for obj in txn.objects),
                )
                return ReadResult.from_mapping(
                    {obj: chosen[obj]["value"] for obj in txn.objects}
                )
            previous = current
        raise SimulationError(
            f"occ reader {self.name} exhausted {self.max_attempts} collects for {txn.txn_id}: "
            "write contention never quiesced"
        )


class OccProtocol(Protocol):
    """Strictly serializable, non-blocking, one-version reads with unbounded rounds."""

    name = "occ-double-collect"
    description = "Validating-retry snapshot reads: SNW + one-version but unbounded rounds under contention"
    requires_c2c = False
    has_coordinator = True  # the timestamp oracle is its metadata service
    supports_reconfig = True
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "S, N, W, one-version; rounds unbounded (Figure 1b, ∞ column)"
    claimed_read_rounds = None
    claimed_versions = 1

    def __init__(self, max_attempts: int = 128) -> None:
        self.max_attempts = max_attempts

    def make_consensus_machine(self, config: BuildConfig) -> TimestampStateMachine:
        return TimestampStateMachine()

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        # Dynamic replicas never carry the oracle role: the timestamp server
        # is the designated first server (or the consensus group) and never
        # migrates through a replica-group change.
        return OccServer(
            name,
            object_id,
            is_timestamp_server=False,
            initial_value=config.initial_value,
            group=group,
        )

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        timestamp_group = coordinator_targets(config)
        timestamp_server = timestamp_group[0]
        replicated_oracle = len(timestamp_group) > 1
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(
                OccReader(reader, objects, max_attempts=self.max_attempts, placement=placement)
            )
        for writer in config.writers():
            automata.append(
                OccWriter(writer, objects, timestamp_server, placement, timestamp_group)
            )
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    OccServer(
                        replica,
                        object_id,
                        is_timestamp_server=(not replicated_oracle and replica == timestamp_server),
                        initial_value=config.initial_value,
                        group=group,
                    )
                )
        automata.extend(
            consensus_members_for(config, lambda: self.make_consensus_machine(config))
        )
        return automata
