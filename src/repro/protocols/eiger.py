"""An Eiger-style read-only transaction protocol (Section 6, Figure 5).

The SNOW paper [15] claimed Eiger [14] was the one existing system whose
READ transactions were both bounded-latency (non-blocking, at most three
rounds) and strictly serializable.  Section 6 of *SNOW Revisited* corrects
this: Eiger orders operations with **Lamport clocks**, and logical clocks
cannot observe the real-time order of causally unrelated operations, so its
read-only transactions are *not* strictly serializable.

This module implements the relevant part of Eiger's design — enough to show
both its bounded latency and its anomaly:

* every process keeps a Lamport clock, updated on every message;
* servers store multi-version values with logical validity intervals
  ``[write_ts, overwritten_ts)``;
* a READ transaction's first round asks every server for its latest version
  together with the version's validity interval (``evt`` = the logical time
  it became valid, ``lvt`` = the server's current logical time, up to which
  it is known to still be valid);
* the reader computes the *effective time* ``ET = max(evt)``; if every
  returned interval contains ``ET`` the values are accepted immediately
  (one round); otherwise a second round asks the out-of-date servers for the
  version valid at ``ET``.

Reads therefore finish in at most two non-blocking one-version rounds — but,
as :mod:`repro.proofs.eiger_example` demonstrates by reconstructing the
execution of Figure 5, the accepted result can mix a new version from one
server with a stale version from another even though an intervening WRITE
completed strictly earlier in real time, violating strict serializability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import server_for_object
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol


@dataclass
class EigerVersion:
    """A logically-timestamped version with a validity interval."""

    value: Any
    write_ts: int
    valid_until: Optional[int] = None  # None = still the latest version

    def valid_at(self, logical_time: int) -> bool:
        if logical_time < self.write_ts:
            return False
        return self.valid_until is None or logical_time < self.valid_until


class EigerServer(ServerAutomaton):
    """A server with a Lamport clock and interval-versioned storage."""

    def __init__(self, name: str, object_id: str, initial_value: Any = 0) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.clock = 0
        self.versions: List[EigerVersion] = [EigerVersion(value=initial_value, write_ts=0)]

    # ------------------------------------------------------------------
    def _tick(self, incoming_ts: int) -> int:
        self.clock = max(self.clock, int(incoming_ts)) + 1
        return self.clock

    def latest(self) -> EigerVersion:
        return self.versions[-1]

    def version_at(self, logical_time: int) -> EigerVersion:
        for version in reversed(self.versions):
            if version.valid_at(logical_time):
                return version
        # Older than every version: the initial version is the floor.
        return self.versions[0]

    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "eiger-write":
            ts = self._tick(message.get("ts", 0))
            self.latest().valid_until = ts
            self.versions.append(EigerVersion(value=message.get("value"), write_ts=ts))
            ctx.send(
                message.src,
                "eiger-write-ack",
                {"txn": message.get("txn"), "ts": self.clock},
                phase="write",
            )
        elif message.msg_type == "eiger-read":
            self._tick(message.get("ts", 0))
            version = self.latest()
            ctx.send(
                message.src,
                "eiger-read-reply",
                {
                    "txn": message.get("txn"),
                    "object": self.object_id,
                    "value": version.value,
                    "evt": version.write_ts,
                    "lvt": self.clock,
                    "ts": self.clock,
                    "num_versions": 1,
                },
                phase="read-round-1",
            )
        elif message.msg_type == "eiger-read-at":
            self._tick(message.get("ts", 0))
            effective_time = int(message.get("effective_time", 0))
            version = self.version_at(effective_time)
            ctx.send(
                message.src,
                "eiger-read-at-reply",
                {
                    "txn": message.get("txn"),
                    "object": self.object_id,
                    "value": version.value,
                    "evt": version.write_ts,
                    "ts": self.clock,
                    "num_versions": 1,
                },
                phase="read-round-2",
            )


class EigerWriter(WriterAutomaton):
    """A write client with a Lamport clock; writes apply independently per server."""

    def __init__(self, name: str, objects: Sequence[str]) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.clock = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        for object_id, value in txn.updates:
            yield Send(
                dst=server_for_object(object_id),
                msg_type="eiger-write",
                payload={"txn": txn.txn_id, "object": object_id, "value": value, "ts": self.clock},
                phase="write",
            )
        acks = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "eiger-write-ack" and m.get("txn") == txn_id,
            count=len(txn.updates),
            description="write acks",
        )
        self.clock = max([self.clock] + [int(a.get("ts", 0)) for a in acks]) + 1
        return WRITE_OK


class EigerReader(ReaderAutomaton):
    """Eiger's read-only transaction: validity-interval round, optional catch-up round."""

    def __init__(self, name: str, objects: Sequence[str]) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.clock = 0

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        # Round 1: latest values with validity intervals --------------------------
        for object_id in txn.objects:
            yield Send(
                dst=server_for_object(object_id),
                msg_type="eiger-read",
                payload={"txn": txn.txn_id, "object": object_id, "ts": self.clock},
                phase="read-round-1",
            )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "eiger-read-reply" and m.get("txn") == txn_id,
            count=len(txn.objects),
            description="round-1 replies",
        )
        self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in replies]) + 1
        intervals: Dict[str, Tuple[int, int]] = {}
        values: Dict[str, Any] = {}
        for reply in replies:
            object_id = reply.get("object")
            values[object_id] = reply.get("value")
            intervals[object_id] = (int(reply.get("evt", 0)), int(reply.get("lvt", 0)))

        effective_time = max(evt for evt, _ in intervals.values())
        stale = [obj for obj, (evt, lvt) in intervals.items() if lvt < effective_time]

        rounds = 1
        if stale:
            # Round 2: ask out-of-date servers for the version valid at ET.
            rounds = 2
            for object_id in stale:
                yield Send(
                    dst=server_for_object(object_id),
                    msg_type="eiger-read-at",
                    payload={
                        "txn": txn.txn_id,
                        "object": object_id,
                        "effective_time": effective_time,
                        "ts": self.clock,
                    },
                    phase="read-round-2",
                )
            catch_up = yield Await(
                matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "eiger-read-at-reply"
                and m.get("txn") == txn_id,
                count=len(stale),
                description="round-2 replies",
            )
            self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in catch_up]) + 1
            for reply in catch_up:
                values[reply.get("object")] = reply.get("value")

        ctx.annotate_transaction(
            txn.txn_id,
            protocol="eiger",
            effective_time=effective_time,
            eiger_rounds=rounds,
            accepted_first_round=not stale,
        )
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class EigerProtocol(Protocol):
    """Eiger-style read-only transactions: bounded latency but only logical-clock ordering."""

    name = "eiger"
    description = "Eiger-style Lamport-clock read-only transactions (bounded latency, NOT strictly serializable)"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "NOW + bounded rounds; S claimed by [15] but refuted in Section 6"
    claimed_read_rounds = 2
    claimed_versions = 1

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(EigerReader(reader, objects))
        for writer in config.writers():
            automata.append(EigerWriter(writer, objects))
        for object_id, server in zip(objects, config.servers()):
            automata.append(EigerServer(server, object_id, config.initial_value))
        return automata
