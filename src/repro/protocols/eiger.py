"""An Eiger-style read-only transaction protocol (Section 6, Figure 5).

The SNOW paper [15] claimed Eiger [14] was the one existing system whose
READ transactions were both bounded-latency (non-blocking, at most three
rounds) and strictly serializable.  Section 6 of *SNOW Revisited* corrects
this: Eiger orders operations with **Lamport clocks**, and logical clocks
cannot observe the real-time order of causally unrelated operations, so its
read-only transactions are *not* strictly serializable.

This module implements the relevant part of Eiger's design — enough to show
both its bounded latency and its anomaly:

* every process keeps a Lamport clock, updated on every message;
* servers store multi-version values with logical validity intervals
  ``[write_ts, overwritten_ts)``;
* a READ transaction's first round asks every server for its latest version
  together with the version's validity interval (``evt`` = the logical time
  it became valid, ``lvt`` = the server's current logical time, up to which
  it is known to still be valid);
* the reader computes the *effective time* ``ET = max(evt)``; if every
  returned interval contains ``ET`` the values are accepted immediately
  (one round); otherwise a second round asks the out-of-date servers for the
  version valid at ``ET``.

Reads therefore finish in at most two non-blocking one-version rounds — but,
as :mod:`repro.proofs.eiger_example` demonstrates by reconstructing the
execution of Figure 5, the accepted result can mix a new version from one
server with a stale version from another even though an intervening WRITE
completed strictly earlier in real time, violating strict serializability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .replication import (
    DirectoryAwareServer,
    _has_mismatch,
    _note_epoch_retry,
    check_epoch_retry_budget,
    default_policy,
    emit_sends,
    epoch_quorum_round,
    per_object_reply_await,
    placement_or_single_copy,
)


@dataclass
class EigerVersion:
    """A logically-timestamped version with a validity interval."""

    value: Any
    write_ts: int
    valid_until: Optional[int] = None  # None = still the latest version

    def valid_at(self, logical_time: int) -> bool:
        if logical_time < self.write_ts:
            return False
        return self.valid_until is None or logical_time < self.valid_until


class EigerServer(DirectoryAwareServer, ServerAutomaton):
    """A server with a Lamport clock and interval-versioned storage.

    One replica of one object; replicas apply writes independently, each on
    its own clock (Lamport clocks never promised cross-process agreement, so
    per-replica clocks change nothing about Eiger's guarantees — or its
    anomaly).
    """

    def __init__(
        self,
        name: str,
        object_id: str,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.initial_value = initial_value
        self.group: Tuple[str, ...] = tuple(group) if group is not None else (name,)
        self.clock = 0
        self.versions: List[EigerVersion] = [EigerVersion(value=initial_value, write_ts=0)]

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose clock and versions."""
        self.clock = 0
        self.versions = [EigerVersion(value=self.initial_value, write_ts=0)]

    # ------------------------------------------------------------------
    def _tick(self, incoming_ts: int) -> int:
        self.clock = max(self.clock, int(incoming_ts)) + 1
        return self.clock

    def latest(self) -> EigerVersion:
        return self.versions[-1]

    def version_at(self, logical_time: int) -> EigerVersion:
        for version in reversed(self.versions):
            if version.valid_at(logical_time):
                return version
        # Older than every version: the initial version is the floor.
        return self.versions[0]

    # -- reconfiguration state transfer -----------------------------------
    def sync_versions(self) -> Tuple[Any, ...]:
        """Eiger state is the interval-version list plus the Lamport clock."""
        return (
            self.clock,
            tuple((v.value, v.write_ts, v.valid_until) for v in self.versions),
        )

    def install_sync(self, versions: Sequence[Any]) -> int:
        """Install source history without ever discarding an applied write.

        A freshly spawned replica (only the initial version) adopts the
        source's list wholesale.  A replica that already applied writes of
        its own — possible when an epoch-aware write quorum completed at the
        new replica before the sync arrived — keeps every applied version
        (it acked them; dropping one would break quorum intersection) and
        only splices in the source versions that confidently predate its
        first applied write on the Lamport order.
        """
        clock, entries = versions
        incoming = [
            EigerVersion(value=value, write_ts=int(write_ts), valid_until=valid_until)
            for value, write_ts, valid_until in entries
        ]
        self.clock = max(self.clock, int(clock))
        if len(self.versions) == 1:
            if len(incoming) <= 1:
                return 0
            before = len(self.versions)
            self.versions = incoming
            return len(self.versions) - before
        first_applied = self.versions[1]
        older = [
            version
            for version in incoming[1:]
            if version.valid_until is not None
            and version.write_ts < first_applied.write_ts
        ]
        if not older:
            return 0
        initial = self.versions[0]
        initial.valid_until = older[0].write_ts
        older[-1].valid_until = first_applied.write_ts
        self.versions = [initial] + older + self.versions[1:]
        return len(older)

    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if self.handle_directory_message(message, ctx):
            return
        if message.msg_type == "eiger-write":
            ts = self._tick(message.get("ts", 0))
            self.latest().valid_until = ts
            self.versions.append(EigerVersion(value=message.get("value"), write_ts=ts))
            payload: Dict[str, Any] = {"txn": message.get("txn"), "ts": self.clock}
            if self.directory is not None:
                # Per-object ack counting is what the epoch-aware partial
                # write quorums need; plain runs stay field-identical.
                payload["object"] = self.object_id
                self._echo_attempt(message, payload)
            ctx.send(message.src, "eiger-write-ack", payload, phase="write")
        elif message.msg_type == "eiger-read":
            self._tick(message.get("ts", 0))
            version = self.latest()
            payload = {
                "txn": message.get("txn"),
                "object": self.object_id,
                "value": version.value,
                "evt": version.write_ts,
                "lvt": self.clock,
                "ts": self.clock,
                "num_versions": 1,
            }
            self._echo_attempt(message, payload)
            ctx.send(message.src, "eiger-read-reply", payload, phase="read-round-1")
        elif message.msg_type == "eiger-read-at":
            self._tick(message.get("ts", 0))
            effective_time = int(message.get("effective_time", 0))
            version = self.version_at(effective_time)
            payload = {
                "txn": message.get("txn"),
                "object": self.object_id,
                "value": version.value,
                "evt": version.write_ts,
                "ts": self.clock,
                "num_versions": 1,
            }
            self._echo_attempt(message, payload)
            ctx.send(message.src, "eiger-read-at-reply", payload, phase="read-round-2")


class EigerWriter(WriterAutomaton):
    """A write client with a Lamport clock; writes apply independently per replica.

    Writes always install at **every** replica (write-all): Eiger's validity
    intervals are per-replica state, so a replica that missed a write would
    answer reads with a stale interval forever.  Under a reconfiguration
    directory the install becomes an epoch-aware quorum round instead; the
    reader's largest-``evt``-within-the-quorum rule then rides on quorum
    intersection to observe every completed write.
    """

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.clock = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        if self.directory is not None:
            directory = self.directory
            updates = tuple(txn.updates)

            def send_factory(epoch: int, attempt: int):
                return [
                    Send(
                        dst=replica,
                        msg_type="eiger-write",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "value": value,
                            "ts": self.clock,
                            "epoch": epoch,
                            "attempt": attempt,
                        },
                        phase="write",
                    )
                    for object_id, value in updates
                    for replica in directory.targets(object_id)
                ]

            acks, _attempt = yield from epoch_quorum_round(
                txn.txn_id,
                directory,
                ctx,
                send_factory,
                reply_types=("eiger-write-ack",),
                needs_factory=lambda: {
                    obj: directory.write_needed(obj) for obj, _ in updates
                },
                description="write acks",
                batch=self.batch_fanout,
            )
            self.clock = max([self.clock] + [int(a.get("ts", 0)) for a in acks]) + 1
            return WRITE_OK
        write_sends = [
            Send(
                dst=replica,
                msg_type="eiger-write",
                payload={"txn": txn.txn_id, "object": object_id, "value": value, "ts": self.clock},
                phase="write",
            )
            for object_id, value in txn.updates
            for replica in self.placement.group(object_id)
        ]
        sends = len(write_sends)
        yield from emit_sends(write_sends, self.batch_fanout)
        acks = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "eiger-write-ack" and m.get("txn") == txn_id,
            count=sends,
            description="write acks",
        )
        self.clock = max([self.clock] + [int(a.get("ts", 0)) for a in acks]) + 1
        return WRITE_OK


class EigerReader(ReaderAutomaton):
    """Eiger's read-only transaction: validity-interval round, optional catch-up round.

    Under replication, round 1 fans out to every replica of each object and
    accepts a read quorum per object, keeping, per object, the reply with
    the largest ``evt`` (the most recently revalidated version among the
    quorum); the optional catch-up round goes back to exactly the replica
    whose reply was kept, since validity intervals only mean something on
    the clock of the replica that issued them.

    Under a reconfiguration directory both rounds are epoch-aware: round 1
    is a quorum round per active configuration, and an ``epoch-mismatch`` in
    either round (a replica retired under the read) restarts the read
    against the refreshed groups, bounded by the shared retry budget.
    """

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()
        self.clock = 0

    def _select_round1(self, replies) -> Tuple[Dict[str, Any], Dict[str, Tuple[int, int]], Dict[str, str]]:
        """Per object: keep the reply with the largest ``evt`` (ties: first)."""
        intervals: Dict[str, Tuple[int, int]] = {}
        values: Dict[str, Any] = {}
        chosen_replica: Dict[str, str] = {}
        for reply in replies:
            if reply.msg_type != "eiger-read-reply":
                continue
            object_id = reply.get("object")
            evt = int(reply.get("evt", 0))
            if object_id in intervals and evt <= intervals[object_id][0]:
                continue
            values[object_id] = reply.get("value")
            intervals[object_id] = (evt, int(reply.get("lvt", 0)))
            chosen_replica[object_id] = reply.src
        return values, intervals, chosen_replica

    def _run_epoch(self, txn: ReadTransaction, ctx: Context):
        """The epoch-aware read (directory installed): both rounds retryable."""
        directory = self.directory
        read_set = tuple(txn.objects)
        attempt = 0
        restarts = 0
        while True:
            restarts += 1
            check_epoch_retry_budget("read", txn.txn_id, restarts)

            def send_factory(epoch: int, attempt: int):
                return [
                    Send(
                        dst=replica,
                        msg_type="eiger-read",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "ts": self.clock,
                            "epoch": epoch,
                            "attempt": attempt,
                        },
                        phase="read-round-1",
                    )
                    for object_id in read_set
                    for replica in directory.targets(object_id)
                ]

            replies, attempt = yield from epoch_quorum_round(
                txn.txn_id,
                directory,
                ctx,
                send_factory,
                reply_types=("eiger-read-reply",),
                needs_factory=lambda: {
                    obj: directory.read_needed(obj) for obj in read_set
                },
                description="round-1 replies",
                start_attempt=attempt,
                batch=self.batch_fanout,
            )
            self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in replies]) + 1
            values, intervals, chosen_replica = self._select_round1(replies)
            effective_time = max(evt for evt, _ in intervals.values())
            stale = [obj for obj, (evt, lvt) in intervals.items() if lvt < effective_time]

            rounds = 1
            if stale:
                # Round 2: ask the chosen replicas for the version valid at
                # ET.  A replica chosen in round 1 may have been retired (or
                # even removed from the kernel after its drain) between the
                # rounds — restart the read instead of addressing a ghost.
                if any(directory.is_retired(chosen_replica[obj]) for obj in stale):
                    _note_epoch_retry(txn.txn_id, attempt, directory, ctx)
                    continue
                rounds = 2
                attempt += 1
                for object_id in stale:
                    yield Send(
                        dst=chosen_replica[object_id],
                        msg_type="eiger-read-at",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "effective_time": effective_time,
                            "ts": self.clock,
                            "attempt": attempt,
                        },
                        phase="read-round-2",
                    )
                need = len(stale)
                catch_up = yield Await(
                    matcher=lambda m, t=txn.txn_id, a=attempt: m.msg_type
                    in ("eiger-read-at-reply", "epoch-mismatch")
                    and m.get("txn") == t
                    and m.get("attempt") == a,
                    until=lambda collected, n=need: _has_mismatch(collected)
                    or sum(1 for m in collected if m.msg_type == "eiger-read-at-reply") >= n,
                    description="round-2 replies (epoch)",
                )
                hits = [m for m in catch_up if m.msg_type == "eiger-read-at-reply"]
                if len(hits) < need:
                    _note_epoch_retry(txn.txn_id, attempt, directory, ctx)
                    continue
                self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in hits]) + 1
                for reply in hits:
                    values[reply.get("object")] = reply.get("value")

            ctx.annotate_transaction(
                txn.txn_id,
                protocol="eiger",
                effective_time=effective_time,
                eiger_rounds=rounds,
                accepted_first_round=not stale,
            )
            return ReadResult.from_mapping({obj: values[obj] for obj in read_set})

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        if self.directory is not None:
            result = yield from self._run_epoch(txn, ctx)
            return result
        # Round 1: latest values with validity intervals --------------------------
        yield from emit_sends(
            [
                Send(
                    dst=replica,
                    msg_type="eiger-read",
                    payload={"txn": txn.txn_id, "object": object_id, "ts": self.clock},
                    phase="read-round-1",
                )
                for object_id in txn.objects
                for replica in self.placement.group(object_id)
            ],
            self.batch_fanout,
        )
        replies = yield per_object_reply_await(
            txn.txn_id,
            tuple(txn.objects),
            self.placement,
            self.policy,
            reply_type="eiger-read-reply",
            description="round-1 replies",
        )
        self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in replies]) + 1
        intervals: Dict[str, Tuple[int, int]] = {}
        values: Dict[str, Any] = {}
        chosen_replica: Dict[str, str] = {}
        for reply in replies:
            object_id = reply.get("object")
            evt = int(reply.get("evt", 0))
            if object_id in intervals and evt <= intervals[object_id][0]:
                continue  # keep the reply with the largest evt (first wins ties)
            values[object_id] = reply.get("value")
            intervals[object_id] = (evt, int(reply.get("lvt", 0)))
            chosen_replica[object_id] = reply.src

        effective_time = max(evt for evt, _ in intervals.values())
        stale = [obj for obj, (evt, lvt) in intervals.items() if lvt < effective_time]

        rounds = 1
        if stale:
            # Round 2: ask out-of-date servers for the version valid at ET.
            rounds = 2
            for object_id in stale:
                yield Send(
                    dst=chosen_replica[object_id],
                    msg_type="eiger-read-at",
                    payload={
                        "txn": txn.txn_id,
                        "object": object_id,
                        "effective_time": effective_time,
                        "ts": self.clock,
                    },
                    phase="read-round-2",
                )
            catch_up = yield Await(
                matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "eiger-read-at-reply"
                and m.get("txn") == txn_id,
                count=len(stale),
                description="round-2 replies",
            )
            self.clock = max([self.clock] + [int(r.get("ts", 0)) for r in catch_up]) + 1
            for reply in catch_up:
                values[reply.get("object")] = reply.get("value")

        ctx.annotate_transaction(
            txn.txn_id,
            protocol="eiger",
            effective_time=effective_time,
            eiger_rounds=rounds,
            accepted_first_round=not stale,
        )
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class EigerProtocol(Protocol):
    """Eiger-style read-only transactions: bounded latency but only logical-clock ordering."""

    name = "eiger"
    description = "Eiger-style Lamport-clock read-only transactions (bounded latency, NOT strictly serializable)"
    requires_c2c = False
    supports_reconfig = True
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "NOW + bounded rounds; S claimed by [15] but refuted in Section 6"
    claimed_read_rounds = 2
    claimed_versions = 1

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        return EigerServer(name, object_id, config.initial_value, group=group)

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        policy = config.quorum_policy()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(EigerReader(reader, objects, placement, policy))
        for writer in config.writers():
            automata.append(EigerWriter(writer, objects, placement))
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    EigerServer(replica, object_id, config.initial_value, group=group)
                )
        return automata
