"""Algorithm C (Section 9, Pseudocodes 5, 7): SNW + one-round, ≤|W| versions, MWMR.

Algorithm C keeps READ transactions down to a **single** parallel round by
giving up the *one-version* half of the O property: every server answers a
read request with its entire multi-version set ``Vals`` (whose size is
bounded by the number of WRITE transactions concurrent with the READ plus
the committed prefix), while the coordinator's reply pins down, per object,
*which* of those versions the READ must return.

The coordinator request and the data requests are sent concurrently; when
the coordinator itself stores one of the requested objects, the two requests
are combined into a single message (as the paper notes), preserving the
one-round property.

Fidelity note
-------------
The paper's pseudocode assumes the version named by the coordinator is
always present in the concurrently-fetched ``Vals`` snapshot.  Under an
adversarial schedule the data reply can be captured *before* the write-value
message reaches that server while the coordinator reply is captured *after*
the same WRITE's update-coor message — in that corner case the named key is
missing from the snapshot.  The implementation then falls back to one extra
algorithm-B-style round for the affected objects and annotates the
transaction with ``fallback_rounds`` so experiments can report how often the
corner case occurs (it cannot occur under FIFO scheduling; see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..ioa.automaton import Await, Context, ReaderAutomaton, Send
from ..ioa.errors import SimulationError
from ..txn.objects import Key, server_for_object
from ..txn.transactions import ReadResult, ReadTransaction
from .base import BuildConfig, Protocol
from .coordinated import CoordinatedServer, CoordinatedWriter, coordinator_name


class AlgorithmCReader(ReaderAutomaton):
    """One-round reader: fetch all versions and the tag array concurrently."""

    def __init__(self, name: str, objects: Sequence[str], coordinator: str) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        read_set = tuple(txn.objects)
        read_servers = {object_id: server_for_object(object_id) for object_id in read_set}
        coordinator_holds_read_object = self.coordinator in read_servers.values()

        # Single phase: read-values-and-tags -----------------------------------
        expected_replies = len(read_set)
        for object_id in read_set:
            payload: Dict[str, Any] = {"txn": txn.txn_id, "object": object_id}
            if read_servers[object_id] == self.coordinator:
                # combine the data request and the tag-array request
                payload["want_tags"] = True
                payload["read_set"] = read_set
            yield Send(
                dst=read_servers[object_id],
                msg_type="read-vals",
                payload=payload,
                phase="read-values-and-tags",
            )
        if not coordinator_holds_read_object:
            expected_replies += 1
            yield Send(
                dst=self.coordinator,
                msg_type="get-tag-arr",
                payload={"txn": txn.txn_id, "read_set": read_set},
                phase="read-values-and-tags",
            )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type in ("read-vals-reply", "tag-arr-reply")
            and m.get("txn") == txn_id,
            count=expected_replies,
            description="values and tag array",
        )

        tag = None
        keys: Dict[str, Key] = {}
        versions_by_object: Dict[str, Dict[Key, Any]] = {}
        for reply in replies:
            if reply.get("tag") is not None:
                tag = reply.get("tag")
                keys = dict(reply.get("keys", ()))
            if reply.msg_type == "read-vals-reply":
                versions_by_object[reply.get("object")] = {
                    key: value for key, value in reply.get("versions", ())
                }
        if tag is None or not keys:
            raise SimulationError(f"reader {self.name} never received the tag array for {txn.txn_id}")

        values: Dict[str, Any] = {}
        missing: List[str] = []
        for object_id in read_set:
            wanted = keys[object_id]
            snapshot = versions_by_object.get(object_id, {})
            if wanted in snapshot:
                values[object_id] = snapshot[wanted]
            else:
                missing.append(object_id)

        fallback_rounds = 0
        if missing:
            # Corner-case fallback (see module docstring): fetch the named
            # versions directly, algorithm-B style.
            fallback_rounds = 1
            for object_id in missing:
                yield Send(
                    dst=read_servers[object_id],
                    msg_type="read-val",
                    payload={"txn": txn.txn_id, "object": object_id, "key": keys[object_id]},
                    phase="read-value-fallback",
                )
            fallback_replies = yield Await(
                matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "read-val-reply" and m.get("txn") == txn_id,
                count=len(missing),
                description="fallback read-value replies",
            )
            for reply in fallback_replies:
                values[reply.get("object")] = reply.get("value")

        max_versions = max(
            (len(snapshot) for snapshot in versions_by_object.values()), default=1
        )
        ctx.annotate_transaction(
            txn.txn_id,
            tag=tag,
            protocol="algorithm-c",
            fallback_rounds=fallback_rounds,
            versions_fetched=max_versions,
        )
        return ReadResult.from_mapping({obj: values[obj] for obj in read_set})


class AlgorithmC(Protocol):
    """SNW + one-round READ transactions returning up to |W| versions (Theorem 5)."""

    name = "algorithm-c"
    description = "Paper's algorithm C: strictly serializable, non-blocking, one-round, multi-version reads (MWMR, no C2C)"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "SNW + one-round (Theorem 5)"
    claimed_read_rounds = 1
    claimed_versions = None  # up to |W|

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        servers = config.servers()
        coordinator = coordinator_name(servers)
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(AlgorithmCReader(reader, objects, coordinator))
        for writer in config.writers():
            automata.append(CoordinatedWriter(writer, objects, coordinator))
        for object_id, server in zip(objects, servers):
            automata.append(
                CoordinatedServer(
                    server,
                    object_id,
                    objects,
                    is_coordinator=(server == coordinator),
                    initial_value=config.initial_value,
                )
            )
        return automata
