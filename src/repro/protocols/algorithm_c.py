"""Algorithm C (Section 9, Pseudocodes 5, 7): SNW + one-round, ≤|W| versions, MWMR.

Algorithm C keeps READ transactions down to a **single** parallel round by
giving up the *one-version* half of the O property: every server answers a
read request with its entire multi-version set ``Vals`` (whose size is
bounded by the number of WRITE transactions concurrent with the READ plus
the committed prefix), while the coordinator's reply pins down, per object,
*which* of those versions the READ must return.

The coordinator request and the data requests are sent concurrently; when
the coordinator itself stores one of the requested objects, the two requests
are combined into a single message (as the paper notes), preserving the
one-round property.

Under the placement layer the data requests fan out to every replica of each
requested object and the round completes once a read quorum of ``Vals``
snapshots arrived per object (plus the coordinator's tag array); the
per-object snapshots are unioned, and quorum intersection with the write
quorum guarantees the union contains every key the coordinator can name for
a completed WRITE.

Fidelity note
-------------
The paper's pseudocode assumes the version named by the coordinator is
always present in the concurrently-fetched ``Vals`` snapshot.  Under an
adversarial schedule the data reply can be captured *before* the write-value
message reaches that server while the coordinator reply is captured *after*
the same WRITE's update-coor message — in that corner case the named key is
missing from the snapshot.  The implementation then falls back to one extra
algorithm-B-style round for the affected objects and annotates the
transaction with ``fallback_rounds`` so experiments can report how often the
corner case occurs (it cannot occur under FIFO scheduling; see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send
from ..ioa.errors import SimulationError
from ..txn.objects import Key, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import ReadResult, ReadTransaction
from ..consensus.machines import ListStateMachine
from .base import BuildConfig, Protocol
from .coordinated import (
    CoordinatedServer,
    CoordinatedWriter,
    consensus_members_for,
    coordinator_targets,
    live_coordinator_targets,
)
from .replication import (
    default_policy,
    emit_sends,
    epoch_quorum_round,
    key_read_round,
    per_object_reply_await,
    placement_or_single_copy,
)


def _tag_seen(collected: Sequence[Message]) -> bool:
    return any(m.get("tag") is not None for m in collected)


class AlgorithmCReader(ReaderAutomaton):
    """One-round reader: fetch all versions and the tag array concurrently."""

    #: shared placement directory when built with a reconfiguration plan
    #: (injected by the build; None keeps the rounds byte-identical)
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        coordinator: str,
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
        coordinator_group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator
        self.coordinator_group = (
            tuple(coordinator_group) if coordinator_group else (coordinator,)
        )
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()

    def _fixed_membership_round(self, txn: ReadTransaction):
        """The seed's single round (no directory): byte-identical wire."""
        read_set = tuple(txn.objects)
        read_targets = {
            object_id: self.placement.group(object_id) for object_id in read_set
        }
        # Combining the data and tag requests into one message only applies
        # when the coordinator *is* a storage server (the unreplicated
        # deployment); a consensus group holds no objects.
        replicated_coordinator = len(self.coordinator_group) > 1
        coordinator_holds_read_object = not replicated_coordinator and any(
            self.coordinator in group for group in read_targets.values()
        )

        # Single phase: read-values-and-tags -----------------------------------
        sends = []
        for object_id in read_set:
            for replica in read_targets[object_id]:
                payload: Dict[str, Any] = {"txn": txn.txn_id, "object": object_id}
                if coordinator_holds_read_object and replica == self.coordinator:
                    # combine the data request and the tag-array request
                    payload["want_tags"] = True
                    payload["read_set"] = read_set
                sends.append(
                    Send(
                        dst=replica,
                        msg_type="read-vals",
                        payload=payload,
                        phase="read-values-and-tags",
                    )
                )
        if not coordinator_holds_read_object:
            for target in self.coordinator_group:
                sends.append(
                    Send(
                        dst=target,
                        msg_type="get-tag-arr",
                        payload={"txn": txn.txn_id, "read_set": read_set},
                        phase="read-values-and-tags",
                    )
                )
        yield from emit_sends(sends, self.batch_fanout)
        replies = yield per_object_reply_await(
            txn.txn_id,
            read_set,
            self.placement,
            self.policy,
            reply_type="read-vals-reply",
            description="values and tag array",
            extra_types=("tag-arr-reply",),
            extra_count=0 if coordinator_holds_read_object else 1,
            extra_ready=_tag_seen,
            # With a replicated coordinator the number of tag replies is not
            # fixed (only the leader answers; a failover may answer twice), so
            # a fixed count cannot express readiness — use the predicate form.
            force_quorum=replicated_coordinator,
        )
        return replies

    def _epoch_round(self, txn: ReadTransaction, ctx: Context):
        """The epoch-aware body of the single read round (directory installed).

        Requests go to ``C_old ∪ C_new`` of every requested object and carry
        epoch+attempt stamps; readiness needs a read quorum of ``Vals``
        snapshots per object per active configuration plus the tag array, and
        an ``epoch-mismatch`` (a retired replica) restarts the round against
        the refreshed groups.  The tag request is re-broadcast per attempt —
        idempotent at the single coordinator (a read) and deduplicated by
        request id at a replicated one.
        """
        read_set = tuple(txn.objects)
        directory = self.directory
        replicated_coordinator = len(self.coordinator_group) > 1

        def send_factory(epoch: int, attempt: int):
            sends = []
            coordinator_holds = not replicated_coordinator and any(
                self.coordinator in directory.targets(object_id)
                for object_id in read_set
            )
            for object_id in read_set:
                for replica in directory.targets(object_id):
                    payload: Dict[str, Any] = {
                        "txn": txn.txn_id,
                        "object": object_id,
                        "epoch": epoch,
                        "attempt": attempt,
                    }
                    if coordinator_holds and replica == self.coordinator:
                        payload["want_tags"] = True
                        payload["read_set"] = read_set
                    sends.append(
                        Send(
                            dst=replica,
                            msg_type="read-vals",
                            payload=payload,
                            phase="read-values-and-tags",
                        )
                    )
            if not coordinator_holds:
                for target in live_coordinator_targets(directory, self.coordinator_group):
                    sends.append(
                        Send(
                            dst=target,
                            msg_type="get-tag-arr",
                            payload={"txn": txn.txn_id, "read_set": read_set},
                            phase="read-values-and-tags",
                        )
                    )
            return sends

        replies, _attempt = yield from epoch_quorum_round(
            txn.txn_id,
            directory,
            ctx,
            send_factory,
            reply_types=("read-vals-reply",),
            needs_factory=lambda: {obj: directory.read_needed(obj) for obj in read_set},
            extra_ready=_tag_seen,
            description="values and tag array",
            unfiltered_types=("tag-arr-reply",),
            batch=self.batch_fanout,
        )
        return replies

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        read_set = tuple(txn.objects)
        if self.directory is not None:
            replies = yield from self._epoch_round(txn, ctx)
        else:
            replies = yield from self._fixed_membership_round(txn)

        tag = None
        keys: Dict[str, Key] = {}
        versions_by_object: Dict[str, Dict[Key, Any]] = {}
        for reply in replies:
            if reply.get("tag") is not None:
                tag = reply.get("tag")
                keys = dict(reply.get("keys", ()))
            if reply.msg_type == "read-vals-reply":
                versions_by_object.setdefault(reply.get("object"), {}).update(
                    {key: value for key, value in reply.get("versions", ())}
                )
        if tag is None or not keys:
            raise SimulationError(f"reader {self.name} never received the tag array for {txn.txn_id}")

        values: Dict[str, Any] = {}
        missing: List[str] = []
        for object_id in read_set:
            wanted = keys[object_id]
            snapshot = versions_by_object.get(object_id, {})
            if wanted in snapshot:
                values[object_id] = snapshot[wanted]
            else:
                missing.append(object_id)

        fallback_rounds = 0
        if missing:
            # Corner-case fallback (see module docstring): fetch the named
            # versions directly, algorithm-B style (quorum round under
            # replication).
            fallback_rounds = 1
            fallback_values, _fallback_replies = yield from key_read_round(
                txn.txn_id,
                {object_id: keys[object_id] for object_id in missing},
                self.placement,
                self.policy,
                phase="read-value-fallback",
                directory=self.directory,
                ctx=ctx,
                batch=self.batch_fanout,
            )
            values.update(fallback_values)

        max_versions = max(
            (len(snapshot) for snapshot in versions_by_object.values()), default=1
        )
        annotations: Dict[str, Any] = {
            "tag": tag,
            "protocol": "algorithm-c",
            "fallback_rounds": fallback_rounds,
            "versions_fetched": max_versions,
        }
        if not self.placement.is_trivial():
            annotations["quorum_replies"] = len(replies)
        ctx.annotate_transaction(txn.txn_id, **annotations)
        return ReadResult.from_mapping({obj: values[obj] for obj in read_set})


class AlgorithmC(Protocol):
    """SNW + one-round READ transactions returning up to |W| versions (Theorem 5)."""

    name = "algorithm-c"
    description = "Paper's algorithm C: strictly serializable, non-blocking, one-round, multi-version reads (MWMR, no C2C)"
    requires_c2c = False
    has_coordinator = True
    supports_reconfig = True
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "SNW + one-round (Theorem 5)"
    claimed_read_rounds = 1
    claimed_versions = None  # up to |W|

    def make_consensus_machine(self, config: BuildConfig) -> ListStateMachine:
        return ListStateMachine(config.objects())

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        # Dynamic replicas are plain storage replicas: the coordinator role
        # lives on the designated first server (or the consensus group) and
        # never migrates through a replica-group change.
        return CoordinatedServer(
            name,
            object_id,
            config.objects(),
            is_coordinator=False,
            initial_value=config.initial_value,
            group=group,
        )

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        policy = config.quorum_policy()
        coordinator_group = coordinator_targets(config)
        coordinator = coordinator_group[0]
        replicated_coordinator = len(coordinator_group) > 1
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(
                AlgorithmCReader(
                    reader, objects, coordinator, placement, policy, coordinator_group
                )
            )
        for writer in config.writers():
            automata.append(
                CoordinatedWriter(
                    writer, objects, coordinator, placement, policy, coordinator_group
                )
            )
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    CoordinatedServer(
                        replica,
                        object_id,
                        objects,
                        is_coordinator=(not replicated_coordinator and replica == coordinator),
                        initial_value=config.initial_value,
                        group=group,
                    )
                )
        automata.extend(
            consensus_members_for(config, lambda: self.make_consensus_machine(config))
        )
        return automata
