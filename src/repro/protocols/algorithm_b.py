"""Algorithm B (Section 8, Pseudocodes 5-6): SNW + one-version, two rounds, MWMR.

Algorithm B gives up the *one-round* half of the O property and in exchange
works for any number of readers and writers with **no client-to-client
communication**: READ transactions are strictly serializable, non-blocking,
return exactly one version per object, and always finish in **two** rounds —
the first bounded-latency strictly serializable READ transaction design
(together with algorithm C).

READ transaction of reader ``r``:

1. ``get-tag-array`` — ask the coordinator ``s*`` for, per requested object,
   the key of the latest completed WRITE that updated it (plus the read tag
   ``t_r``);
2. ``read-value`` — fetch exactly those keys from the servers, one version
   per reply.

WRITE transactions are the shared Pseudocode 5 writer
(:class:`~repro.protocols.coordinated.CoordinatedWriter`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..ioa.automaton import Await, Context, ReaderAutomaton, Send
from ..ioa.errors import SimulationError
from ..txn.objects import Key, server_for_object
from ..txn.transactions import ReadResult, ReadTransaction
from .base import BuildConfig, Protocol
from .coordinated import CoordinatedServer, CoordinatedWriter, coordinator_name


class AlgorithmBReader(ReaderAutomaton):
    """Two-round reader: consult the coordinator, then fetch exact versions."""

    def __init__(self, name: str, objects: Sequence[str], coordinator: str) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        # Round 1: get-tag-array ------------------------------------------------
        yield Send(
            dst=self.coordinator,
            msg_type="get-tag-arr",
            payload={"txn": txn.txn_id, "read_set": tuple(txn.objects)},
            phase="get-tag-array",
        )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "tag-arr-reply" and m.get("txn") == txn_id,
            count=1,
            description="tag array",
        )
        tag = replies[0].get("tag")
        keys: Dict[str, Key] = dict(replies[0].get("keys", ()))
        # Round 2: read-value -----------------------------------------------------
        for object_id in txn.objects:
            yield Send(
                dst=server_for_object(object_id),
                msg_type="read-val",
                payload={"txn": txn.txn_id, "object": object_id, "key": keys[object_id]},
                phase="read-value",
            )
        value_replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "read-val-reply" and m.get("txn") == txn_id,
            count=len(txn.objects),
            description="read-value replies",
        )
        values = {reply.get("object"): reply.get("value") for reply in value_replies}
        ctx.annotate_transaction(txn.txn_id, tag=tag, protocol="algorithm-b")
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class AlgorithmB(Protocol):
    """SNW + one-version READ transactions in two non-blocking rounds (Theorem 4)."""

    name = "algorithm-b"
    description = "Paper's algorithm B: strictly serializable, non-blocking, one-version, two-round reads (MWMR, no C2C)"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "SNW + one-version (Theorem 4)"
    claimed_read_rounds = 2
    claimed_versions = 1

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        servers = config.servers()
        coordinator = coordinator_name(servers)
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(AlgorithmBReader(reader, objects, coordinator))
        for writer in config.writers():
            automata.append(CoordinatedWriter(writer, objects, coordinator))
        for object_id, server in zip(objects, servers):
            automata.append(
                CoordinatedServer(
                    server,
                    object_id,
                    objects,
                    is_coordinator=(server == coordinator),
                    initial_value=config.initial_value,
                )
            )
        return automata
