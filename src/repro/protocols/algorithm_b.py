"""Algorithm B (Section 8, Pseudocodes 5-6): SNW + one-version, two rounds, MWMR.

Algorithm B gives up the *one-round* half of the O property and in exchange
works for any number of readers and writers with **no client-to-client
communication**: READ transactions are strictly serializable, non-blocking,
return exactly one version per object, and always finish in **two** rounds —
the first bounded-latency strictly serializable READ transaction design
(together with algorithm C).

READ transaction of reader ``r``:

1. ``get-tag-array`` — ask the coordinator ``s*`` for, per requested object,
   the key of the latest completed WRITE that updated it (plus the read tag
   ``t_r``);
2. ``read-value`` — fetch exactly those keys from the replica groups, one
   version per reply; under replication the round fans out to every replica
   and completes on a read quorum per object (quorum intersection guarantees
   a hit, since the coordinator only names keys whose write quorum
   completed).

WRITE transactions are the shared Pseudocode 5 writer
(:class:`~repro.protocols.coordinated.CoordinatedWriter`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..ioa.automaton import Await, Context, ReaderAutomaton, Send
from ..ioa.errors import SimulationError
from ..txn.objects import Key, server_for_object
from ..txn.placement import Placement, QuorumPolicy
from ..txn.transactions import ReadResult, ReadTransaction
from ..consensus.machines import ListStateMachine
from .base import BuildConfig, Protocol
from .coordinated import (
    CoordinatedServer,
    CoordinatedWriter,
    consensus_members_for,
    coordinator_targets,
    live_coordinator_targets,
)
from .replication import default_policy, emit_sends, key_read_round, placement_or_single_copy


class AlgorithmBReader(ReaderAutomaton):
    """Two-round reader: consult the coordinator, then fetch exact versions."""

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        coordinator: str,
        placement: Optional[Placement] = None,
        policy: Optional[QuorumPolicy] = None,
        coordinator_group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.coordinator = coordinator
        self.coordinator_group = (
            tuple(coordinator_group) if coordinator_group else (coordinator,)
        )
        self.placement = placement_or_single_copy(self.objects, placement)
        self.policy = policy if policy is not None else default_policy()

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        # Round 1: get-tag-array (broadcast to the coordinator group; the
        # first — and with consensus, only committed — reply wins) -------------
        yield from emit_sends(
            [
                Send(
                    dst=target,
                    msg_type="get-tag-arr",
                    payload={"txn": txn.txn_id, "read_set": tuple(txn.objects)},
                    phase="get-tag-array",
                )
                for target in live_coordinator_targets(self.directory, self.coordinator_group)
            ],
            self.batch_fanout,
        )
        replies = yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "tag-arr-reply" and m.get("txn") == txn_id,
            count=1,
            description="tag array",
        )
        tag = replies[0].get("tag")
        keys: Dict[str, Key] = dict(replies[0].get("keys", ()))
        # Round 2: read-value (a read quorum per replica group) -----------------
        chosen = {object_id: keys[object_id] for object_id in txn.objects}
        values, value_replies = yield from key_read_round(
            txn.txn_id, chosen, self.placement, self.policy,
            directory=self.directory, ctx=ctx, batch=self.batch_fanout,
        )
        annotations: Dict[str, Any] = {"tag": tag, "protocol": "algorithm-b"}
        if not self.placement.is_trivial():
            annotations["quorum_replies"] = len(value_replies)
        ctx.annotate_transaction(txn.txn_id, **annotations)
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class AlgorithmB(Protocol):
    """SNW + one-version READ transactions in two non-blocking rounds (Theorem 4)."""

    name = "algorithm-b"
    description = "Paper's algorithm B: strictly serializable, non-blocking, one-version, two-round reads (MWMR, no C2C)"
    requires_c2c = False
    has_coordinator = True
    supports_reconfig = True
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "SNW + one-version (Theorem 4)"
    claimed_read_rounds = 2
    claimed_versions = 1

    def make_consensus_machine(self, config: BuildConfig) -> ListStateMachine:
        return ListStateMachine(config.objects())

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        # Dynamic replicas are plain storage replicas: the coordinator role
        # lives on the designated first server (or the consensus group) and
        # never migrates through a replica-group change.
        return CoordinatedServer(
            name,
            object_id,
            config.objects(),
            is_coordinator=False,
            initial_value=config.initial_value,
            group=group,
        )

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        policy = config.quorum_policy()
        coordinator_group = coordinator_targets(config)
        coordinator = coordinator_group[0]
        replicated_coordinator = len(coordinator_group) > 1
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(
                AlgorithmBReader(
                    reader, objects, coordinator, placement, policy, coordinator_group
                )
            )
        for writer in config.writers():
            automata.append(
                CoordinatedWriter(
                    writer, objects, coordinator, placement, policy, coordinator_group
                )
            )
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    CoordinatedServer(
                        replica,
                        object_id,
                        objects,
                        is_coordinator=(not replicated_coordinator and replica == coordinator),
                        initial_value=config.initial_value,
                        group=group,
                    )
                )
        automata.extend(
            consensus_members_for(config, lambda: self.make_consensus_machine(config))
        )
        return automata
