"""Lock-based (blocking) baseline: strict two-phase locking with ordered acquisition.

The SNOW theorem says a READ transaction system must give up either the
strongest guarantees (S and W) or optimal latency (N and O).  This baseline
is the classic way real systems give up **N**: transactions take locks, and a
server that holds a conflicting lock simply *defers* its reply until the lock
is released — the reader blocks.

Design (kept deliberately textbook):

* all transactions acquire locks **in a global object order** (so the system
  is deadlock-free without a deadlock detector);
* readers take per-object read locks one at a time, collecting the value as
  each lock is granted, and release all locks after the last value arrives;
* writers take write locks one at a time, then install every value in a
  commit round, which also releases the locks and answers any deferred
  requests.

Because every transaction holds all of its locks simultaneously at some
instant between its invocation and response, executions are strictly
serializable (strict 2PL).  The price is exactly what the N- and O-checkers
report: replies can be deferred behind lock holders (not non-blocking) and a
q-object READ takes q sequential rounds (not one-round).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .replication import (
    DirectoryAwareServer,
    _note_epoch_retry,
    check_epoch_retry_budget,
    placement_or_single_copy,
)


@dataclass
class _PendingRequest:
    message: Message
    is_write: bool


class LockingServer(DirectoryAwareServer, ServerAutomaton):
    """Per-replica read/write locks with a FIFO queue of deferred requests.

    Replication note: each replica keeps its *own* lock table; clients take
    locks on every replica of an object (in a global ``(object, replica)``
    order, which keeps the system deadlock-free) and commits install at every
    replica, so all copies stay identical.

    Under a reconfiguration directory, a retired replica answers every lock
    or commit request with ``epoch-mismatch`` (via the shared mixin), which
    makes the client release its partial locks and restart the transaction
    against the refreshed groups; ``unlock-write`` exists for exactly that
    abort path (release a write lock without installing).
    """

    def __init__(
        self,
        name: str,
        object_id: str,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.initial_value = initial_value
        self.group: Tuple[str, ...] = tuple(group) if group is not None else (name,)
        self.store = VersionStore(object_id, initial_value)
        self.write_locked_by: Optional[str] = None
        self.read_lock_holders: List[str] = []
        self.queue: Deque[_PendingRequest] = deque()

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose store, locks and queued requests."""
        self.store = VersionStore(self.object_id, self.initial_value)
        self.write_locked_by = None
        self.read_lock_holders = []
        self.queue = deque()

    # ------------------------------------------------------------------
    def _can_grant_read(self) -> bool:
        return self.write_locked_by is None

    def _can_grant_write(self) -> bool:
        return self.write_locked_by is None and not self.read_lock_holders

    def _grant_read(self, message: Message, ctx: Context) -> None:
        self.read_lock_holders.append(message.src)
        version = self.store.latest()
        payload = {
            "txn": message.get("txn"),
            "object": self.object_id,
            "value": version.value,
            "num_versions": 1,
        }
        self._echo_attempt(message, payload)
        ctx.send(message.src, "lock-read-granted", payload, phase="lock-read")

    def _grant_write(self, message: Message, ctx: Context) -> None:
        self.write_locked_by = message.src
        payload = {"txn": message.get("txn"), "object": self.object_id}
        self._echo_attempt(message, payload)
        ctx.send(message.src, "lock-write-granted", payload, phase="lock-write")

    def _purge_queue(self, src: str, txn: Any) -> None:
        """Drop deferred requests a restarting client no longer waits for."""
        self.queue = deque(
            pending
            for pending in self.queue
            if not (pending.message.src == src and pending.message.get("txn") == txn)
        )

    def handle_directory_message(self, message: Message, ctx: Context) -> bool:
        handled = super().handle_directory_message(message, ctx)
        if (
            handled
            and self.directory is not None
            and self.directory.is_retired(self.name)
        ):
            # Retirement flush: clients whose lock requests were *queued*
            # before this server retired would otherwise wait forever (no
            # grant, no mismatch) — bounce them all and drop the locks the
            # moment any post-retirement message proves we are still being
            # addressed.
            self._flush_retired(ctx)
        return handled

    def _flush_retired(self, ctx: Context) -> None:
        while self.queue:
            pending = self.queue.popleft()
            payload = {
                "txn": pending.message.get("txn"),
                "object": self.object_id,
                "epoch": self.directory.epoch,
            }
            self._echo_attempt(pending.message, payload)
            ctx.send(pending.message.src, "epoch-mismatch", payload, phase="reconfig")
        self.write_locked_by = None
        self.read_lock_holders = []

    def _drain_queue(self, ctx: Context) -> None:
        """Grant deferred requests from the front while compatible."""
        progressed = True
        while progressed and self.queue:
            progressed = False
            head = self.queue[0]
            if head.is_write and self._can_grant_write():
                self.queue.popleft()
                self._grant_write(head.message, ctx)
                progressed = True
            elif not head.is_write and self._can_grant_read():
                self.queue.popleft()
                self._grant_read(head.message, ctx)
                progressed = True

    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if self.handle_directory_message(message, ctx):
            return
        if message.msg_type == "lock-read":
            if self._can_grant_read():
                self._grant_read(message, ctx)
            else:
                self.queue.append(_PendingRequest(message=message, is_write=False))
        elif message.msg_type == "unlock-read":
            if message.src in self.read_lock_holders:
                self.read_lock_holders.remove(message.src)
            if self.directory is not None:
                self._purge_queue(message.src, message.get("txn"))
            self._drain_queue(ctx)
        elif message.msg_type == "lock-write":
            if self._can_grant_write():
                self._grant_write(message, ctx)
            else:
                self.queue.append(_PendingRequest(message=message, is_write=True))
        elif message.msg_type == "unlock-write":
            # Abort-path release (epoch retries only): drop the lock and any
            # still-queued requests of the restarting transaction, install
            # nothing.
            if self.write_locked_by == message.src:
                self.write_locked_by = None
            self._purge_queue(message.src, message.get("txn"))
            self._drain_queue(ctx)
        elif message.msg_type == "commit-write":
            if self.write_locked_by != message.src:
                raise SimulationError(
                    f"server {self.name}: commit from {message.src} which does not hold the write lock"
                )
            self.store.put(message.get("key"), message.get("value"))
            self.write_locked_by = None
            payload = {"txn": message.get("txn"), "object": self.object_id} if (
                self.directory is not None
            ) else {"txn": message.get("txn")}
            self._echo_attempt(message, payload)
            ctx.send(message.src, "commit-ack", payload, phase="commit")
            self._drain_queue(ctx)


class LockingReader(ReaderAutomaton):
    """Acquire read locks in (object, replica) order, then release."""

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)

    def _run_epoch(self, txn: ReadTransaction, ctx: Context):
        """Epoch-aware strict 2PL read: restart-on-mismatch, then release.

        Lock targets are re-read from the directory per attempt (the union
        ``C_old ∪ C_new`` while a change is joint), so a transaction crossing
        a membership change locks every live copy; an ``epoch-mismatch``
        from a retired replica releases the partial lock set and restarts.
        """
        directory = self.directory
        attempt = 0
        while True:
            attempt += 1
            check_epoch_retry_budget("read", txn.txn_id, attempt)
            values: Dict[str, Any] = {}
            granted: List[Tuple[str, str]] = []
            mismatch = False
            for object_id in sorted(txn.objects):
                if mismatch:
                    break
                for replica in directory.targets(object_id):
                    if directory.is_retired(replica):
                        # Retired (possibly already removed) between the
                        # targets snapshot and this send: the config moved.
                        mismatch = True
                        break
                    yield Send(
                        dst=replica,
                        msg_type="lock-read",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "attempt": attempt,
                        },
                        phase="lock-read",
                    )
                    replies = yield Await(
                        matcher=lambda m, t=txn.txn_id, o=object_id, a=attempt: m.msg_type
                        in ("lock-read-granted", "epoch-mismatch")
                        and m.get("txn") == t
                        and m.get("object") == o
                        and m.get("attempt") == a,
                        count=1,
                        description=f"read lock on {object_id} (epoch)",
                    )
                    if replies[0].msg_type == "epoch-mismatch":
                        mismatch = True
                        break
                    granted.append((object_id, replica))
                    if object_id not in values:
                        values[object_id] = replies[0].get("value")
            for object_id, replica in granted:
                if directory.is_retired(replica):
                    continue  # retired since its grant; nothing to release
                yield Send(
                    dst=replica,
                    msg_type="unlock-read",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="unlock",
                )
            if mismatch:
                _note_epoch_retry(txn.txn_id, attempt, directory, ctx)
                continue
            return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        if self.directory is not None:
            result = yield from self._run_epoch(txn, ctx)
            return result
        values: Dict[str, Any] = {}
        for object_id in sorted(txn.objects):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="lock-read",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="lock-read",
                )
                replies = yield Await(
                    matcher=lambda m, txn_id=txn.txn_id, obj=object_id: m.msg_type == "lock-read-granted"
                    and m.get("txn") == txn_id
                    and m.get("object") == obj,
                    count=1,
                    description=f"read lock on {object_id}",
                )
                if object_id not in values:
                    # All replicas hold the same committed value (write-all
                    # commits); the primary's grant arrives first.
                    values[object_id] = replies[0].get("value")
        for object_id in sorted(txn.objects):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="unlock-read",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="unlock",
                )
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class LockingWriter(WriterAutomaton):
    """Acquire write locks in (object, replica) order, then commit all values."""

    #: shared placement directory when built with a reconfiguration plan
    directory = None

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.z = 0

    def _run_epoch(self, txn: WriteTransaction, key: Key, ctx: Context):
        """Epoch-aware strict 2PL write: restart lock acquisition on mismatch.

        Commits go to exactly the granted replicas; a replica retired between
        its grant and the commit answers the commit with ``epoch-mismatch``,
        which counts as released (it is leaving the group and its copy is
        irrelevant from the commit of the change on).
        """
        directory = self.directory
        updates = dict(txn.updates)
        attempt = 0
        while True:
            attempt += 1
            check_epoch_retry_budget("write", txn.txn_id, attempt)
            granted: List[Tuple[str, str]] = []
            mismatch = False
            for object_id in sorted(updates):
                if mismatch:
                    break
                for replica in directory.targets(object_id):
                    if directory.is_retired(replica):
                        mismatch = True
                        break
                    yield Send(
                        dst=replica,
                        msg_type="lock-write",
                        payload={
                            "txn": txn.txn_id,
                            "object": object_id,
                            "attempt": attempt,
                        },
                        phase="lock-write",
                    )
                    replies = yield Await(
                        matcher=lambda m, t=txn.txn_id, o=object_id, a=attempt: m.msg_type
                        in ("lock-write-granted", "epoch-mismatch")
                        and m.get("txn") == t
                        and m.get("object") == o
                        and m.get("attempt") == a,
                        count=1,
                        description=f"write lock on {object_id} (epoch)",
                    )
                    if replies[0].msg_type == "epoch-mismatch":
                        mismatch = True
                        break
                    granted.append((object_id, replica))
            held = set(granted)
            if not mismatch:
                # Commit-set recheck: a change that joint-began *while we
                # were blocked in a lock queue* may have added replicas we
                # hold no lock on — committing to the grant set alone would
                # leave them permanently missing this write.  Restart so the
                # refreshed acquisition covers the live target set.
                for object_id in sorted(updates):
                    for replica in directory.targets(object_id):
                        if (object_id, replica) not in held and not directory.is_retired(replica):
                            mismatch = True
                            break
                    if mismatch:
                        break
            if mismatch:
                for object_id, replica in granted:
                    if directory.is_retired(replica):
                        continue
                    yield Send(
                        dst=replica,
                        msg_type="unlock-write",
                        payload={"txn": txn.txn_id, "object": object_id},
                        phase="unlock",
                    )
                _note_epoch_retry(txn.txn_id, attempt, directory, ctx)
                continue
            commit_set = [
                (object_id, replica)
                for object_id, replica in granted
                if not directory.is_retired(replica)
            ]
            for object_id, replica in commit_set:
                yield Send(
                    dst=replica,
                    msg_type="commit-write",
                    payload={
                        "txn": txn.txn_id,
                        "object": object_id,
                        "key": key,
                        "value": updates[object_id],
                        "attempt": attempt,
                    },
                    phase="commit",
                )
            need = len(commit_set)
            if need:
                yield Await(
                    matcher=lambda m, t=txn.txn_id, a=attempt: m.msg_type
                    in ("commit-ack", "epoch-mismatch")
                    and m.get("txn") == t
                    and m.get("attempt") == a,
                    until=lambda collected, n=need: len(collected) >= n,
                    description="commit acks (epoch)",
                )
            return WRITE_OK

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        if self.directory is not None:
            result = yield from self._run_epoch(txn, key, ctx)
            return result
        updates = dict(txn.updates)
        commit_targets = 0
        for object_id in sorted(updates):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="lock-write",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="lock-write",
                )
                yield Await(
                    matcher=lambda m, txn_id=txn.txn_id, obj=object_id: m.msg_type == "lock-write-granted"
                    and m.get("txn") == txn_id
                    and m.get("object") == obj,
                    count=1,
                    description=f"write lock on {object_id}",
                )
        for object_id in sorted(updates):
            for replica in self.placement.group(object_id):
                commit_targets += 1
                yield Send(
                    dst=replica,
                    msg_type="commit-write",
                    payload={"txn": txn.txn_id, "object": object_id, "key": key, "value": updates[object_id]},
                    phase="commit",
                )
        yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "commit-ack" and m.get("txn") == txn_id,
            count=commit_targets,
            description="commit acks",
        )
        return WRITE_OK


class LockingProtocol(Protocol):
    """Strict 2PL baseline: strictly serializable but blocking and multi-round."""

    name = "s2pl"
    description = "Strict two-phase locking baseline: S and W but neither N nor one-round reads"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "S, W, one-version; gives up N and one-round"
    claimed_read_rounds = None  # q sequential lock rounds for a q-object read
    claimed_versions = 1
    supports_reconfig = True

    def make_replica(self, config: BuildConfig, object_id: str, name: str, group):
        return LockingServer(name, object_id, config.initial_value, group=group)

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(LockingReader(reader, objects, placement))
        for writer in config.writers():
            automata.append(LockingWriter(writer, objects, placement))
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    LockingServer(replica, object_id, config.initial_value, group=group)
                )
        return automata
