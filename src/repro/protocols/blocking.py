"""Lock-based (blocking) baseline: strict two-phase locking with ordered acquisition.

The SNOW theorem says a READ transaction system must give up either the
strongest guarantees (S and W) or optimal latency (N and O).  This baseline
is the classic way real systems give up **N**: transactions take locks, and a
server that holds a conflicting lock simply *defers* its reply until the lock
is released — the reader blocks.

Design (kept deliberately textbook):

* all transactions acquire locks **in a global object order** (so the system
  is deadlock-free without a deadlock detector);
* readers take per-object read locks one at a time, collecting the value as
  each lock is granted, and release all locks after the last value arrives;
* writers take write locks one at a time, then install every value in a
  commit round, which also releases the locks and answers any deferred
  requests.

Because every transaction holds all of its locks simultaneously at some
instant between its invocation and response, executions are strictly
serializable (strict 2PL).  The price is exactly what the N- and O-checkers
report: replies can be deferred behind lock holders (not non-blocking) and a
q-object READ takes q sequential rounds (not one-round).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, ReaderAutomaton, Send, ServerAutomaton, WriterAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore, server_for_object
from ..txn.placement import Placement
from ..txn.transactions import ReadResult, ReadTransaction, WriteTransaction, WRITE_OK
from .base import BuildConfig, Protocol
from .replication import placement_or_single_copy


@dataclass
class _PendingRequest:
    message: Message
    is_write: bool


class LockingServer(ServerAutomaton):
    """Per-replica read/write locks with a FIFO queue of deferred requests.

    Replication note: each replica keeps its *own* lock table; clients take
    locks on every replica of an object (in a global ``(object, replica)``
    order, which keeps the system deadlock-free) and commits install at every
    replica, so all copies stay identical.
    """

    def __init__(
        self,
        name: str,
        object_id: str,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.initial_value = initial_value
        self.group: Tuple[str, ...] = tuple(group) if group is not None else (name,)
        self.store = VersionStore(object_id, initial_value)
        self.write_locked_by: Optional[str] = None
        self.read_lock_holders: List[str] = []
        self.queue: Deque[_PendingRequest] = deque()

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose store, locks and queued requests."""
        self.store = VersionStore(self.object_id, self.initial_value)
        self.write_locked_by = None
        self.read_lock_holders = []
        self.queue = deque()

    # ------------------------------------------------------------------
    def _can_grant_read(self) -> bool:
        return self.write_locked_by is None

    def _can_grant_write(self) -> bool:
        return self.write_locked_by is None and not self.read_lock_holders

    def _grant_read(self, message: Message, ctx: Context) -> None:
        self.read_lock_holders.append(message.src)
        version = self.store.latest()
        ctx.send(
            message.src,
            "lock-read-granted",
            {
                "txn": message.get("txn"),
                "object": self.object_id,
                "value": version.value,
                "num_versions": 1,
            },
            phase="lock-read",
        )

    def _grant_write(self, message: Message, ctx: Context) -> None:
        self.write_locked_by = message.src
        ctx.send(
            message.src,
            "lock-write-granted",
            {"txn": message.get("txn"), "object": self.object_id},
            phase="lock-write",
        )

    def _drain_queue(self, ctx: Context) -> None:
        """Grant deferred requests from the front while compatible."""
        progressed = True
        while progressed and self.queue:
            progressed = False
            head = self.queue[0]
            if head.is_write and self._can_grant_write():
                self.queue.popleft()
                self._grant_write(head.message, ctx)
                progressed = True
            elif not head.is_write and self._can_grant_read():
                self.queue.popleft()
                self._grant_read(head.message, ctx)
                progressed = True

    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "lock-read":
            if self._can_grant_read():
                self._grant_read(message, ctx)
            else:
                self.queue.append(_PendingRequest(message=message, is_write=False))
        elif message.msg_type == "unlock-read":
            if message.src in self.read_lock_holders:
                self.read_lock_holders.remove(message.src)
            self._drain_queue(ctx)
        elif message.msg_type == "lock-write":
            if self._can_grant_write():
                self._grant_write(message, ctx)
            else:
                self.queue.append(_PendingRequest(message=message, is_write=True))
        elif message.msg_type == "commit-write":
            if self.write_locked_by != message.src:
                raise SimulationError(
                    f"server {self.name}: commit from {message.src} which does not hold the write lock"
                )
            self.store.put(message.get("key"), message.get("value"))
            self.write_locked_by = None
            ctx.send(message.src, "commit-ack", {"txn": message.get("txn")}, phase="commit")
            self._drain_queue(ctx)


class LockingReader(ReaderAutomaton):
    """Acquire read locks in (object, replica) order, then release."""

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)

    def run_transaction(self, txn: ReadTransaction, ctx: Context):
        if not isinstance(txn, ReadTransaction):
            raise SimulationError(f"reader {self.name} received a non-READ transaction {txn!r}")
        values: Dict[str, Any] = {}
        for object_id in sorted(txn.objects):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="lock-read",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="lock-read",
                )
                replies = yield Await(
                    matcher=lambda m, txn_id=txn.txn_id, obj=object_id: m.msg_type == "lock-read-granted"
                    and m.get("txn") == txn_id
                    and m.get("object") == obj,
                    count=1,
                    description=f"read lock on {object_id}",
                )
                if object_id not in values:
                    # All replicas hold the same committed value (write-all
                    # commits); the primary's grant arrives first.
                    values[object_id] = replies[0].get("value")
        for object_id in sorted(txn.objects):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="unlock-read",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="unlock",
                )
        return ReadResult.from_mapping({obj: values[obj] for obj in txn.objects})


class LockingWriter(WriterAutomaton):
    """Acquire write locks in (object, replica) order, then commit all values."""

    def __init__(
        self,
        name: str,
        objects: Sequence[str],
        placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(name)
        self.objects = tuple(objects)
        self.placement = placement_or_single_copy(self.objects, placement)
        self.z = 0

    def run_transaction(self, txn: WriteTransaction, ctx: Context):
        if not isinstance(txn, WriteTransaction):
            raise SimulationError(f"writer {self.name} received a non-WRITE transaction {txn!r}")
        self.z += 1
        key = Key(self.z, self.name)
        updates = dict(txn.updates)
        commit_targets = 0
        for object_id in sorted(updates):
            for replica in self.placement.group(object_id):
                yield Send(
                    dst=replica,
                    msg_type="lock-write",
                    payload={"txn": txn.txn_id, "object": object_id},
                    phase="lock-write",
                )
                yield Await(
                    matcher=lambda m, txn_id=txn.txn_id, obj=object_id: m.msg_type == "lock-write-granted"
                    and m.get("txn") == txn_id
                    and m.get("object") == obj,
                    count=1,
                    description=f"write lock on {object_id}",
                )
        for object_id in sorted(updates):
            for replica in self.placement.group(object_id):
                commit_targets += 1
                yield Send(
                    dst=replica,
                    msg_type="commit-write",
                    payload={"txn": txn.txn_id, "object": object_id, "key": key, "value": updates[object_id]},
                    phase="commit",
                )
        yield Await(
            matcher=lambda m, txn_id=txn.txn_id: m.msg_type == "commit-ack" and m.get("txn") == txn_id,
            count=commit_targets,
            description="commit acks",
        )
        return WRITE_OK


class LockingProtocol(Protocol):
    """Strict 2PL baseline: strictly serializable but blocking and multi-round."""

    name = "s2pl"
    description = "Strict two-phase locking baseline: S and W but neither N nor one-round reads"
    requires_c2c = False
    supports_multiple_readers = True
    supports_multiple_writers = True
    claimed_properties = "S, W, one-version; gives up N and one-round"
    claimed_read_rounds = None  # q sequential lock rounds for a q-object read
    claimed_versions = 1

    def make_automata(self, config: BuildConfig) -> Sequence[Any]:
        objects = config.objects()
        placement = config.placement()
        automata: List[Any] = []
        for reader in config.readers():
            automata.append(LockingReader(reader, objects, placement))
        for writer in config.writers():
            automata.append(LockingWriter(writer, objects, placement))
        for object_id in objects:
            group = placement.group(object_id)
            for replica in group:
                automata.append(
                    LockingServer(replica, object_id, config.initial_value, group=group)
                )
        return automata
