"""Protocol registry: look protocols up by name.

The analysis harness, the benchmarks and the examples all refer to protocols
by their string names (``"algorithm-a"``, ``"algorithm-b"``, …); the registry
maps those names to fresh protocol instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .algorithm_a import AlgorithmA
from .algorithm_b import AlgorithmB
from .algorithm_c import AlgorithmC
from .base import Protocol
from .blocking import LockingProtocol
from .eiger import EigerProtocol
from .naive_snow import NaiveSnowCandidate
from .occ import OccProtocol
from .simple_rw import SimpleReadWrite

_FACTORIES: Dict[str, Callable[[], Protocol]] = {
    AlgorithmA.name: AlgorithmA,
    AlgorithmB.name: AlgorithmB,
    AlgorithmC.name: AlgorithmC,
    EigerProtocol.name: EigerProtocol,
    NaiveSnowCandidate.name: NaiveSnowCandidate,
    LockingProtocol.name: LockingProtocol,
    OccProtocol.name: OccProtocol,
    SimpleReadWrite.name: SimpleReadWrite,
}


def protocol_names() -> Tuple[str, ...]:
    """All registered protocol names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_protocol(name: str) -> Protocol:
    """A fresh instance of the named protocol."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(protocol_names())
        raise KeyError(f"unknown protocol {name!r}; known protocols: {known}") from None
    return factory()


def all_protocols() -> List[Protocol]:
    """Fresh instances of every registered protocol."""
    return [get_protocol(name) for name in protocol_names()]


def register_protocol(name: str, factory: Callable[[], Protocol]) -> None:
    """Register an external protocol implementation (used by extension tests)."""
    if name in _FACTORIES:
        raise ValueError(f"protocol name {name!r} is already registered")
    _FACTORIES[name] = factory


def bounded_snw_protocols() -> List[Protocol]:
    """The protocols of the Figure 1(b) matrix (bounded or unbounded SNW designs)."""
    return [get_protocol(name) for name in ("algorithm-a", "algorithm-b", "algorithm-c", "occ-double-collect")]
