"""Non-transactional simple reads and writes: the latency floor.

The paper defines the *optimal* latency of a READ transaction as matching the
latency of non-transactional simple reads: "complete in a single round trip
of non-blocking parallel requests to the shards that return only the
requested data" (Section 1).  This protocol is that floor made executable:
requests go straight to the servers, servers answer immediately with the
latest value, and there is no cross-object coordination whatsoever — which is
precisely why it offers no cross-shard consistency guarantee.

Operationally it is the same wire protocol as
:class:`~repro.protocols.naive_snow.NaiveSnowCandidate`; it exists as a
separately named protocol so that the latency benchmarks can report
"simple reads" as their own baseline row and so that examples can talk about
single-object accesses without implying any transactional intent.
"""

from __future__ import annotations

from .naive_snow import NaiveSnowCandidate


class SimpleReadWrite(NaiveSnowCandidate):
    """Simple (non-transactional) reads and writes — the latency baseline."""

    name = "simple-rw"
    description = "Non-transactional simple reads/writes: one round, no cross-object guarantees"
    claimed_properties = "latency floor (no cross-object consistency)"
    claimed_read_rounds = 1
    claimed_versions = 1
