"""Shared replica-aware storage machinery for the protocol implementations.

This module is the protocol-side half of the placement layer
(:mod:`repro.txn.placement`): a common storage-server automaton that serves
one *replica* of one object, plus the quorum-round helpers the client
sessions are built from.

The byte-identity contract
--------------------------
With a trivial placement (every group of size one — the paper's setting) the
helpers emit exactly the sends, payloads and await-resumption points of the
pre-placement protocols, so ``replication_factor=1`` traces are byte-for-byte
identical to the single-copy seed (pinned by ``tests/replication``).  Two
rules implement the contract:

* replies gain replica-only payload fields (``object`` on write acks, ``key``
  on latest-value replies) **only when the serving group has more than one
  member**, and the ``read-val-miss`` message type exists only in replicated
  groups (a single-copy server still fails loudly on an unknown key);
* quorum awaits use a fixed ``count`` when the placement is trivial and an
  ``until`` predicate otherwise — both resume the session on the same
  delivery when quorums are of size one.

Quorum rounds
-------------
Requests are always sent to *every* replica of a group and the session
resumes once a quorum of replies per object arrived; the surplus replies are
delivered later and ignored (clients drop unmatched messages).  Sending to
all and awaiting ``R``/``W`` is what makes the rounds fault-tolerant: a
crashed or partitioned replica simply never replies, and as long as a quorum
survives the transaction completes.  Quorum intersection (validated by the
policy) guarantees an exact-key read quorum contains at least one replica
that holds the key of any completed write.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Await, Context, Send, SendBatch, ServerAutomaton
from ..ioa.errors import SimulationError
from ..txn.objects import Key, VersionStore
from ..txn.placement import Placement, QuorumPolicy, ReadOneWriteAll


# ----------------------------------------------------------------------
# The directory-aware server behaviour (shared by every protocol family)
# ----------------------------------------------------------------------
class DirectoryAwareServer:
    """Mixin giving any storage automaton the reconfiguration wire protocol.

    Three behaviours, all dormant (zero wire bytes) until the build injects a
    shared :class:`~repro.consensus.reconfig.PlacementDirectory`:

    * **retired replicas answer ``epoch-mismatch``** — once the directory
      marks this server retired, every transaction-carrying request is
      answered with the current epoch instead of data, so the client
      refreshes its view of the groups and retries against ``C_new``;
    * **state transfer** — ``sync-req`` streams this replica's state to each
      freshly added replica (via :meth:`sync_versions`), ``sync-state``
      installs it (via :meth:`install_sync`) and reports the transfer volume
      to the driver;
    * **controller probes** — ``ctl-probe`` is answered with ``ctl-ack`` so
      the rebalancing controller can observe liveness and round-trip
      latency without touching any transaction wire.

    Subclasses whose state is not a :class:`VersionStore` named ``store``
    override the two sync hooks.
    """

    #: the shared :class:`~repro.consensus.reconfig.PlacementDirectory` when
    #: the system was built with a reconfiguration plan (injected by the
    #: build); ``None`` — the default — keeps every wire byte identical to
    #: the placement-layer seed.
    directory = None

    def _echo_attempt(self, message: Message, payload: Dict[str, Any]) -> None:
        """Echo the reconfig-aware round's attempt counter, when present.

        Epoch-retried rounds tag requests with ``attempt`` so replies of a
        superseded attempt cannot satisfy the retried round's await; without
        a directory no request ever carries the field and no reply grows it.
        """
        attempt = message.get("attempt")
        if attempt is not None:
            payload["attempt"] = attempt

    def handle_directory_message(self, message: Message, ctx: Context) -> bool:
        """Consume reconfiguration-plane messages; ``True`` when handled.

        Call first from ``on_message``; with no directory installed this is a
        single attribute check and nothing else runs.
        """
        if self.directory is None:
            return False
        if message.msg_type == "sync-req":
            self._on_sync_req(message, ctx)
            return True
        if message.msg_type == "sync-state":
            self._on_sync_state(message, ctx)
            return True
        if message.msg_type == "ctl-probe":
            ctx.send(
                message.src,
                "ctl-ack",
                {
                    "object": message.get("object"),
                    "probe": message.get("probe"),
                    "sent": message.get("sent"),
                },
                phase="controller",
            )
            return True
        if self.directory.is_retired(self.name) and message.get("txn") is not None:
            # A retired replica serves nothing: it answers every
            # transaction-carrying request with the current epoch so the
            # client refreshes its view and retries against C_new.
            payload = {
                "txn": message.get("txn"),
                "object": self.object_id,
                "epoch": self.directory.epoch,
            }
            self._echo_attempt(message, payload)
            ctx.send(message.src, "epoch-mismatch", payload, phase="reconfig")
            return True
        return False

    # -- state transfer (reconfiguration) ---------------------------------
    def sync_versions(self) -> Tuple[Any, ...]:
        """The serialisable state streamed to a freshly added replica.

        Default: the ``(key, value)`` pairs of a :class:`VersionStore` named
        ``store`` — the representation of algorithms A/B/C, the naive
        baselines and the locking baseline.  Protocol families with a
        different storage shape (OCC's latest-version registers, Eiger's
        interval versions) override this together with :meth:`install_sync`.
        """
        return tuple((v.key, v.value) for v in self.store.all_versions())

    def install_sync(self, versions: Sequence[Any]) -> int:
        """Install a retained replica's streamed state; returns the number of
        versions actually installed (the transfer volume)."""
        installed = 0
        for key, value in versions:
            if self.store.get(key) is None:
                self.store.put(key, value)
                installed += 1
        return installed

    def _on_sync_req(self, message: Message, ctx: Context) -> None:
        """Stream this replica's versions to each freshly added replica."""
        versions = self.sync_versions()
        for target in message.get("targets", ()):
            ctx.send(
                target,
                "sync-state",
                {
                    "object": self.object_id,
                    "versions": versions,
                    "reconfig": message.get("reconfig"),
                    "admin": message.get("admin"),
                },
                phase="reconfig-sync",
            )

    def _on_sync_state(self, message: Message, ctx: Context) -> None:
        """Install a retained replica's versions, then report to the driver.

        ``count`` — versions actually installed (the initial version and any
        already-present key are skipped) — is the transfer volume the
        reconfiguration metrics aggregate.
        """
        installed = self.install_sync(message.get("versions", ()))
        ctx.send(
            message.get("admin"),
            "sync-done",
            {
                "object": self.object_id,
                "count": installed,
                "reconfig": message.get("reconfig"),
            },
            phase="reconfig-sync",
        )


# ----------------------------------------------------------------------
# The shared storage-server automaton
# ----------------------------------------------------------------------
class ReplicatedStorageServer(DirectoryAwareServer, ServerAutomaton):
    """One replica of one object: a multi-version store behind the common wire.

    Handles the shared message vocabulary (``write-val``, ``read-val``,
    ``read-latest``, ``read-vals``); anything else is offered to
    :meth:`on_unhandled` for protocol-specific subclasses (the coordinator
    role of algorithms B/C lives there).

    ``group`` is the full replica group this server belongs to; a group of
    one reproduces the seed's single-copy servers exactly.
    """

    #: error hint appended when a single-copy server is asked for an unknown
    #: key (replicated servers answer ``read-val-miss`` instead of raising).
    missing_key_hint = "the requested key was never installed at this server"

    def __init__(
        self,
        name: str,
        object_id: str,
        initial_value: Any = 0,
        group: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.object_id = object_id
        self.initial_value = initial_value
        self.group: Tuple[str, ...] = tuple(group) if group is not None else (name,)
        self.store = VersionStore(object_id, initial_value)

    # ------------------------------------------------------------------
    @property
    def replicated(self) -> bool:
        return len(self.group) > 1

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose all volatile state (the store)."""
        self.store = VersionStore(self.object_id, self.initial_value)

    def _ack_payload(self, message: Message) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"txn": message.get("txn")}
        if self.replicated or self.directory is not None:
            # Per-object ack counting is what partial write quorums need;
            # single-copy acks stay field-for-field identical to the seed.
            payload["object"] = self.object_id
        self._echo_attempt(message, payload)
        return payload

    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        if self.handle_directory_message(message, ctx):
            return
        if message.msg_type == "write-val":
            self.handle_write_val(message, ctx)
        elif message.msg_type == "read-val":
            self.handle_read_val(message, ctx)
        elif message.msg_type == "read-latest":
            self.handle_read_latest(message, ctx)
        elif message.msg_type == "read-vals":
            self.handle_read_vals(message, ctx)
        else:
            self.on_unhandled(message, ctx)

    def on_unhandled(self, message: Message, ctx: Context) -> None:
        """Hook for protocol-specific message types (default: ignore)."""

    # -- writes -----------------------------------------------------------
    def handle_write_val(self, message: Message, ctx: Context) -> None:
        key: Key = message.get("key")
        self.store.put(key, message.get("value"))
        if message.get("repair"):
            # Read-repair install: a reader writing a freshest version back
            # to a stale replica.  Fire-and-forget — no ack, so repairs never
            # race a write transaction's quorum accounting.
            return
        ctx.send(message.src, "ack-write", self._ack_payload(message), phase="write-value")

    # -- reads ------------------------------------------------------------
    def handle_read_val(self, message: Message, ctx: Context) -> None:
        """Exact-key read (algorithms A and B)."""
        key: Key = message.get("key")
        version = self.store.get(key)
        if version is None:
            if not self.replicated and self.directory is None:
                raise SimulationError(
                    f"server {self.name} asked for unknown key {key!r}: {self.missing_key_hint}"
                )
            # A replica that has not (yet) installed the key: an honest miss.
            # Quorum intersection guarantees some replica in any read quorum
            # has it, so the reader treats misses as progress, not failure.
            payload: Dict[str, Any] = {
                "txn": message.get("txn"),
                "object": self.object_id,
                "num_versions": 0,
            }
            self._echo_attempt(message, payload)
            ctx.send(message.src, "read-val-miss", payload, phase="read-value")
            return
        payload = {
            "txn": message.get("txn"),
            "object": self.object_id,
            "value": version.value,
            "num_versions": 1,
        }
        self._echo_attempt(message, payload)
        ctx.send(message.src, "read-val-reply", payload, phase="read-value")

    def handle_read_latest(self, message: Message, ctx: Context) -> None:
        """Latest-value read (the naive / simple-rw wire)."""
        version = self.store.latest()
        payload: Dict[str, Any] = {
            "txn": message.get("txn"),
            "object": self.object_id,
            "value": version.value,
            "num_versions": 1,
        }
        if self.replicated or self.directory is not None:
            # The key lets readers pick the newest version across replicas.
            payload["key"] = version.key
        self._echo_attempt(message, payload)
        ctx.send(message.src, "read-latest-reply", payload, phase="read")

    def handle_read_vals(self, message: Message, ctx: Context) -> None:
        """Whole-``Vals`` read (algorithm C); subclasses may extend the payload."""
        versions = tuple((v.key, v.value) for v in self.store.all_versions())
        payload: Dict[str, Any] = {
            "txn": message.get("txn"),
            "object": self.object_id,
            "versions": versions,
            "num_versions": len(versions),
        }
        self._echo_attempt(message, payload)
        self.extend_read_vals_payload(message, payload)
        ctx.send(message.src, "read-vals-reply", payload, phase="read-values-and-tags")

    def extend_read_vals_payload(self, message: Message, payload: Dict[str, Any]) -> None:
        """Hook for coordinator piggy-backing (default: nothing)."""


# ----------------------------------------------------------------------
# Quorum round helpers (client-session side)
# ----------------------------------------------------------------------
def emit_sends(sends: Sequence[Send], batch: bool):
    """Yield a fan-out: one :class:`SendBatch` flight when batching, else the
    sends one by one.

    The single statement of the fan-out-batching contract
    (``BuildConfig.fanout_batching``): a batched fan-out's deliveries ride one
    kernel flight, so the scheduler spends one event on the whole round
    instead of one per replica.  ``batch=False`` (the default everywhere) is
    byte-identical to the plain loop.
    """
    if batch and len(sends) > 1:
        yield SendBatch(sends=tuple(sends))
        return
    for send in sends:
        yield send


def _count_by_object(messages: Sequence[Message], placement: Placement) -> Dict[str, int]:
    """Per-object message counts; acks from single-copy groups carry no
    ``object`` field, so fall back to resolving the sender's object (which
    keeps mixed-size placements — one replicated group next to a single-copy
    one — counting correctly)."""
    counts: Dict[str, int] = {}
    for message in messages:
        obj = message.get("object")
        if obj is None:
            obj = placement.object_of(message.src)
        counts[obj] = counts.get(obj, 0) + 1
    return counts


def write_quorum_await(
    txn_id: str,
    objects_written: Sequence[str],
    placement: Placement,
    policy: QuorumPolicy,
    ack_type: str = "ack-write",
    description: str = "write-value acks",
) -> Await:
    """The Await ending a write-value round.

    Trivial placement: the seed's fixed-count await (one ack per object).
    Replicated: resume once every written object has ``W`` acks.
    """
    matcher = lambda m, t=txn_id: m.msg_type == ack_type and m.get("txn") == t
    if placement.is_trivial():
        return Await(matcher=matcher, count=len(objects_written), description=description)
    needed = {
        obj: policy.write_quorum(len(placement.group(obj))) for obj in objects_written
    }

    def quorum_reached(collected: List[Message]) -> bool:
        counts = _count_by_object(collected, placement)
        return all(counts.get(obj, 0) >= need for obj, need in needed.items())

    return Await(matcher=matcher, until=quorum_reached, description=description + " (quorum)")


#: how many epoch-mismatch retries a round takes before failing loudly —
#: far above anything a single in-flight reconfiguration can cause.
MAX_EPOCH_RETRIES = 6


def _has_mismatch(collected: Sequence[Message]) -> bool:
    return any(m.msg_type == "epoch-mismatch" for m in collected)


def check_epoch_retry_budget(what: str, txn_id: str, attempts_used: int) -> None:
    """Fail loudly once a round (or transaction) restarted too often.

    One definition of the budget and its diagnostic for every epoch-aware
    retry loop — the generic round helper, the write/read rounds, Eiger's
    restartable read and the lock-based transaction restarts.
    """
    if attempts_used > MAX_EPOCH_RETRIES:
        raise SimulationError(
            f"{what} {txn_id} exhausted {MAX_EPOCH_RETRIES} epoch retries; "
            "the configuration should have stabilised long before this"
        )


def _group_counts_ok(
    collected: Sequence[Message],
    needs: Mapping[str, Tuple[Tuple[Tuple[str, ...], int], ...]],
    reply_types: Tuple[str, ...],
) -> bool:
    """Joint-quorum readiness: per object, per active configuration, at
    least the required number of ``reply_types`` replies from that group's
    members (a replica in both configs counts for both)."""
    for object_id, group_needs in needs.items():
        for group, need in group_needs:
            members = set(group)
            got = sum(
                1
                for m in collected
                if m.msg_type in reply_types
                and m.get("object") == object_id
                and m.src in members
            )
            if got < need:
                return False
    return True


def _note_epoch_retry(txn_id: str, attempt: int, directory, ctx) -> None:
    if ctx is not None:
        ctx.internal(reconfig="epoch-retry", txn=txn_id, attempt=attempt, vtime=ctx.vtime)
        directory.note_retry(txn_id, ctx.vtime)
    else:  # pragma: no cover - defensive: rounds without a ctx still retry
        directory.note_retry(txn_id, 0)


def write_value_round(
    txn_id: str,
    updates: Sequence[Tuple[str, Any]],
    key: Key,
    placement: Placement,
    policy: QuorumPolicy,
    phase: str = "write-value",
    directory=None,
    ctx=None,
    batch: bool = False,
):
    """Generator: install ``(key, value)`` at every replica, await W per object.

    Returns the collected acks (unused by the callers today, but the count is
    what quorum metrics annotate).

    With a :class:`~repro.consensus.reconfig.PlacementDirectory` the round is
    epoch-aware: requests go to ``C_old ∪ C_new`` and carry the current epoch
    plus an attempt counter, the await needs a write quorum in *every* active
    configuration, and an ``epoch-mismatch`` reply (a retired replica) makes
    the round refresh its view of the groups and start over.  Without a
    directory the round is byte-identical to the placement-layer seed.
    """
    if directory is None:
        yield from emit_sends(
            [
                Send(
                    dst=replica,
                    msg_type="write-val",
                    payload={"txn": txn_id, "object": object_id, "key": key, "value": value},
                    phase=phase,
                )
                for object_id, value in updates
                for replica in placement.group(object_id)
            ],
            batch,
        )
        acks = yield write_quorum_await(
            txn_id, [obj for obj, _ in updates], placement, policy
        )
        return acks

    attempt = 0
    while True:
        attempt += 1
        check_epoch_retry_budget("write", txn_id, attempt)
        epoch = directory.epoch
        needs = {obj: directory.write_needed(obj) for obj, _ in updates}
        yield from emit_sends(
            [
                Send(
                    dst=replica,
                    msg_type="write-val",
                    payload={
                        "txn": txn_id,
                        "object": object_id,
                        "key": key,
                        "value": value,
                        "epoch": epoch,
                        "attempt": attempt,
                    },
                    phase=phase,
                )
                for object_id, value in updates
                for replica in directory.targets(object_id)
            ],
            batch,
        )
        matcher = (
            lambda m, t=txn_id, a=attempt: m.msg_type in ("ack-write", "epoch-mismatch")
            and m.get("txn") == t
            and m.get("attempt") == a
        )
        ready = lambda collected, n=needs: _group_counts_ok(collected, n, ("ack-write",))
        acks = yield Await(
            matcher=matcher,
            until=lambda collected, r=ready: _has_mismatch(collected) or r(collected),
            description="write-value acks (epoch quorum)",
        )
        if ready(acks):
            return acks
        _note_epoch_retry(txn_id, attempt, directory, ctx)


def key_read_await(
    txn_id: str,
    read_set: Sequence[str],
    placement: Placement,
    policy: QuorumPolicy,
    description: str = "read-value replies",
) -> Await:
    """The Await ending an exact-key read round.

    Trivial placement: the seed's fixed-count await over ``read-val-reply``.
    Replicated: collect ``read-val-reply``/``read-val-miss`` until every
    object has ``R`` replies of which at least one is a hit (the hit is
    guaranteed by quorum intersection; see module docstring).
    """
    if placement.is_trivial():
        return Await(
            matcher=lambda m, t=txn_id: m.msg_type == "read-val-reply" and m.get("txn") == t,
            count=len(read_set),
            description=description,
        )
    needed = {obj: policy.read_quorum(len(placement.group(obj))) for obj in read_set}

    def quorum_reached(collected: List[Message]) -> bool:
        counts: Dict[str, int] = {}
        hits: Dict[str, int] = {}
        for m in collected:
            obj = m.get("object")
            counts[obj] = counts.get(obj, 0) + 1
            if m.msg_type == "read-val-reply":
                hits[obj] = hits.get(obj, 0) + 1
        return all(
            counts.get(obj, 0) >= need and hits.get(obj, 0) >= 1
            for obj, need in needed.items()
        )

    return Await(
        matcher=lambda m, t=txn_id: m.msg_type in ("read-val-reply", "read-val-miss")
        and m.get("txn") == t,
        until=quorum_reached,
        description=description + " (quorum)",
    )


def key_read_round(
    txn_id: str,
    chosen_keys: Mapping[str, Key],
    placement: Placement,
    policy: QuorumPolicy,
    phase: str = "read-value",
    read_repair: bool = True,
    directory=None,
    ctx=None,
    batch: bool = False,
):
    """Generator: fetch exact keys from every replica, await an R-quorum.

    Returns ``(values, replies)`` — per-object values from the first hit per
    object, plus the raw reply list (for quorum metrics).

    **Read-repair**: a ``read-val-miss`` in the collected quorum means a
    replica diverged from its group (it never installed — or, after a
    crash-with-amnesia, *forgot* — the version the metadata layer named).
    The round ends by writing the freshest version back to each such stale
    replica (a fire-and-forget ``repair`` install), restoring durability of
    the named version to the full group: after the repair even a
    ``read-one-write-all`` read served by the formerly-amnesiac replica finds
    it.  Single-copy groups never produce misses, so ``replication_factor=1``
    traces are untouched.

    With a :class:`~repro.consensus.reconfig.PlacementDirectory` the round is
    epoch-aware, exactly like :func:`write_value_round`: joint configurations
    need a read quorum per active config (plus at least one hit per object —
    guaranteed by intersection with the old group, which holds every
    completed write), and an ``epoch-mismatch`` reply restarts the round
    against the refreshed groups.
    """
    if directory is not None:
        result = yield from _epoch_key_read_round(
            txn_id, chosen_keys, directory, phase, read_repair, ctx, batch
        )
        return result
    yield from emit_sends(
        [
            Send(
                dst=replica,
                msg_type="read-val",
                payload={"txn": txn_id, "object": object_id, "key": key},
                phase=phase,
            )
            for object_id, key in chosen_keys.items()
            for replica in placement.group(object_id)
        ],
        batch,
    )
    replies = yield key_read_await(txn_id, tuple(chosen_keys), placement, policy)
    values: Dict[str, Any] = {}
    for reply in replies:
        if reply.msg_type == "read-val-reply" and reply.get("object") not in values:
            values[reply.get("object")] = reply.get("value")
    missing = [obj for obj in chosen_keys if obj not in values]
    if missing:
        raise SimulationError(
            f"read {txn_id} reached its quorum without a value for {missing!r}; "
            "quorum intersection should make this impossible"
        )
    if read_repair:
        for reply in replies:
            if reply.msg_type != "read-val-miss":
                continue
            object_id = reply.get("object")
            yield Send(
                dst=reply.src,
                msg_type="write-val",
                payload={
                    "txn": txn_id,
                    "object": object_id,
                    "key": chosen_keys[object_id],
                    "value": values[object_id],
                    "repair": True,
                },
                phase="read-repair",
            )
    return values, replies


def _epoch_key_read_round(
    txn_id: str,
    chosen_keys: Mapping[str, Key],
    directory,
    phase: str,
    read_repair: bool,
    ctx,
    batch: bool = False,
):
    """The epoch-aware body of :func:`key_read_round` (directory installed)."""
    attempt = 0
    while True:
        attempt += 1
        check_epoch_retry_budget("read", txn_id, attempt)
        epoch = directory.epoch
        needs = {obj: directory.read_needed(obj) for obj in chosen_keys}
        yield from emit_sends(
            [
                Send(
                    dst=replica,
                    msg_type="read-val",
                    payload={
                        "txn": txn_id,
                        "object": object_id,
                        "key": key,
                        "epoch": epoch,
                        "attempt": attempt,
                    },
                    phase=phase,
                )
                for object_id, key in chosen_keys.items()
                for replica in directory.targets(object_id)
            ],
            batch,
        )

        def ready(collected, n=needs):
            hits = {m.get("object") for m in collected if m.msg_type == "read-val-reply"}
            if not all(obj in hits for obj in n):
                return False  # at least one actual value per object
            return _group_counts_ok(collected, n, ("read-val-reply", "read-val-miss"))

        matcher = (
            lambda m, t=txn_id, a=attempt: m.msg_type
            in ("read-val-reply", "read-val-miss", "epoch-mismatch")
            and m.get("txn") == t
            and m.get("attempt") == a
        )
        replies = yield Await(
            matcher=matcher,
            until=lambda collected, r=ready: _has_mismatch(collected) or r(collected),
            description="read-value replies (epoch quorum)",
        )
        if not ready(replies):
            _note_epoch_retry(txn_id, attempt, directory, ctx)
            continue
        values: Dict[str, Any] = {}
        for reply in replies:
            if reply.msg_type == "read-val-reply" and reply.get("object") not in values:
                values[reply.get("object")] = reply.get("value")
        if read_repair:
            for reply in replies:
                if reply.msg_type != "read-val-miss" or directory.is_retired(reply.src):
                    continue
                object_id = reply.get("object")
                yield Send(
                    dst=reply.src,
                    msg_type="write-val",
                    payload={
                        "txn": txn_id,
                        "object": object_id,
                        "key": chosen_keys[object_id],
                        "value": values[object_id],
                        "repair": True,
                    },
                    phase="read-repair",
                )
        return values, replies


def epoch_quorum_round(
    txn_id: str,
    directory,
    ctx,
    send_factory: Callable[[int, int], List[Send]],
    reply_types: Tuple[str, ...],
    needs_factory: Callable[[], Mapping[str, Tuple[Tuple[Tuple[str, ...], int], ...]]],
    extra_ready: Optional[Callable[[List[Message]], bool]] = None,
    description: str = "replies",
    start_attempt: int = 0,
    unfiltered_types: Tuple[str, ...] = (),
    batch: bool = False,
):
    """Generator: one epoch-aware fan-out round with bounded mismatch retries.

    The shape shared by every reconfig-capable protocol round: ``send_factory
    (epoch, attempt)`` produces the round's sends (stamped with both), the
    await collects ``reply_types`` plus ``epoch-mismatch`` filtered by the
    attempt counter, and readiness is a quorum of ``reply_types`` per object
    per active configuration (``needs_factory`` re-reads the directory each
    attempt, so a retried round targets the refreshed groups) plus an
    optional ``extra_ready`` predicate (e.g. "the tag array arrived").  An
    ``epoch-mismatch`` in the collected set restarts the round; more than
    :data:`MAX_EPOCH_RETRIES` restarts fail loudly.

    ``unfiltered_types`` are additional reply types matched on the
    transaction id alone — for replies that cannot echo the attempt counter
    (a replicated coordinator's memoized ``tag-arr-reply``); they never count
    towards the per-group quorums, only towards ``extra_ready``.

    Returns ``(replies, attempt)`` — the attempt the round completed on, so
    multi-round protocols (OCC's repeated collects, Eiger's catch-up round)
    can keep their attempt counters strictly increasing across rounds and
    stale replies of an earlier round can never satisfy a later await.
    """
    attempt = start_attempt
    while True:
        attempt += 1
        check_epoch_retry_budget("round for", txn_id, attempt - start_attempt)
        epoch = directory.epoch
        needs = needs_factory()
        yield from emit_sends(tuple(send_factory(epoch, attempt)), batch)
        matcher = (
            lambda m, t=txn_id, a=attempt,
            ts=reply_types + ("epoch-mismatch",), us=unfiltered_types:
            (m.msg_type in ts and m.get("txn") == t and m.get("attempt") == a)
            or (m.msg_type in us and m.get("txn") == t)
        )

        def ready(collected, n=needs):
            if not _group_counts_ok(collected, n, reply_types):
                return False
            return extra_ready(collected) if extra_ready is not None else True

        replies = yield Await(
            matcher=matcher,
            until=lambda collected, r=ready: _has_mismatch(collected) or r(collected),
            description=description + " (epoch quorum)",
        )
        if ready(replies):
            return replies, attempt
        _note_epoch_retry(txn_id, attempt, directory, ctx)


def per_object_reply_await(
    txn_id: str,
    read_set: Sequence[str],
    placement: Placement,
    policy: QuorumPolicy,
    reply_type: str,
    description: str,
    extra_ready: Optional[Callable[[List[Message]], bool]] = None,
    extra_types: Tuple[str, ...] = (),
    extra_count: int = 0,
    force_quorum: bool = False,
) -> Await:
    """An Await for one reply round fanned out over replica groups.

    Trivial placement: fixed count ``len(read_set) + extra_count`` over
    ``reply_type`` plus ``extra_types`` (matching the seed's awaits exactly).
    Replicated — or whenever ``force_quorum`` is set (a replicated
    *coordinator* also makes reply counts variable, even over single-copy
    storage): until every object has ``R`` replies of ``reply_type`` and
    ``extra_ready`` (if given) is satisfied — used by algorithm C to also
    require the coordinator's tag array, and by Eiger's first round.
    """
    types = (reply_type,) + tuple(extra_types)
    matcher = lambda m, t=txn_id, ts=types: m.msg_type in ts and m.get("txn") == t
    if placement.is_trivial() and not force_quorum:
        return Await(
            matcher=matcher, count=len(read_set) + extra_count, description=description
        )
    needed = {obj: policy.read_quorum(len(placement.group(obj))) for obj in read_set}

    def quorum_reached(collected: List[Message]) -> bool:
        counts: Dict[str, int] = {}
        for m in collected:
            if m.msg_type == reply_type:
                obj = m.get("object")
                counts[obj] = counts.get(obj, 0) + 1
        if not all(counts.get(obj, 0) >= need for obj, need in needed.items()):
            return False
        return extra_ready(collected) if extra_ready is not None else True

    return Await(matcher=matcher, until=quorum_reached, description=description + " (quorum)")


def default_policy() -> QuorumPolicy:
    """The policy protocols fall back to when none is supplied."""
    return ReadOneWriteAll()


def placement_or_single_copy(
    objects: Sequence[str], placement: Optional[Placement]
) -> Placement:
    """The placement protocols fall back to: the paper's single-copy map.

    Every client automaton takes an optional ``placement`` so direct
    construction (unit tests, proofs) keeps working without one; this is the
    single statement of that default.
    """
    return placement if placement is not None else Placement.single_copy(objects)
