"""Protocol implementations: the paper's algorithms A, B, C plus baselines."""

from .algorithm_a import AlgorithmA, AlgorithmAReader, AlgorithmAServer, AlgorithmAWriter
from .algorithm_b import AlgorithmB, AlgorithmBReader
from .algorithm_c import AlgorithmC, AlgorithmCReader
from .base import BuildConfig, Protocol, SystemHandle, reader_names, writer_names
from .blocking import LockingProtocol, LockingReader, LockingServer, LockingWriter
from .coordinated import CoordinatedServer, CoordinatedWriter, coordinator_name
from .eiger import EigerProtocol, EigerReader, EigerServer, EigerVersion, EigerWriter
from .naive_snow import NaiveReader, NaiveServer, NaiveSnowCandidate, NaiveWriter
from .occ import OccProtocol, OccReader, OccServer, OccWriter
from .replication import (
    ReplicatedStorageServer,
    emit_sends,
    key_read_round,
    per_object_reply_await,
    write_value_round,
)
from .registry import (
    all_protocols,
    bounded_snw_protocols,
    get_protocol,
    protocol_names,
    register_protocol,
)
from .simple_rw import SimpleReadWrite

__all__ = [
    "AlgorithmA",
    "AlgorithmAReader",
    "AlgorithmAServer",
    "AlgorithmAWriter",
    "AlgorithmB",
    "AlgorithmBReader",
    "AlgorithmC",
    "AlgorithmCReader",
    "BuildConfig",
    "Protocol",
    "SystemHandle",
    "reader_names",
    "writer_names",
    "LockingProtocol",
    "LockingReader",
    "LockingServer",
    "LockingWriter",
    "CoordinatedServer",
    "CoordinatedWriter",
    "coordinator_name",
    "EigerProtocol",
    "EigerReader",
    "EigerServer",
    "EigerVersion",
    "EigerWriter",
    "NaiveReader",
    "NaiveServer",
    "NaiveSnowCandidate",
    "NaiveWriter",
    "OccProtocol",
    "OccReader",
    "OccServer",
    "OccWriter",
    "ReplicatedStorageServer",
    "emit_sends",
    "key_read_round",
    "per_object_reply_await",
    "write_value_round",
    "all_protocols",
    "bounded_snw_protocols",
    "get_protocol",
    "protocol_names",
    "register_protocol",
    "SimpleReadWrite",
]
