"""Automated rebalancing: derive membership changes from observed state.

The :class:`~repro.consensus.reconfig.ReconfigDriver` executes *declarative*
plans — someone still has to notice that a replica died and author the
replacement.  This module closes that loop (ROADMAP: "Automated
rebalancing"): a :class:`ReconfigController` automaton probes every storage
replica on a virtual-time cadence and *derives* :class:`ReconfigRequest`\\ s
from what it observes, feeding them to the driver over the ordinary message
plane (``reconfig-submit``).  Two rules are implemented:

* **replace-dead** — a replica is declared fail-stopped once **every** live
  sibling of its group has answered probes ``fail_after`` ticks newer than
  anything it answered; the controller submits a change swapping it for a
  freshly named replica (``sx.3`` → ``sx.4``), restoring the group to full
  strength.  Detection is *relative* (siblings as unanimous witnesses)
  rather than a wall-clock timeout: virtual time advances per delivered
  event, so under load every ack lags equally, and requiring the whole
  sibling set to complete ``fail_after`` newer probe round-trips makes a
  single starved message (the random schedulers guarantee no fairness)
  very unlikely to masquerade as a failure.  False positives remain
  *possible* — perfect failure detection under asynchrony is impossible —
  and are safe by construction: replacing a live replica is just an
  ordinary joint-consensus change, and the victim is state-synced away
  like any retired member;
* **grow-on-latency** — when the read-quorum probe round-trip of a group
  (the R-th fastest ack) exceeds ``latency_bound`` for ``fail_after``
  consecutive windows, the group is grown by one replica (up to
  ``grow_limit``), the "replicas absorb stragglers" lever.

Everything is deterministic: probes ride kernel virtual-time timeouts, all
observation state lives in the controller, and the probing horizon is
bounded (``max_ticks``) so runs still quiesce.  The controller never touches
the safety machinery — derived changes travel through the same
joint-consensus driver (and the same at-most-one-in-flight rule) as
hand-authored plans, so every safety invariant of the reconfiguration layer
applies verbatim to autonomous changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Automaton, Context
from ..txn.placement import next_replica_names
from .reconfig import ADMIN_NAME, REPLICA_GROUP, PlacementDirectory

#: The controller automaton's well-known name.
CONTROLLER_NAME = "reconfig-controller"


@dataclass(frozen=True)
class ControllerPolicy:
    """The knobs of the rebalancing control loop.

    ``probe_interval`` is the virtual-time cadence of liveness probes;
    ``fail_after`` the number of consecutive unanswered windows before a
    replica is declared fail-stopped (and the breach streak the latency rule
    requires); ``max_ticks`` bounds the probing horizon so runs quiesce.
    ``latency_bound`` (virtual-time steps; ``None`` disables the rule) is
    the read-quorum probe round-trip above which a group is grown, up to
    ``grow_limit`` members.  ``max_actions`` is a safety valve on the number
    of derived changes per run.

    ``use_health`` (default off, golden-pinned) lets the controller consume
    the observability plane's :class:`~repro.obs.health.HealthView` as a
    corroborating detector input: a suspect whose health score is at or
    below ``health_floor`` (staleness-derived, on the virtual clock) is
    declared dead after **one** suspect evaluation instead of the usual two
    — the probe verdict and the passive health signal are independent
    witnesses, so requiring both replaces the second probe window.  It
    needs a built system whose plane has health enabled
    (``obs=ObservabilityPlane(health=True)``).
    """

    probe_interval: int = 20
    fail_after: int = 3
    max_ticks: int = 24
    latency_bound: Optional[int] = None
    grow_limit: int = 5
    max_actions: int = 4
    use_health: bool = False
    health_floor: float = 0.25

    def __post_init__(self) -> None:
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.fail_after < 1:
            raise ValueError("fail_after must be >= 1")
        if self.max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")
        if not (0.0 <= self.health_floor <= 1.0):
            raise ValueError("health_floor must be in [0, 1]")

    def describe(self) -> str:
        rules = ["replace-dead"]
        if self.latency_bound is not None:
            rules.append(f"grow>{self.latency_bound}")
        if self.use_health:
            rules.append(f"health<={self.health_floor}")
        return (
            f"controller(every {self.probe_interval}, fail_after={self.fail_after}, "
            f"{'+'.join(rules)})"
        )


class ReconfigController(Automaton):
    """The control-loop automaton: observe → derive → submit.

    Neither client nor server (``kind="admin"``, like the driver): it owns no
    transactions and serves no objects.  Each probe tick it

    1. evaluates the acks of earlier probes (detection),
    2. derives at most one change per object (replace-dead before
       grow-on-latency) and submits it to the driver, and
    3. fans out the next round of ``ctl-probe`` messages.

    The shared directory is read-only from here — all mutation goes through
    the driver so the at-most-one-in-flight rule keeps holding.
    """

    kind = "admin"

    def __init__(
        self,
        policy: ControllerPolicy,
        directory: PlacementDirectory,
        name: str = CONTROLLER_NAME,
        health: Optional[Any] = None,
    ) -> None:
        super().__init__(name)
        self.policy = policy
        self.directory = directory
        #: optional :class:`~repro.obs.health.HealthView` corroboration
        #: input (only wired when ``policy.use_health``; None is the
        #: golden-pinned probe-only behaviour)
        self._health = health if policy.use_health else None
        #: replica -> tick of its first probe / newest probe tick it acked,
        #: plus the vtime of its most recent ack (reported in diagnostics)
        self._first_probed_tick: Dict[str, int] = {}
        self._last_ack_tick: Dict[str, int] = {}
        self._last_ack: Dict[str, int] = {}
        #: (tick, object) -> ack round-trips (virtual-time steps)
        self._rtts: Dict[Tuple[int, str], List[int]] = {}
        #: object -> consecutive latency-bound breaches
        self._breaches: Dict[str, int] = {}
        #: replica -> consecutive evaluations the dead rule held (a verdict
        #: needs two in a row: a merely starved ack lands within a window,
        #: a fail-stopped replica stays suspect forever)
        self._suspect: Dict[str, int] = {}
        #: object -> newest probe tick already latency-evaluated
        self._eval_tick: Dict[str, int] = {}
        #: object -> the group a submitted change is moving it to
        self._pending: Dict[str, Tuple[str, ...]] = {}
        #: replicas already declared dead (never re-reported)
        self._dead: Set[str] = set()
        #: names this controller has minted, per object (so replacements
        #: never collide with names a concurrent plan used)
        self._minted: Dict[str, Set[str]] = {}
        self._actions = 0
        self._acks = 0
        self._probes = 0

    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        ctx.set_timeout(self.policy.probe_interval, tick=1)

    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type != "ctl-ack":
            return
        self._acks += 1
        tick = int(message.get("probe", 0))
        self._last_ack[message.src] = ctx.vtime
        self._last_ack_tick[message.src] = max(
            self._last_ack_tick.get(message.src, 0), tick
        )
        rtt = max(0, ctx.vtime - int(message.get("sent", ctx.vtime)))
        self._rtts.setdefault((tick, str(message.get("object", ""))), []).append(rtt)

    def on_timeout(self, info: Mapping[str, Any], ctx: Context) -> None:
        tick = int(info["tick"])
        self._note_healed(ctx)
        self._detect_and_derive(tick, ctx)
        if tick > self.policy.max_ticks:
            ctx.internal(controller="stopped", tick=tick, vtime=ctx.vtime)
            return
        probes = self._send_probes(tick, ctx)
        ctx.internal(
            controller="tick",
            tick=tick,
            probes=probes,
            acks=self._acks,
            vtime=ctx.vtime,
        )
        ctx.set_timeout(self.policy.probe_interval, tick=tick + 1)

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------
    def _send_probes(self, tick: int, ctx: Context) -> int:
        sent = 0
        for object_id in self.directory.placement.objects():
            for replica in self.directory.targets(object_id):
                if self.directory.is_retired(replica) or replica in self._dead:
                    continue
                self._first_probed_tick.setdefault(replica, tick)
                ctx.send(
                    replica,
                    "ctl-probe",
                    {"object": object_id, "probe": tick, "sent": ctx.vtime},
                    phase="controller",
                )
                sent += 1
        self._probes += sent
        return sent

    def _is_dead(self, replica: str, group) -> bool:
        """Relative detection: *every* live sibling has answered probes
        ``fail_after`` ticks newer than anything this replica answered."""
        first = self._first_probed_tick.get(replica)
        if first is None:
            return False
        mine = self._last_ack_tick.get(replica, first - 1)
        witnesses = [
            self._last_ack_tick.get(m, -1)
            for m in group
            if m != replica and m not in self._dead
        ]
        if not witnesses:
            return False  # no live witness left to testify
        return min(witnesses) - mine >= self.policy.fail_after

    # ------------------------------------------------------------------
    # Derive
    # ------------------------------------------------------------------
    def _taken_names(self, object_id: str) -> Tuple[str, ...]:
        minted = self._minted.setdefault(object_id, set())
        return tuple(
            sorted(
                set(self.directory.targets(object_id))
                | self.directory.retired
                | minted
            )
        )

    def _may_act(self, object_id: str) -> bool:
        return (
            not self.directory.in_flight()
            and object_id not in self._pending
            and self._actions < self.policy.max_actions
        )

    def _submit(self, object_id: str, new_group: Tuple[str, ...], ctx: Context) -> None:
        self._actions += 1
        self._pending[object_id] = new_group
        ctx.send(
            ADMIN_NAME,
            "reconfig-submit",
            {"kind": REPLICA_GROUP, "object": object_id, "group": new_group},
            phase="controller",
        )

    def _detect_and_derive(self, tick: int, ctx: Context) -> None:
        now = ctx.vtime
        for object_id in self.directory.placement.objects():
            group = self.directory.group(object_id)
            dead = []
            for m in group:
                if m in self._dead:
                    continue
                if self._is_dead(m, group):
                    self._suspect[m] = self._suspect.get(m, 0) + 1
                    # A probe verdict normally needs two consecutive windows
                    # (a starved ack recovers within one).  A corroborating
                    # health signal — the replica's passive activity score
                    # collapsed too — stands in for the second window.
                    needed = 2
                    if (
                        self._health is not None
                        and self._health.replica_health(m) <= self.policy.health_floor
                    ):
                        needed = 1
                    if self._suspect[m] >= needed:
                        dead.append(m)
                else:
                    self._suspect.pop(m, None)
            for replica in dead:
                self._dead.add(replica)
                ctx.internal(
                    controller="replica-dead",
                    replica=replica,
                    object=object_id,
                    last_ack=self._last_ack.get(replica, -1),
                    vtime=now,
                )
            # Protected names (the designated coordinator at cf=1) are never
            # replaced by a derived change — the role does not migrate, and a
            # dead coordinator stalls the system with or without its replica.
            gone = tuple(
                m
                for m in group
                if m in self._dead and m not in self.directory.protected
            )
            if gone and self._may_act(object_id):
                replacements = next_replica_names(
                    object_id, self._taken_names(object_id), count=len(gone)
                )
                self._minted[object_id].update(replacements)
                new_group = tuple(m for m in group if m not in gone) + replacements
                ctx.internal(
                    controller="plan-replace",
                    object=object_id,
                    dead=",".join(gone),
                    group=",".join(new_group),
                    vtime=now,
                )
                self._submit(object_id, new_group, ctx)
                continue
            self._check_latency(tick, object_id, group, ctx)

    def _check_latency(self, tick: int, object_id: str, group, ctx: Context) -> None:
        if self.policy.latency_bound is None:
            return
        # Evaluate the newest past tick whose probes have a quorum of acks —
        # under a slow network the acks of a tick can lag more than one
        # window, so "the previous tick" would chronically be empty.
        need = self.directory.read_needed(object_id)[0][1]
        done = [
            t
            for t in range(self._eval_tick.get(object_id, 0) + 1, tick)
            if len(self._rtts.get((t, object_id), ())) >= need
        ]
        if not done:
            return  # no fresh evidence; quorum liveness is the dead rule's business
        newest = max(done)
        self._eval_tick[object_id] = newest
        quorum_rtt = sorted(self._rtts[(newest, object_id)])[need - 1]
        if quorum_rtt > self.policy.latency_bound:
            self._breaches[object_id] = self._breaches.get(object_id, 0) + 1
        else:
            self._breaches[object_id] = 0
            return
        if (
            self._breaches[object_id] >= self.policy.fail_after
            and len(group) < self.policy.grow_limit
            and self._may_act(object_id)
        ):
            added = next_replica_names(object_id, self._taken_names(object_id))
            self._minted[object_id].update(added)
            new_group = tuple(group) + added
            self._breaches[object_id] = 0
            ctx.internal(
                controller="plan-grow",
                object=object_id,
                quorum_rtt=quorum_rtt,
                group=",".join(new_group),
                vtime=ctx.vtime,
            )
            self._submit(object_id, new_group, ctx)

    def _note_healed(self, ctx: Context) -> None:
        for object_id, target in tuple(self._pending.items()):
            if self.directory.group(object_id) == target and not self.directory.in_flight():
                del self._pending[object_id]
                ctx.internal(
                    controller="healed",
                    object=object_id,
                    group=",".join(target),
                    vtime=ctx.vtime,
                )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.policy.describe()}, actions={self._actions}, "
            f"dead={sorted(self._dead)}, pending={sorted(self._pending)}"
        )
