"""Membership reconfiguration: joint-consensus changes of live groups.

The placement layer fixed every object's replica group and the consensus
layer fixed the coordinator group at build time; replacing a dead replica or
growing a hot group therefore meant tearing the system down.  This module
makes membership change a *first-class mid-run event* with the safety shape
of Raft's joint consensus:

* a :class:`ReconfigRequest` names a target configuration ``C_new`` for one
  replica group (or for the consensus group) and a virtual time at which to
  start it;
* between the start and the commit the system operates under the **joint
  configuration** ``C_old,new``: every read/write quorum must be satisfied
  in *both* the old and the new group, so any quorum taken during the
  transition intersects any quorum of either epoch — no split-brain window
  exists at any instant;
* the change *commits* only once every added replica has synced the object's
  versions from a retained replica (the measured **transfer volume**), after
  which the retired members answer every transaction-carrying request with
  ``epoch-mismatch`` until the kernel removes them.

Epoch semantics
---------------
The shared :class:`PlacementDirectory` is the single mutable source of truth
for "who serves what right now".  Every transition bumps its ``epoch``
(joint entry and commit each count one); clients stamp requests with the
epoch and retry a round from scratch when a reply shows the configuration
moved under them (``epoch-mismatch``).  At most one configuration change may
be in flight at a time — :meth:`PlacementDirectory.begin_joint` enforces it,
and the trace invariant checker re-checks it on every run.

Determinism and byte-identity
-----------------------------
All reconfiguration activity is driven by kernel virtual-time timeouts and
ordinary messages, so runs remain exactly replayable per seed.  With no
:class:`ReconfigPlan` installed (the default) nothing here is instantiated:
no directory, no driver, no extra payload fields — runs are byte-identical
to the seed, pinned by the golden-signature tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Automaton, Context
from ..ioa.errors import SimulationError
from ..txn.placement import Placement, QuorumPolicy

#: The driver automaton's well-known name.
ADMIN_NAME = "reconfig-admin"

#: Kinds of membership change a request may ask for.
REPLICA_GROUP = "replica-group"
CONSENSUS_GROUP = "consensus-group"

#: How long (virtual time) a retired automaton keeps answering
#: ``epoch-mismatch`` before the driver removes it from the kernel.
DEFAULT_DRAIN = 16


# ----------------------------------------------------------------------
# Requests and plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReconfigRequest:
    """One membership change: move a group to ``C_new`` at virtual time ``at``."""

    kind: str
    group: Tuple[str, ...]
    object_id: str = ""
    at: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(self.group))
        if self.kind not in (REPLICA_GROUP, CONSENSUS_GROUP):
            raise ValueError(f"unknown reconfiguration kind {self.kind!r}")
        if not self.group:
            raise ValueError("a reconfiguration needs a non-empty target group")
        if len(set(self.group)) != len(self.group):
            raise ValueError(f"target group has duplicate members: {self.group}")
        if self.kind == REPLICA_GROUP and not self.object_id:
            raise ValueError("a replica-group reconfiguration names its object")
        if self.at < 0:
            raise ValueError("reconfiguration time must be >= 0")

    def describe(self) -> str:
        what = self.object_id if self.kind == REPLICA_GROUP else "consensus"
        return f"reconfig({what} -> [{','.join(self.group)}] @ {self.at})"


def set_replica_group(object_id: str, group: Sequence[str], at: int = 0) -> ReconfigRequest:
    """Move ``object_id``'s replica group to ``group`` at virtual time ``at``."""
    return ReconfigRequest(kind=REPLICA_GROUP, group=tuple(group), object_id=object_id, at=at)


def set_consensus_group(group: Sequence[str], at: int = 0) -> ReconfigRequest:
    """Move the replicated-coordinator group to ``group`` at time ``at``."""
    return ReconfigRequest(kind=CONSENSUS_GROUP, group=tuple(group), at=at)


@dataclass(frozen=True)
class ReconfigPlan:
    """A named schedule of membership changes for one run."""

    name: str = ""
    requests: Tuple[ReconfigRequest, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))

    def describe(self) -> str:
        if not self.requests:
            return f"{self.name or 'reconfig'}: none"
        return f"{self.name or 'reconfig'}: " + ", ".join(r.describe() for r in self.requests)


# ----------------------------------------------------------------------
# The shared placement directory (versioned epochs)
# ----------------------------------------------------------------------
class PlacementDirectory:
    """The live, epoch-versioned view of every group's membership.

    One instance is shared (by reference) between the clients, the storage
    replicas, the consensus members and the :class:`ReconfigDriver` of a
    built system; all mutation happens inside driver/consensus handler
    activations — single scheduled events — so determinism is preserved.

    ``epoch`` counts configuration transitions (a joint entry and its commit
    each bump it).  While a joint configuration is in flight the quorum
    helpers (:meth:`read_needed` / :meth:`write_needed`) demand quorums in
    *both* the old and the new group — the joint-consensus overlap rule.
    """

    def __init__(
        self,
        placement: Placement,
        policy: QuorumPolicy,
        consensus_group: Sequence[str] = (),
    ) -> None:
        self.placement = placement
        self.policy = policy
        self.epoch = 0
        #: object -> (old_group, new_group) while its change is in flight
        self.joint: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
        self._consensus_group: Tuple[str, ...] = tuple(consensus_group)
        self.consensus_joint: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None
        self.retired: Set[str] = set()
        #: names no *derived* change may retire (the designated coordinator
        #: at consensus_factor=1 — its role does not migrate, so replacing
        #: it would strand every coordinator round; populated by the build)
        self.protected: Set[str] = set()
        #: transition records (kind/object/epoch/vtime/old/new) for metrics
        #: and the cross-epoch invariant checks
        self.transitions: List[Dict[str, Any]] = []
        #: (object, versions) per completed state transfer
        self.transfers: List[Tuple[str, int]] = []
        #: (txn, vtime) per epoch-mismatch retry a client had to take
        self.retries: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def group(self, object_id: str) -> Tuple[str, ...]:
        """The object's *target* group: ``C_new`` while joint, else current."""
        if object_id in self.joint:
            return self.joint[object_id][1]
        return self.placement.group(object_id)

    def targets(self, object_id: str) -> Tuple[str, ...]:
        """Everyone a round must address: ``C_old ∪ C_new`` while joint."""
        if object_id in self.joint:
            old, new = self.joint[object_id]
            return old + tuple(s for s in new if s not in old)
        return self.placement.group(object_id)

    def read_needed(self, object_id: str) -> Tuple[Tuple[Tuple[str, ...], int], ...]:
        """``((group, R), …)`` — one requirement per active configuration."""
        if object_id in self.joint:
            old, new = self.joint[object_id]
            return (
                (old, self.policy.read_quorum(len(old))),
                (new, self.policy.read_quorum(len(new))),
            )
        group = self.placement.group(object_id)
        return ((group, self.policy.read_quorum(len(group))),)

    def write_needed(self, object_id: str) -> Tuple[Tuple[Tuple[str, ...], int], ...]:
        """``((group, W), …)`` — one requirement per active configuration."""
        if object_id in self.joint:
            old, new = self.joint[object_id]
            return (
                (old, self.policy.write_quorum(len(old))),
                (new, self.policy.write_quorum(len(new))),
            )
        group = self.placement.group(object_id)
        return ((group, self.policy.write_quorum(len(group))),)

    def consensus_group(self) -> Tuple[str, ...]:
        return self._consensus_group

    def coordinator_targets(self) -> Tuple[str, ...]:
        """Everyone coordinator requests must be broadcast to right now."""
        if self.consensus_joint is not None:
            old, new = self.consensus_joint
            return old + tuple(m for m in new if m not in old)
        return self._consensus_group

    def is_retired(self, name: str) -> bool:
        return name in self.retired

    def in_flight(self) -> bool:
        """Whether any configuration change is currently joint."""
        return bool(self.joint) or self.consensus_joint is not None

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _require_idle(self) -> None:
        if self.in_flight():
            raise SimulationError(
                "at most one configuration change may be in flight; "
                "the previous joint configuration has not committed yet"
            )

    def begin_joint(self, object_id: str, new_group: Sequence[str], vtime: int = 0) -> None:
        """Enter ``C_old,new`` for one object's replica group."""
        self._require_idle()
        old = self.placement.group(object_id)
        new = tuple(new_group)
        self.policy.validate(len(new))
        self.epoch += 1
        # A name re-added by this change stops being retired: the rejoining
        # replica serves again (and re-syncs) instead of answering
        # epoch-mismatch forever.
        self.retired.difference_update(new)
        self.joint[object_id] = (old, new)
        self.transitions.append(
            {
                "kind": "joint-begin",
                "object": object_id,
                "epoch": self.epoch,
                "vtime": vtime,
                "old": old,
                "new": new,
            }
        )

    def commit_joint(self, object_id: str, vtime: int = 0) -> Tuple[str, ...]:
        """Commit ``C_new`` for the object; returns the retired replicas."""
        try:
            old, new = self.joint.pop(object_id)
        except KeyError:
            raise SimulationError(
                f"no joint configuration in flight for object {object_id!r}"
            ) from None
        removed = tuple(s for s in old if s not in new)
        self.retired.update(removed)
        self.placement = self.placement.with_group(object_id, new)
        self.epoch += 1
        self.transitions.append(
            {
                "kind": "commit",
                "object": object_id,
                "epoch": self.epoch,
                "vtime": vtime,
                "old": old,
                "new": new,
            }
        )
        return removed

    def begin_consensus_joint(self, new_group: Sequence[str], vtime: int = 0) -> None:
        """Enter ``C_old,new`` for the consensus group."""
        self._require_idle()
        if not self._consensus_group:
            raise SimulationError(
                "no consensus group to reconfigure (consensus_factor=1 has no members)"
            )
        old = self._consensus_group
        new = tuple(new_group)
        self.epoch += 1
        self.retired.difference_update(new)
        self.consensus_joint = (old, new)
        self.transitions.append(
            {
                "kind": "joint-begin",
                "object": "",
                "epoch": self.epoch,
                "vtime": vtime,
                "old": old,
                "new": new,
            }
        )

    def commit_consensus_joint(self, vtime: int = 0) -> Tuple[str, ...]:
        """Commit the consensus group's ``C_new``; returns retired members."""
        if self.consensus_joint is None:
            raise SimulationError("no consensus joint configuration in flight")
        old, new = self.consensus_joint
        self.consensus_joint = None
        removed = tuple(m for m in old if m not in new)
        self.retired.update(removed)
        self._consensus_group = new
        self.epoch += 1
        self.transitions.append(
            {
                "kind": "commit",
                "object": "",
                "epoch": self.epoch,
                "vtime": vtime,
                "old": old,
                "new": new,
            }
        )
        return removed

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def record_transfer(self, object_id: str, versions: int) -> None:
        self.transfers.append((object_id, int(versions)))

    def note_retry(self, txn_id: Any, vtime: int) -> None:
        self.retries.append((str(txn_id), int(vtime)))

    def transfer_volume(self) -> int:
        return sum(count for _, count in self.transfers)

    def describe(self) -> str:
        joint = "; ".join(
            f"{obj or 'consensus'}: [{','.join(old)}] -> [{','.join(new)}]"
            for obj, (old, new) in (
                list(self.joint.items())
                + ([("", self.consensus_joint)] if self.consensus_joint else [])
            )
        )
        return (
            f"PlacementDirectory(epoch={self.epoch}, "
            f"{self.placement.describe()}"
            + (f", joint: {joint}" if joint else "")
            + (f", retired: {sorted(self.retired)}" if self.retired else "")
            + ")"
        )


# ----------------------------------------------------------------------
# The driver automaton
# ----------------------------------------------------------------------
class ReconfigDriver(Automaton):
    """The membership-change admin: executes a :class:`ReconfigPlan` mid-run.

    The driver is neither a client nor a server (``kind="admin"``): it owns
    no transactions and serves no objects; it arms one kernel timeout per
    scheduled request and runs the change as ordinary messages:

    1. **spawn** — added replicas / consensus members are registered on the
       kernel (their START action lands mid-trace);
    2. **joint** — the directory enters ``C_old,new``; every client round
       from here on needs quorums in both configurations;
    3. **sync** — a retained replica streams its versions to each added
       replica (``sync-req`` → ``sync-state`` → ``sync-done``); consensus
       members instead catch up through the leader's ordinary log replication
       (a consensus change commits via the replicated ``C_old,new``/``C_new``
       log entries, and the leader reports ``cns-reconfig-done``).  When the
       leader's log has been **compacted** (:mod:`repro.persist`
       checkpointing), an added member whose next needed entry falls below
       ``snapshot_index`` is brought up by a ``cns-snapshot`` message — the
       state-machine snapshot plus the retained log suffix — instead of
       full history, so state transfer stays bounded on long runs;
    4. **commit** — the directory flips to ``C_new``; replicas that left the
       group are marked retired (they answer ``epoch-mismatch`` from now on)
       and are removed from the kernel after a drain window.

    Requests that fire while another change is in flight are deferred — the
    at-most-one-config-in-flight rule — by re-arming their timer.

    Besides the build-time plan, the driver accepts **dynamically submitted**
    requests mid-run: a ``reconfig-submit`` message (from the rebalancing
    controller, :mod:`repro.consensus.controller`) appends the carried
    request to the executed list and schedules it immediately, through
    exactly the same joint-consensus state machine as planned changes.
    """

    kind = "admin"

    def __init__(
        self,
        plan: ReconfigPlan,
        directory: PlacementDirectory,
        replica_factory: Optional[Callable[[str, str, Tuple[str, ...]], Automaton]] = None,
        consensus_member_factory: Optional[Callable[[str, Tuple[str, ...]], Automaton]] = None,
        name: str = ADMIN_NAME,
        drain: int = DEFAULT_DRAIN,
    ) -> None:
        super().__init__(name)
        self.plan = plan
        #: every request this driver executes: the plan's, plus any submitted
        #: mid-run via ``reconfig-submit`` (indices are stable — timers and
        #: sync bookkeeping refer to positions in this list)
        self.requests: List[ReconfigRequest] = list(plan.requests)
        self.directory = directory
        self.replica_factory = replica_factory
        self.consensus_member_factory = consensus_member_factory
        self.drain = max(1, int(drain))
        self._active: Optional[int] = None
        self._done: Set[int] = set()
        self._awaiting_sync: Dict[int, Set[str]] = {}
        # state-transfer source rotation: candidates per request, and the
        # attempt counter driving failover to the next source on timeout
        self._sync_candidates: Dict[int, Tuple[str, ...]] = {}
        self._sync_attempt: Dict[int, int] = {}
        #: consensus-change retransmission counter (the storage path's sync
        #: rotation analogue: the request is re-broadcast until done arrives)
        self._cns_attempt: Dict[int, int] = {}
        #: set when a change parked for good (every sync source unreachable);
        #: later scheduled requests are then skipped instead of deferred
        self._abandoned = False
        self._retire_attempts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def on_start(self, ctx: Context) -> None:
        for index, request in enumerate(self.requests):
            self._validate(request)
            ctx.set_timeout(max(1, request.at), reconfig=index)

    def _validate(self, request: ReconfigRequest) -> None:
        if request.kind == REPLICA_GROUP:
            if request.object_id not in self.directory.placement.objects():
                raise SimulationError(
                    f"reconfiguration names unplaced object {request.object_id!r}"
                )
            if self.replica_factory is None:
                raise SimulationError(
                    "this system was built without a replica factory; "
                    "the protocol does not support replica-group reconfiguration"
                )
        else:
            if self.consensus_member_factory is None:
                raise SimulationError(
                    "this system was built without a consensus member factory; "
                    "consensus-group reconfiguration needs consensus_factor >= 2"
                )

    # ------------------------------------------------------------------
    def on_timeout(self, info: Mapping[str, Any], ctx: Context) -> None:
        if "retire" in info:
            self._try_retire(str(info["retire"]), ctx)
            return
        if "sync" in info:
            self._on_sync_timeout(int(info["sync"]), int(info["attempt"]), ctx)
            return
        if "cns" in info:
            self._on_cns_timeout(int(info["cns"]), int(info["attempt"]), ctx)
            return
        index = int(info["reconfig"])
        if index in self._done or index == self._active:
            return
        if self._active is not None:
            if self._abandoned:
                # The in-flight change parked for good (no reachable sync
                # source); skip instead of deferring forever.
                ctx.internal(reconfig="skipped", request=index, vtime=ctx.vtime)
                self._done.add(index)
                return
            # One change at a time: defer behind the in-flight one.
            ctx.set_timeout(self.drain, reconfig=index)
            return
        request = self.requests[index]
        if request.kind == REPLICA_GROUP:
            self._start_storage(index, request, ctx)
        else:
            self._start_consensus(index, request, ctx)

    # ------------------------------------------------------------------
    # Storage replica groups
    # ------------------------------------------------------------------
    def _start_storage(self, index: int, request: ReconfigRequest, ctx: Context) -> None:
        object_id = request.object_id
        old = self.directory.group(object_id)
        new = request.group
        if new == old:
            self._finish(index, ctx, noop=True)
            return
        self._active = index
        added = tuple(s for s in new if s not in old)
        for name in added:
            if ctx.has_automaton(name):
                # A rejoining replica whose retirement drain had not removed
                # it yet: reuse it (the sync below re-installs anything it
                # lacks) and cancel the pending retirement.
                self._retire_attempts.pop(name, None)
                continue
            replica = self.replica_factory(object_id, name, new)
            if hasattr(replica, "directory"):
                replica.directory = self.directory
            ctx.spawn(replica)
        self.directory.begin_joint(object_id, new, vtime=ctx.vtime)
        ctx.internal(
            reconfig="joint-begin",
            object=object_id,
            epoch=self.directory.epoch,
            vtime=ctx.vtime,
            old=",".join(old),
            new=",".join(new),
        )
        if added:
            retained = tuple(s for s in old if s in new)
            self._awaiting_sync[index] = set(added)
            # Source rotation: prefer retained replicas (they stay in C_new),
            # fall back to leaving ones; a timeout fails over to the next.
            self._sync_candidates[index] = retained + tuple(
                s for s in old if s not in retained
            )
            self._sync_attempt[index] = 0
            self._send_sync(index, ctx)
        else:
            self._commit_storage(index, request, ctx)

    def _send_sync(self, index: int, ctx: Context) -> None:
        request = self.requests[index]
        candidates = self._sync_candidates[index]
        attempt = self._sync_attempt[index]
        source = candidates[attempt % len(candidates)]
        ctx.send(
            source,
            "sync-req",
            {
                "object": request.object_id,
                "targets": tuple(sorted(self._awaiting_sync[index])),
                "reconfig": index,
                "admin": self.name,
            },
            phase="reconfig-sync",
        )
        ctx.set_timeout(self.drain * 2, sync=index, attempt=attempt)

    def _on_sync_timeout(self, index: int, attempt: int, ctx: Context) -> None:
        """A sync window elapsed without every added replica reporting in:
        fail over to the next source (the chosen one may be crashed or
        partitioned away).  After two full rotations with no progress the
        change parks in the joint configuration — safe (joint quorums keep
        intersecting both epochs) but degraded — and later scheduled
        requests are skipped rather than deferred forever."""
        if index not in self._awaiting_sync or attempt != self._sync_attempt[index]:
            return  # sync completed, or an older attempt's timer
        self._sync_attempt[index] += 1
        if self._sync_attempt[index] >= 2 * len(self._sync_candidates[index]):
            ctx.internal(
                reconfig="sync-abandoned",
                object=self.requests[index].object_id,
                request=index,
                vtime=ctx.vtime,
            )
            del self._awaiting_sync[index]
            self._abandoned = True
            return
        self._send_sync(index, ctx)

    def on_message(self, message: Message, ctx: Context) -> None:
        if message.msg_type == "sync-done":
            self._on_sync_done(message, ctx)
        elif message.msg_type == "cns-reconfig-done":
            self._on_consensus_done(message, ctx)
        elif message.msg_type == "reconfig-submit":
            self._on_submit(message, ctx)

    def _on_submit(self, message: Message, ctx: Context) -> None:
        """Accept a dynamically derived membership change (the controller's
        output): validate it like a planned request, append it to the
        executed list and schedule it for the next tick — the usual deferral
        applies if another change is in flight."""
        request = ReconfigRequest(
            kind=str(message.get("kind", REPLICA_GROUP)),
            group=tuple(message.get("group", ())),
            object_id=str(message.get("object", "")),
            at=ctx.vtime,
        )
        self._validate(request)
        if request.kind == REPLICA_GROUP:
            current = self.directory.group(request.object_id)
            stranded = [
                name
                for name in current
                if name in self.directory.protected and name not in request.group
            ]
            if stranded:
                ctx.internal(
                    reconfig="rejected",
                    object=request.object_id,
                    protected=",".join(stranded),
                    vtime=ctx.vtime,
                )
                return
        index = len(self.requests)
        self.requests.append(request)
        ctx.internal(
            reconfig="submitted",
            request=index,
            source=message.src,
            object=request.object_id,
            group=",".join(request.group),
            vtime=ctx.vtime,
        )
        ctx.set_timeout(1, reconfig=index)

    def _on_sync_done(self, message: Message, ctx: Context) -> None:
        index = int(message.get("reconfig", -1))
        waiting = self._awaiting_sync.get(index)
        if waiting is None or message.src not in waiting:
            return
        waiting.discard(message.src)
        self.directory.record_transfer(message.get("object", ""), int(message.get("count", 0)))
        ctx.internal(
            reconfig="sync-done",
            object=message.get("object", ""),
            replica=message.src,
            transferred=int(message.get("count", 0)),
            vtime=ctx.vtime,
        )
        if not waiting:
            del self._awaiting_sync[index]
            self._commit_storage(index, self.requests[index], ctx)

    def _commit_storage(self, index: int, request: ReconfigRequest, ctx: Context) -> None:
        removed = self.directory.commit_joint(request.object_id, vtime=ctx.vtime)
        ctx.topology.update_replica_group(
            request.object_id, self.directory.group(request.object_id)
        )
        ctx.internal(
            reconfig="commit",
            object=request.object_id,
            epoch=self.directory.epoch,
            vtime=ctx.vtime,
            removed=",".join(removed),
        )
        for name in removed:
            ctx.set_timeout(self.drain, retire=name)
        self._finish(index, ctx)

    # ------------------------------------------------------------------
    # The consensus group
    # ------------------------------------------------------------------
    def _start_consensus(self, index: int, request: ReconfigRequest, ctx: Context) -> None:
        old = self.directory.consensus_group()
        new = request.group
        if new == old:
            self._finish(index, ctx, noop=True)
            return
        self._active = index
        union = old + tuple(m for m in new if m not in old)
        for name in union:
            if name in old or ctx.has_automaton(name):
                if name not in old:
                    self._retire_attempts.pop(name, None)  # rejoining member
                continue
            ctx.spawn(self.consensus_member_factory(name, union))
        self.directory.begin_consensus_joint(new, vtime=ctx.vtime)
        ctx.internal(
            reconfig="cns-joint-begin",
            epoch=self.directory.epoch,
            vtime=ctx.vtime,
            old=",".join(old),
            new=",".join(new),
        )
        self._cns_attempt[index] = 0
        self._broadcast_cns(index, old, new, ctx)

    def _broadcast_cns(self, index: int, old, new, ctx: Context) -> None:
        """(Re)broadcast the membership request to the live member set and
        arm the retransmission timer.  Members dedup by request id and the
        leader re-sends the memoized done reply, so retransmission is
        idempotent — it only papers over lost broadcasts or a done reply
        that died with its leader."""
        for member in self.directory.coordinator_targets():
            ctx.send(
                member,
                "cns-reconfig",
                {"old": tuple(old), "new": tuple(new), "reconfig": index, "admin": self.name},
                phase="reconfig",
            )
        ctx.set_timeout(self.drain * 2, cns=index, attempt=self._cns_attempt[index])

    def _on_cns_timeout(self, index: int, attempt: int, ctx: Context) -> None:
        if (
            index != self._active
            or self.directory.consensus_joint is None
            or attempt != self._cns_attempt[index]
        ):
            return  # the change committed, or an older attempt's timer
        self._cns_attempt[index] += 1
        if self._cns_attempt[index] >= 8:
            # No quorum of the joint configuration is reachable: park (the
            # joint config stays safe) and skip later scheduled requests.
            ctx.internal(reconfig="cns-abandoned", request=index, vtime=ctx.vtime)
            self._abandoned = True
            return
        old, new = self.directory.consensus_joint
        self._broadcast_cns(index, old, new, ctx)

    def _on_consensus_done(self, message: Message, ctx: Context) -> None:
        index = int(message.get("reconfig", -1))
        if index != self._active or self.directory.consensus_joint is None:
            return  # duplicate done (a re-sent memoized reply)
        removed = self.directory.commit_consensus_joint(vtime=ctx.vtime)
        ctx.topology.set_consensus_group(self.directory.consensus_group())
        ctx.internal(
            reconfig="cns-commit",
            epoch=self.directory.epoch,
            vtime=ctx.vtime,
            removed=",".join(removed),
        )
        for name in removed:
            ctx.set_timeout(self.drain, retire=name)
        self._finish(index, ctx)

    # ------------------------------------------------------------------
    def _finish(self, index: int, ctx: Context, noop: bool = False) -> None:
        self._done.add(index)
        if self._active == index:
            self._active = None
        if noop:
            ctx.internal(reconfig="noop", request=index, vtime=ctx.vtime)

    def _try_retire(self, name: str, ctx: Context) -> None:
        if not self.directory.is_retired(name) or not ctx.has_automaton(name):
            # The name rejoined a group (a later change re-added it), or a
            # concurrent retire timer already removed it: nothing to do.
            self._retire_attempts.pop(name, None)
            return
        attempts = self._retire_attempts.get(name, 0) + 1
        self._retire_attempts[name] = attempts
        # After a few drain windows any still-pending delivery is a straggler
        # addressed to a server that already answers only epoch-mismatch;
        # force-dropping it is safe and keeps retirement finite.
        if ctx.retire(name, force=attempts >= 3):
            self._retire_attempts.pop(name, None)
        else:
            ctx.set_timeout(self.drain, retire=name)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.plan.describe()}, "
            f"active={self._active}, done={sorted(self._done)}"
        )
