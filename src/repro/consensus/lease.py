"""Leader leases: taking the consensus tax off the coordinator read path.

Every read-only coordinator request (``get-tag-arr`` for algorithms B/C and
the OCC oracle) normally costs a full commit round: append, quorum ack,
commit broadcast, apply.  A *leader lease* lets the current leader answer
those reads locally from its applied state machine instead, as long as it
can prove no other leader may exist:

* The lease is built from quorum-acknowledged extension rounds on the
  kernel's **virtual clock** (skew-free by construction).  When the leader
  sends a ``cns-lease`` round at vtime ``S`` and a quorum acknowledges it,
  every acking follower has promised not to grant votes to *other*
  candidates until ``S + duration``; by quorum intersection no election can
  complete inside the proven window, so the leader may serve reads locally
  until ``S + duration``.
* The lease duration is bounded by the **low end of the election-timeout
  range**: a partitioned leader's lease provably lapses before any
  successor's election timer can fire and win, so a new leader never
  overlaps a live lease.
* A candidate whose peers still hold a live promise is refused votes and
  simply retries after the next timeout — it *waits out* the old lease.

Reads arriving while an extension round is in flight are batched: they park
on the leader and the single quorum evaluation that closes the round proves
the window for all of them at once.

``leases=None`` (the default) leaves every message, field and trace action
byte-identical to the seed; the fast path exists only when a
:class:`LeasePolicy` is installed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = ["LeasePolicy", "LeaderLeaseState"]


@dataclass(frozen=True)
class LeasePolicy:
    """Knob enabling lease-based leader reads on the replicated coordinator.

    ``duration`` is the virtual-time length of one lease grant.  ``None``
    (the default) derives the safe bound from the member's election-timeout
    range at install time; an explicit duration is clamped to that bound —
    a lease longer than the earliest possible election timeout could
    overlap a successor's term, which is exactly the unsafety leases must
    exclude.
    """

    duration: Optional[int] = None

    @classmethod
    def of(cls, value: Any) -> Optional["LeasePolicy"]:
        """Normalize the ``leases`` knob: None | True | int | LeasePolicy."""
        if value is None:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            if value <= 0:
                raise ValueError(f"lease duration must be positive, got {value}")
            return cls(duration=value)
        raise TypeError(f"leases must be None, True, an int or a LeasePolicy, got {value!r}")

    def resolve(self, timeout_range: Tuple[int, int]) -> int:
        """The effective lease duration under ``timeout_range``'s low bound."""
        low = int(timeout_range[0])
        if self.duration is None:
            return max(1, low)
        return max(1, min(int(self.duration), low))

    def describe(self) -> str:
        return "leases" if self.duration is None else f"leases({self.duration})"


class LeaderLeaseState:
    """Leader-side lease bookkeeping: ack times, the proven window, parked reads.

    ``acks[peer]`` is the latest extension send-vtime that ``peer`` has
    acknowledged.  The proven lease start is the latest send-vtime ``S``
    such that the leader plus every peer with ``acks[peer] >= S`` forms a
    quorum; the lease then runs to ``S + duration``.  All O(members) per
    ack, O(1) state.
    """

    __slots__ = (
        "duration",
        "acks",
        "expiry",
        "round_open",
        "round_sent_at",
        "reads",
        "notify",
        "expired_logged",
    )

    def __init__(self, duration: int):
        self.duration = int(duration)
        self.acks: Dict[str, int] = {}
        self.expiry = 0
        self.round_open = False
        self.round_sent_at = 0
        # one lease-expired trace action per lapse, not one per parked read
        self.expired_logged = False
        # request_id -> (pending request, arrival vtime): reads parked while
        # an extension round proves the window they will be served under.
        self.reads: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()
        # Served-locally request ids awaiting follower notification (so the
        # broadcast copies buffered in follower ``pending`` are drained).
        self.notify: List[str] = []

    def live(self, now: int) -> bool:
        return now < self.expiry

    def record_ack(self, peer: str, at: int) -> None:
        previous = self.acks.get(peer)
        if previous is None or at > previous:
            self.acks[peer] = at

    def proven_start(self, is_quorum: Callable[[Set[str]], bool]) -> Optional[int]:
        """Latest send-vtime ``S`` whose ack set (plus the leader) is a quorum."""
        for start in sorted(set(self.acks.values()), reverse=True):
            supporters = {peer for peer, at in self.acks.items() if at >= start}
            if is_quorum(supporters):
                return start
        return None
