"""Replicated coordinator log: Raft-style consensus on the IOA kernel.

PR 2's placement layer made the *storage* servers replica-aware, but the
coordinator of algorithms B/C (the append-only ``List``) and OCC's timestamp
oracle remained single logical servers — crashing one stalled the whole
system.  This subpackage closes that last single point of failure:

* :mod:`repro.consensus.log` — :class:`ConsensusLog`, the replicated log
  data structure (append / match / merge / commit / apply bookkeeping);
* :mod:`repro.consensus.election` — :class:`LeaderElection`, the term/vote/
  role state of one member plus the seeded randomized election timeout;
* :mod:`repro.consensus.machines` — the coordinator state machines that the
  log replicates: :class:`ListStateMachine` (the ``List`` of algorithms B/C)
  and :class:`TimestampStateMachine` (OCC's oracle), both built on
  :class:`CoordinatorList` / plain counters so the single-copy servers and
  the replicated service share one implementation of the metadata;
* :mod:`repro.consensus.coordinator` — :class:`ReplicatedCoordinator`, the
  member automaton: a drop-in replacement for the designated coordinator
  server, replicating every client request through the log before applying
  and replying.

With ``consensus_factor=1`` (the default) none of this is instantiated and
every protocol is byte-for-byte the seed system (pinned by the golden
signature harness); with ``consensus_factor=3`` the coordinator survives the
crash of its leader: the survivors elect a new leader after a bounded
leaderless window and the SNOW / Lemma-20 verdicts ride through unchanged.

Timing model: elections are driven by the kernel's virtual-time timeout
events (:class:`~repro.ioa.scheduler.PendingTimeout`) — scheduler ticks, not
wall clocks — and every timeout delay is drawn from a per-member RNG seeded
by the build seed, so consensus executions are as replayable as everything
else in the repository.
"""

from .controller import CONTROLLER_NAME, ControllerPolicy, ReconfigController
from .coordinator import (
    CONFIG,
    DEFAULT_ELECTION_TIMEOUT,
    RECONFIG,
    ReplicatedCoordinator,
    consensus_members,
)
from .election import CANDIDATE, FOLLOWER, LEADER, LeaderElection
from .lease import LeaderLeaseState, LeasePolicy
from .log import NOOP, CompactedLogError, ConsensusLog, LogEntry
from .machines import (
    CoordinatorList,
    CoordinatorStateMachine,
    ListStateMachine,
    TimestampStateMachine,
)
from .reconfig import (
    ADMIN_NAME,
    CONSENSUS_GROUP,
    REPLICA_GROUP,
    PlacementDirectory,
    ReconfigDriver,
    ReconfigPlan,
    ReconfigRequest,
    set_consensus_group,
    set_replica_group,
)

__all__ = [
    "CONFIG",
    "CONTROLLER_NAME",
    "ControllerPolicy",
    "ReconfigController",
    "DEFAULT_ELECTION_TIMEOUT",
    "RECONFIG",
    "ReplicatedCoordinator",
    "consensus_members",
    "ADMIN_NAME",
    "CONSENSUS_GROUP",
    "REPLICA_GROUP",
    "PlacementDirectory",
    "ReconfigDriver",
    "ReconfigPlan",
    "ReconfigRequest",
    "set_consensus_group",
    "set_replica_group",
    "CANDIDATE",
    "FOLLOWER",
    "LEADER",
    "LeaderElection",
    "LeaderLeaseState",
    "LeasePolicy",
    "NOOP",
    "CompactedLogError",
    "ConsensusLog",
    "LogEntry",
    "CoordinatorList",
    "CoordinatorStateMachine",
    "ListStateMachine",
    "TimestampStateMachine",
]
