"""The coordinator state machines that the consensus log replicates.

The metadata the paper's bounded-latency algorithms route through one
designated server comes in two shapes:

* the append-only **``List``** of algorithms B and C (Pseudocodes 5-7):
  per WRITE transaction, which objects it updated and under which key,
  answering ``update-coor`` (append, returning the tag) and ``get-tag-arr``
  (per requested object, the key of the newest entry updating it);
* the monotonic **timestamp counter** of the OCC baseline, answering
  ``get-ts``.

Both are factored out here as plain deterministic state machines so that the
single-copy coordinator server (``consensus_factor=1``; see
:class:`~repro.protocols.coordinated.CoordinatedServer`) and the replicated
:class:`~repro.consensus.coordinator.ReplicatedCoordinator` members apply
*one shared implementation* — state-machine safety across the group is then
Raft's apply-in-commit-order guarantee plus determinism of these transitions.

A state machine maps ``(msg_type, payload) -> (reply_type, reply_payload)``;
it never does I/O and never consults time or randomness.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..ioa.errors import SimulationError
from ..txn.objects import Key


class CoordinatorList:
    """The coordinator's append-only ``List`` (1-based positions).

    The initial entry stands for the initial versions (``κ₀`` updating every
    object), exactly as in the pseudocode; the tag of a WRITE is the length
    of the list after its entry is appended.
    """

    def __init__(self, objects: Sequence[str]) -> None:
        self.objects = tuple(objects)
        self.entries: List[Tuple[Key, Dict[str, int]]] = []
        self.reset()

    def reset(self) -> None:
        """(Re)initialise to the single initial entry — the amnesia hook."""
        self.entries = [(Key.initial(), {obj: 1 for obj in self.objects})]

    def snapshot(self) -> Tuple[Tuple[Key, Tuple[Tuple[str, int], ...]], ...]:
        """An immutable copy of the list (checkpoint payload)."""
        return tuple(
            (key, tuple(sorted(bits.items()))) for key, bits in self.entries
        )

    def restore(self, state: Sequence[Tuple[Key, Any]]) -> None:
        """Replace the list with a :meth:`snapshot` payload."""
        self.entries = [(key, dict(bits)) for key, bits in state]

    # ------------------------------------------------------------------
    def append(self, key: Key, bits: Mapping[str, Any]) -> int:
        """Record that the WRITE keyed ``key`` updated ``bits``; returns its tag."""
        self.entries.append((key, {obj: int(bits.get(obj, 0)) for obj in self.objects}))
        return len(self.entries)

    def latest_index_for(self, object_id: str) -> int:
        for position in range(len(self.entries) - 1, -1, -1):
            if self.entries[position][1].get(object_id, 0) == 1:
                return position + 1
        raise SimulationError(f"coordinator list has no entry for object {object_id!r}")

    def tag_array_for(self, read_set: Sequence[str]) -> Tuple[int, Dict[str, Key]]:
        """``(t_r, {object: κ})`` for the requested read set."""
        keys: Dict[str, Key] = {}
        tag = 1
        for object_id in read_set:
            index = self.latest_index_for(object_id)
            tag = max(tag, index)
            keys[object_id] = self.entries[index - 1][0]
        return tag, keys

    def __len__(self) -> int:
        return len(self.entries)


# ----------------------------------------------------------------------
# State-machine interface and the two coordinator machines
# ----------------------------------------------------------------------
class CoordinatorStateMachine:
    """Deterministic request → reply transition function over private state."""

    #: the client message types this machine serves (the consensus members
    #: treat exactly these as replicable requests)
    request_types: Tuple[str, ...] = ()

    #: the subset of ``request_types`` whose transitions are *pure* — no
    #: state change, reply derived from current state only.  Exactly these
    #: are eligible for the lease-holder's local-read fast path
    #: (``BuildConfig.leases``); a mutating type here would fork the
    #: replicas' states, so machines must declare reads explicitly.
    read_only_types: Tuple[str, ...] = ()

    def apply(self, msg_type: str, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        raise NotImplementedError

    def reply_phase(self, msg_type: str) -> str:
        """Trace phase label for the reply to ``msg_type``."""
        return ""

    def reset(self) -> None:
        """Drop all state (the crash-with-amnesia hook)."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """An immutable, deterministic copy of the full state — the
        checkpoint payload the consensus log compacts behind.  Must satisfy
        ``restore(snapshot())`` ≡ identity."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Replace all state with a :meth:`snapshot` payload (recovery and
        snapshot-install both land here)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ListStateMachine(CoordinatorStateMachine):
    """The ``List`` service of algorithms B and C."""

    request_types = ("update-coor", "get-tag-arr")
    #: ``get-tag-arr`` only inspects the list — the lease fast path serves it
    read_only_types = ("get-tag-arr",)
    _PHASES = {"update-coor": "update-coor", "get-tag-arr": "get-tag-array"}

    def __init__(self, objects: Sequence[str]) -> None:
        self.list = CoordinatorList(objects)

    def apply(self, msg_type: str, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        if msg_type == "update-coor":
            tag = self.list.append(payload["key"], dict(payload.get("bits", ())))
            return "ack-coor", {"txn": payload.get("txn"), "tag": tag}
        if msg_type == "get-tag-arr":
            read_set = tuple(payload.get("read_set", ()))
            tag, keys = self.list.tag_array_for(read_set)
            return "tag-arr-reply", {
                "txn": payload.get("txn"),
                "tag": tag,
                "keys": tuple(keys.items()),
                "num_versions": 1,
            }
        raise SimulationError(f"ListStateMachine cannot apply {msg_type!r}")

    def reply_phase(self, msg_type: str) -> str:
        return self._PHASES.get(msg_type, "")

    def reset(self) -> None:
        self.list.reset()

    def snapshot(self) -> Any:
        return self.list.snapshot()

    def restore(self, state: Any) -> None:
        self.list.restore(state)

    def describe(self) -> str:
        return f"ListStateMachine({len(self.list)} entries)"


class TimestampStateMachine(CoordinatorStateMachine):
    """The monotonic timestamp oracle of the OCC baseline."""

    request_types = ("get-ts",)
    #: ``get-ts`` increments the counter — nothing here is lease-servable
    read_only_types = ()

    def __init__(self) -> None:
        self.counter = 0

    def apply(self, msg_type: str, payload: Mapping[str, Any]) -> Tuple[str, Dict[str, Any]]:
        if msg_type != "get-ts":
            raise SimulationError(f"TimestampStateMachine cannot apply {msg_type!r}")
        self.counter += 1
        return "ts-reply", {"txn": payload.get("txn"), "timestamp": self.counter}

    def reply_phase(self, msg_type: str) -> str:
        return "get-timestamp"

    def reset(self) -> None:
        self.counter = 0

    def snapshot(self) -> Any:
        return self.counter

    def restore(self, state: Any) -> None:
        self.counter = int(state)

    def describe(self) -> str:
        return f"TimestampStateMachine(counter={self.counter})"
