"""Term-based leader election state with seeded randomized timeouts.

:class:`LeaderElection` holds the Raft election state of one consensus
member — current term, role, who it voted for this term, the votes it has
gathered as a candidate — plus the member's private RNG for election timeout
delays.  The RNG is seeded from ``(build seed, member index)``, so elections
are deterministic per seed (the repository-wide replayability property) while
different members still draw *different* timeouts, which is what breaks
split-vote symmetry exactly as Raft's randomized timeouts do in real time.

Timeouts are measured in kernel virtual-time steps (the fault plane's clock,
or the step counter without one) — there is no wall clock anywhere.

Bootstrap convention: the group's first member starts as the leader of term 1
and every member starts having voted for it, so a fault-free run never holds
an election (and ``consensus_factor=1`` systems, which instantiate no members
at all, stay byte-identical to the seed).
"""

from __future__ import annotations

import random
from typing import Any, Optional, Set, Tuple

FOLLOWER = "follower"
CANDIDATE = "candidate"
LEADER = "leader"

#: Default election timeout window, in virtual-time steps.  Generous relative
#: to a commit round (a handful of steps) so a healthy-but-busy leader is not
#: ousted, yet small enough that failover windows stay cheap to simulate.
DEFAULT_TIMEOUT_RANGE: Tuple[int, int] = (40, 80)


class LeaderElection:
    """Election-side state of one consensus member."""

    def __init__(
        self,
        member: str,
        index: int,
        group_size: int,
        initial_leader: str,
        seed: int = 0,
        timeout_range: Tuple[int, int] = DEFAULT_TIMEOUT_RANGE,
    ) -> None:
        if group_size < 1:
            raise ValueError(f"consensus group size must be >= 1, got {group_size}")
        low, high = timeout_range
        if not (1 <= low <= high):
            raise ValueError(f"election timeout range needs 1 <= low <= high, got {timeout_range}")
        self.member = member
        self.index = index
        self.group_size = group_size
        self.timeout_range = (int(low), int(high))
        self.term = 1
        self.role = LEADER if member == initial_leader else FOLLOWER
        self.voted_for: Optional[str] = initial_leader
        self.votes: Set[str] = set()
        self._rng = random.Random(((seed & 0xFFFFFFFF) * 1_000_003 + index * 97) ^ 0xE1EC7)
        #: attached stable store (write-through; None = volatile)
        self._store: Optional[Any] = None

    # ------------------------------------------------------------------
    # Stable storage (Raft's persist-before-act rule for term and vote)
    # ------------------------------------------------------------------
    def attach_store(self, store: Any) -> None:
        """Write ``(term, voted_for)`` through to ``store`` on every later
        mutation — a vote or candidacy is durable before anyone can see it."""
        self._store = store

    def restore(self, term: int, voted_for: Optional[str]) -> None:
        """Reload persisted election state (recovery path).  A recovered
        member always restarts as a follower: role and gathered votes are
        volatile, only term and vote are Raft persistent state."""
        self.term = int(term)
        self.voted_for = voted_for
        self.role = FOLLOWER
        self.votes = set()

    def _persist(self) -> None:
        if self._store is not None:
            self._store.save_meta(self.term, self.voted_for)

    # ------------------------------------------------------------------
    @property
    def majority(self) -> int:
        return self.group_size // 2 + 1

    @property
    def is_leader(self) -> bool:
        return self.role == LEADER

    @property
    def is_candidate(self) -> bool:
        return self.role == CANDIDATE

    @property
    def is_follower(self) -> bool:
        return self.role == FOLLOWER

    def next_timeout(self) -> int:
        """A fresh randomized election timeout delay (virtual-time steps)."""
        return self._rng.randint(*self.timeout_range)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def start_candidacy(self) -> int:
        """Enter a new term as candidate, voting for self; returns the term."""
        self.term += 1
        self.role = CANDIDATE
        self.voted_for = self.member
        self.votes = {self.member}
        self._persist()
        return self.term

    def record_vote(self, voter: str) -> bool:
        """Register a granted vote; ``True`` when a majority is reached."""
        self.votes.add(voter)
        return len(self.votes) >= self.majority

    def become_leader(self) -> None:
        self.role = LEADER
        self.votes = set()

    def step_down(self, term: int) -> None:
        """Observe a higher term: adopt it as a follower with a fresh vote."""
        if term > self.term:
            self.term = term
            self.voted_for = None
            self._persist()
        self.role = FOLLOWER
        self.votes = set()

    def may_grant(self, candidate: str, term: int) -> bool:
        """Vote-at-most-once-per-term half of the grant decision (the log
        up-to-date half lives with the log)."""
        return term == self.term and self.voted_for in (None, candidate)

    def grant(self, candidate: str) -> None:
        self.voted_for = candidate
        self._persist()

    def describe(self) -> str:
        return f"{self.member}: {self.role} @ term {self.term}"
