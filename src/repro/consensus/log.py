"""The replicated log data structure (the Raft log, 1-based indices).

:class:`ConsensusLog` is a pure data structure — no I/O, no randomness — so
its safety-critical operations (the match check, conflict-truncating merge
and commit/apply bookkeeping) are unit-testable in isolation and shared by
every :class:`~repro.consensus.coordinator.ReplicatedCoordinator` member.

Safety invariants maintained here:

* **Log matching** — :meth:`merge` only appends past a ``(prev_index,
  prev_term)`` pair that :meth:`matches` accepted, and truncates conflicting
  suffixes; two logs that agree on an index+term therefore agree on the whole
  prefix.
* **Commit stability** — committed entries are never truncated; a merge that
  would rewrite a committed entry raises :class:`~repro.ioa.errors.
  SimulationError` (it would mean election safety was already broken).
* **Apply order** — :meth:`take_unapplied` hands out committed entries
  exactly once, in index order.

Compaction (PR 9): a log may discard its *applied* prefix behind a state-
machine snapshot (:meth:`compact` / :meth:`install_snapshot`).  Indices stay
global — ``snapshot_index`` is the base the in-memory suffix hangs off —
and queries into the discarded prefix raise :class:`CompactedLogError`
loudly instead of answering from thin air.  With an attached
:class:`~repro.persist.store.StableStore` every mutation writes through, so
term/vote/log survive a crash (Raft's persistence rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..ioa.errors import SimulationError


class CompactedLogError(SimulationError):
    """A query addressed an index that was compacted away behind a snapshot."""

#: Entry type appended by a freshly elected leader to commit prior-term
#: entries (Raft §5.4.2: a leader only counts replicas for entries of its
#: own term, so it commits the no-op and everything before it).
NOOP = "noop"

#: Entry type carrying a *batch* of coordinator requests: the leader packs
#: every request queued since the last round into one entry, so one commit
#: round applies them all (see ``ReplicatedCoordinator.append_batching``).
#: The entry's payload holds a ``requests`` tuple of
#: ``(request_id, msg_type, payload, client)`` sub-requests.
BATCH = "cns-batch"


@dataclass(frozen=True)
class LogEntry:
    """One replicated coordinator request.

    ``request_id`` is the dedup key (``"<msg_type>/<txn>"``): re-proposed
    entries after a leader change may appear twice in the log, and the apply
    path uses the id to apply the state-machine transition exactly once
    (replies are memoized and re-sent instead).  ``proposed_at`` is the
    virtual time the entry was (re)proposed, which is what commit-latency
    metrics measure against.
    """

    term: int
    request_id: str
    msg_type: str
    payload: Tuple[Tuple[str, Any], ...] = ()
    client: str = ""
    proposed_at: int = 0

    def is_noop(self) -> bool:
        return self.msg_type == NOOP

    def batch_requests(self) -> Tuple[Tuple[Any, ...], ...]:
        """The ``(request_id, msg_type, payload, client)`` sub-requests of a
        :data:`BATCH` entry (empty for ordinary entries)."""
        if self.msg_type != BATCH:
            return ()
        for key, value in self.payload:
            if key == "requests":
                return value
        return ()

    def request_ids(self) -> Tuple[str, ...]:
        """Every dedup key the entry answers for: its own id plus, for a
        :data:`BATCH` entry, the ids of the packed sub-requests."""
        if self.msg_type != BATCH:
            return (self.request_id,)
        return (self.request_id,) + tuple(r[0] for r in self.batch_requests())

    def describe(self) -> str:
        return f"[t{self.term} {self.request_id}]"


class ConsensusLog:
    """Append/commit/apply state of one consensus member."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.commit_index = 0
        self.last_applied = 0
        #: highest index discarded behind a snapshot (0 = nothing compacted);
        #: the in-memory suffix holds global indices ``snapshot_index+1 ..
        #: snapshot_index+len(_entries)``
        self.snapshot_index = 0
        #: term of the entry at ``snapshot_index`` (Raft keeps it so the
        #: match check still works at the snapshot boundary)
        self.snapshot_term = 0
        #: cumulative entries discarded by compaction (stats only)
        self.compacted_entries = 0
        #: attached stable store (write-through; None = volatile)
        self._store: Optional[Any] = None
        #: request-id refcounts over ``_entries`` (re-proposed entries may
        #: legitimately appear twice), making :meth:`contains_request` O(1)
        #: instead of a full-log scan per client request.
        self._request_ids: Dict[str, int] = {}

    def attach_store(self, store: Any) -> None:
        """Write every later mutation through to ``store``."""
        self._store = store

    def _register(self, entry: LogEntry) -> None:
        ids = self._request_ids
        for request_id in entry.request_ids():
            ids[request_id] = ids.get(request_id, 0) + 1

    def _unregister(self, entry: LogEntry) -> None:
        ids = self._request_ids
        for request_id in entry.request_ids():
            count = ids.get(request_id, 0) - 1
            if count > 0:
                ids[request_id] = count
            else:
                ids.pop(request_id, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[LogEntry, ...]:
        """The retained suffix (everything above ``snapshot_index``)."""
        return tuple(self._entries)

    @property
    def last_index(self) -> int:
        return self.snapshot_index + len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self.snapshot_term

    def entry(self, index: int) -> LogEntry:
        if index < 1 or index > self.last_index:
            raise SimulationError(f"log index {index} out of range [1, {self.last_index}]")
        if index <= self.snapshot_index:
            raise CompactedLogError(
                f"log index {index} was compacted away "
                f"(snapshot through {self.snapshot_index})"
            )
        return self._entries[index - self.snapshot_index - 1]

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index`` (0 for the empty prefix)."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        return self.entry(index).term

    def entries_from(self, index: int) -> Tuple[LogEntry, ...]:
        """All entries at indices >= ``index`` (which must be above the
        snapshot; callers ship a snapshot instead when it is not)."""
        return tuple(self._entries[max(0, index - self.snapshot_index - 1):])

    def contains_request(self, request_id: str) -> bool:
        return request_id in self._request_ids

    def committed_entries(self) -> Tuple[LogEntry, ...]:
        """The committed *retained* entries (above the snapshot)."""
        return tuple(self._entries[: max(0, self.commit_index - self.snapshot_index)])

    # ------------------------------------------------------------------
    # Leader-side append
    # ------------------------------------------------------------------
    def append(self, entry: LogEntry) -> int:
        """Append a new entry (leader path); returns its 1-based index."""
        self._entries.append(entry)
        self._register(entry)
        index = self.last_index
        if self._store is not None:
            self._store.log_append(index, entry)
        return index

    # ------------------------------------------------------------------
    # Follower-side replication
    # ------------------------------------------------------------------
    def matches(self, prev_index: int, prev_term: int) -> bool:
        """Whether this log contains ``(prev_index, prev_term)``."""
        if prev_index == 0:
            return True
        if prev_index < self.snapshot_index:
            # Inside the compacted prefix: those entries were committed and
            # applied here, and leader completeness guarantees any current
            # leader's log agrees with a committed prefix.
            return True
        if prev_index == self.snapshot_index:
            return prev_term == self.snapshot_term
        if prev_index > self.last_index:
            return False
        return self.term_at(prev_index) == prev_term

    def merge(self, prev_index: int, entries: Tuple[LogEntry, ...]) -> None:
        """Install ``entries`` after ``prev_index``, truncating conflicts.

        Callers must have checked :meth:`matches` first.  An entry that is
        already present with the same term is left untouched (idempotent
        re-delivery); a term conflict truncates the suffix from that point.
        Entries at or below ``snapshot_index`` are skipped — the snapshot
        already covers that committed prefix.
        """
        index = prev_index
        for entry in entries:
            index += 1
            if index <= self.snapshot_index:
                continue
            if index <= self.last_index:
                if self.term_at(index) == entry.term:
                    continue
                if index <= self.commit_index:
                    raise SimulationError(
                        f"consensus log asked to truncate committed entry {index} "
                        f"(commit_index={self.commit_index}): election safety is broken"
                    )
                position = index - self.snapshot_index - 1
                for truncated in self._entries[position:]:
                    self._unregister(truncated)
                del self._entries[position:]
                if self._store is not None:
                    self._store.log_truncate(index)
            self._entries.append(entry)
            self._register(entry)
            if self._store is not None:
                self._store.log_append(index, entry)

    # ------------------------------------------------------------------
    # Commit / apply bookkeeping
    # ------------------------------------------------------------------
    def advance_commit(self, index: int) -> int:
        """Raise the commit index (clamped to the log end); returns it."""
        index = min(int(index), self.last_index)
        if index > self.commit_index:
            self.commit_index = index
            if self._store is not None:
                self._store.save_commit(index)
        return self.commit_index

    def take_unapplied(self) -> Tuple[Tuple[int, LogEntry], ...]:
        """Committed-but-unapplied ``(index, entry)`` pairs, advancing the
        apply cursor — each committed entry is handed out exactly once."""
        if self.last_applied >= self.commit_index:
            return ()
        base = self.snapshot_index
        newly = tuple(
            (i, self._entries[i - base - 1])
            for i in range(self.last_applied + 1, self.commit_index + 1)
        )
        self.last_applied = self.commit_index
        return newly

    # ------------------------------------------------------------------
    # Compaction / recovery
    # ------------------------------------------------------------------
    def _drop_prefix(self, through: int) -> int:
        drop = through - self.snapshot_index
        for entry in self._entries[:drop]:
            self._unregister(entry)
        del self._entries[:drop]
        self.compacted_entries += drop
        return drop

    def compact(self, snapshot: Mapping[str, Any]) -> int:
        """Discard the applied prefix behind ``snapshot`` (a checkpoint of
        the state machine at ``snapshot['index']``); returns entries dropped.

        Only the *applied* prefix may go — applied implies committed, and
        committed entries are the only ones whose loss the snapshot covers.
        """
        through = int(snapshot["index"])
        if through <= self.snapshot_index:
            return 0
        if through > self.last_applied:
            raise SimulationError(
                f"cannot compact through {through}: only the applied prefix "
                f"(last_applied={self.last_applied}) may be discarded"
            )
        dropped = self._drop_prefix(through)
        self.snapshot_index = through
        self.snapshot_term = int(snapshot["term"])
        if self._store is not None:
            self._store.save_snapshot(dict(snapshot))
        return dropped

    def install_snapshot(self, snapshot: Mapping[str, Any]) -> bool:
        """Adopt a leader-shipped snapshot (Raft InstallSnapshot).

        Returns whether the *state machine* must be restored from it — False
        when this log had already applied past the snapshot index (then only
        the prefix is dropped).  If the log holds the snapshot index with a
        matching term the suffix past it is retained; otherwise the whole
        log is replaced by the snapshot.
        """
        index = int(snapshot["index"])
        term = int(snapshot["term"])
        if index <= self.snapshot_index:
            return False
        needs_restore = index > self.last_applied
        if index <= self.last_index and self.term_at(index) == term:
            self._drop_prefix(index)
        else:
            for entry in self._entries:
                self._unregister(entry)
            self.compacted_entries += len(self._entries)
            self._entries = []
            if self._store is not None:
                self._store.log_truncate(index + 1)
        self.snapshot_index = index
        self.snapshot_term = term
        self.commit_index = max(self.commit_index, index)
        self.last_applied = max(self.last_applied, index)
        if self._store is not None:
            self._store.save_snapshot(dict(snapshot))
        return needs_restore

    def restore(
        self,
        snapshot_index: int,
        snapshot_term: int,
        entries: Tuple[Tuple[int, LogEntry], ...],
        commit_index: int,
    ) -> None:
        """Reload from stable storage (recovery path — no write-back).

        ``entries`` is the persisted ``(index, entry)`` suffix; the apply
        cursor restarts at the snapshot (the recovered state machine is the
        snapshot's), so the caller replays the committed suffix."""
        self._entries = []
        self._request_ids = {}
        self.snapshot_index = int(snapshot_index)
        self.snapshot_term = int(snapshot_term)
        expected = self.snapshot_index + 1
        for index, entry in entries:
            if index != expected:
                raise SimulationError(
                    f"stable store log is not contiguous: expected index "
                    f"{expected}, got {index}"
                )
            self._entries.append(entry)
            self._register(entry)
            expected += 1
        self.commit_index = min(max(int(commit_index), self.snapshot_index), self.last_index)
        self.last_applied = self.snapshot_index

    # ------------------------------------------------------------------
    # Election support
    # ------------------------------------------------------------------
    def up_to_date(self, last_index: int, last_term: int) -> bool:
        """Raft's voting restriction: is ``(last_term, last_index)`` at least
        as up-to-date as this log?  Guarantees a new leader holds every
        committed entry (leader completeness)."""
        return (last_term, last_index) >= (self.last_term, self.last_index)

    def describe(self) -> str:
        base = (
            f"ConsensusLog(len={self.last_index}, commit={self.commit_index}, "
            f"applied={self.last_applied}"
        )
        if self.snapshot_index:
            base += f", snapshot@{self.snapshot_index}"
        return base + ")"
