"""The replicated log data structure (the Raft log, 1-based indices).

:class:`ConsensusLog` is a pure data structure — no I/O, no randomness — so
its safety-critical operations (the match check, conflict-truncating merge
and commit/apply bookkeeping) are unit-testable in isolation and shared by
every :class:`~repro.consensus.coordinator.ReplicatedCoordinator` member.

Safety invariants maintained here:

* **Log matching** — :meth:`merge` only appends past a ``(prev_index,
  prev_term)`` pair that :meth:`matches` accepted, and truncates conflicting
  suffixes; two logs that agree on an index+term therefore agree on the whole
  prefix.
* **Commit stability** — committed entries are never truncated; a merge that
  would rewrite a committed entry raises :class:`~repro.ioa.errors.
  SimulationError` (it would mean election safety was already broken).
* **Apply order** — :meth:`take_unapplied` hands out committed entries
  exactly once, in index order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..ioa.errors import SimulationError

#: Entry type appended by a freshly elected leader to commit prior-term
#: entries (Raft §5.4.2: a leader only counts replicas for entries of its
#: own term, so it commits the no-op and everything before it).
NOOP = "noop"

#: Entry type carrying a *batch* of coordinator requests: the leader packs
#: every request queued since the last round into one entry, so one commit
#: round applies them all (see ``ReplicatedCoordinator.append_batching``).
#: The entry's payload holds a ``requests`` tuple of
#: ``(request_id, msg_type, payload, client)`` sub-requests.
BATCH = "cns-batch"


@dataclass(frozen=True)
class LogEntry:
    """One replicated coordinator request.

    ``request_id`` is the dedup key (``"<msg_type>/<txn>"``): re-proposed
    entries after a leader change may appear twice in the log, and the apply
    path uses the id to apply the state-machine transition exactly once
    (replies are memoized and re-sent instead).  ``proposed_at`` is the
    virtual time the entry was (re)proposed, which is what commit-latency
    metrics measure against.
    """

    term: int
    request_id: str
    msg_type: str
    payload: Tuple[Tuple[str, Any], ...] = ()
    client: str = ""
    proposed_at: int = 0

    def is_noop(self) -> bool:
        return self.msg_type == NOOP

    def batch_requests(self) -> Tuple[Tuple[Any, ...], ...]:
        """The ``(request_id, msg_type, payload, client)`` sub-requests of a
        :data:`BATCH` entry (empty for ordinary entries)."""
        if self.msg_type != BATCH:
            return ()
        for key, value in self.payload:
            if key == "requests":
                return value
        return ()

    def request_ids(self) -> Tuple[str, ...]:
        """Every dedup key the entry answers for: its own id plus, for a
        :data:`BATCH` entry, the ids of the packed sub-requests."""
        if self.msg_type != BATCH:
            return (self.request_id,)
        return (self.request_id,) + tuple(r[0] for r in self.batch_requests())

    def describe(self) -> str:
        return f"[t{self.term} {self.request_id}]"


class ConsensusLog:
    """Append/commit/apply state of one consensus member."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []
        self.commit_index = 0
        self.last_applied = 0
        #: request-id refcounts over ``_entries`` (re-proposed entries may
        #: legitimately appear twice), making :meth:`contains_request` O(1)
        #: instead of a full-log scan per client request.
        self._request_ids: Dict[str, int] = {}

    def _register(self, entry: LogEntry) -> None:
        ids = self._request_ids
        for request_id in entry.request_ids():
            ids[request_id] = ids.get(request_id, 0) + 1

    def _unregister(self, entry: LogEntry) -> None:
        ids = self._request_ids
        for request_id in entry.request_ids():
            count = ids.get(request_id, 0) - 1
            if count > 0:
                ids[request_id] = count
            else:
                ids.pop(request_id, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> Tuple[LogEntry, ...]:
        return tuple(self._entries)

    @property
    def last_index(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def entry(self, index: int) -> LogEntry:
        if not (1 <= index <= self.last_index):
            raise SimulationError(f"log index {index} out of range [1, {self.last_index}]")
        return self._entries[index - 1]

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index`` (0 for the empty prefix)."""
        if index == 0:
            return 0
        return self.entry(index).term

    def entries_from(self, index: int) -> Tuple[LogEntry, ...]:
        """All entries at positions >= ``index``."""
        return tuple(self._entries[max(0, index - 1):])

    def contains_request(self, request_id: str) -> bool:
        return request_id in self._request_ids

    def committed_entries(self) -> Tuple[LogEntry, ...]:
        return tuple(self._entries[: self.commit_index])

    # ------------------------------------------------------------------
    # Leader-side append
    # ------------------------------------------------------------------
    def append(self, entry: LogEntry) -> int:
        """Append a new entry (leader path); returns its 1-based index."""
        self._entries.append(entry)
        self._register(entry)
        return self.last_index

    # ------------------------------------------------------------------
    # Follower-side replication
    # ------------------------------------------------------------------
    def matches(self, prev_index: int, prev_term: int) -> bool:
        """Whether this log contains ``(prev_index, prev_term)``."""
        if prev_index == 0:
            return True
        if prev_index > self.last_index:
            return False
        return self.term_at(prev_index) == prev_term

    def merge(self, prev_index: int, entries: Tuple[LogEntry, ...]) -> None:
        """Install ``entries`` after ``prev_index``, truncating conflicts.

        Callers must have checked :meth:`matches` first.  An entry that is
        already present with the same term is left untouched (idempotent
        re-delivery); a term conflict truncates the suffix from that point.
        """
        index = prev_index
        for entry in entries:
            index += 1
            if index <= self.last_index:
                if self.term_at(index) == entry.term:
                    continue
                if index <= self.commit_index:
                    raise SimulationError(
                        f"consensus log asked to truncate committed entry {index} "
                        f"(commit_index={self.commit_index}): election safety is broken"
                    )
                for truncated in self._entries[index - 1:]:
                    self._unregister(truncated)
                del self._entries[index - 1:]
            self._entries.append(entry)
            self._register(entry)

    # ------------------------------------------------------------------
    # Commit / apply bookkeeping
    # ------------------------------------------------------------------
    def advance_commit(self, index: int) -> int:
        """Raise the commit index (clamped to the log end); returns it."""
        index = min(int(index), self.last_index)
        if index > self.commit_index:
            self.commit_index = index
        return self.commit_index

    def take_unapplied(self) -> Tuple[Tuple[int, LogEntry], ...]:
        """Committed-but-unapplied ``(index, entry)`` pairs, advancing the
        apply cursor — each committed entry is handed out exactly once."""
        if self.last_applied >= self.commit_index:
            return ()
        newly = tuple(
            (i, self._entries[i - 1])
            for i in range(self.last_applied + 1, self.commit_index + 1)
        )
        self.last_applied = self.commit_index
        return newly

    # ------------------------------------------------------------------
    # Election support
    # ------------------------------------------------------------------
    def up_to_date(self, last_index: int, last_term: int) -> bool:
        """Raft's voting restriction: is ``(last_term, last_index)`` at least
        as up-to-date as this log?  Guarantees a new leader holds every
        committed entry (leader completeness)."""
        return (last_term, last_index) >= (self.last_term, self.last_index)

    def describe(self) -> str:
        return (
            f"ConsensusLog(len={self.last_index}, commit={self.commit_index}, "
            f"applied={self.last_applied})"
        )
