"""``ReplicatedCoordinator``: the consensus member automaton.

A group of these automata replaces the designated coordinator server of the
coordinator-dependent protocols (the ``List`` of algorithms B/C, OCC's
timestamp oracle) with a replicated state machine.  Clients *broadcast* each
coordinator request to every member — exactly the send-to-all discipline the
quorum rounds of the placement layer use — and the current leader replicates
the request through the log; once committed, it applies the request to the
state machine and sends the single reply.  Followers buffer the broadcast
copies they receive: if the leader dies before committing, the buffered
requests are what the next leader re-proposes, so no request is lost with the
crashed leader.

Exactly-once application
------------------------
A request may legally appear twice in the log (an old leader appended it, a
new leader re-proposed it from its buffer before learning of the append).
``request_id`` (``"<msg_type>/<txn>"``) dedups at apply time: the state
machine transition runs once, the reply is memoized, and later applications
of the same id just re-send the memoized reply.  Surplus replies are dropped
by the clients (their awaits match the first), so client-visible behaviour is
exactly the single-coordinator behaviour.

Elections
---------
Event-driven Raft: a member arms its (seeded, randomized) election timer only
while it holds buffered requests that have not been committed — an election
is only needed when progress is blocked — and a firing timer re-arms instead
of electing if the leader showed signs of life since it was armed.  This
keeps fault-free executions election-free and lets every run quiesce (no
heartbeat traffic, no timer churn after the workload drains), while a dead
leader is replaced within a bounded number of timeout windows (the
``leaderless window`` regression tests pin the bound).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..ioa.actions import Message
from ..ioa.automaton import Context, ServerAutomaton
from ..ioa.errors import SimulationError
from .election import DEFAULT_TIMEOUT_RANGE, LeaderElection
from .lease import LeaderLeaseState, LeasePolicy
from .log import BATCH, NOOP, ConsensusLog, LogEntry
from .machines import CoordinatorStateMachine

#: Re-exported under the name the rest of the repository uses.
DEFAULT_ELECTION_TIMEOUT: Tuple[int, int] = DEFAULT_TIMEOUT_RANGE

#: Client-side message type asking the group to change its own membership.
RECONFIG = "cns-reconfig"

#: Log entry type carrying a configuration (``C_old,new`` or ``C_new``).
#: Configuration entries take effect as soon as they are *in the log*
#: (Raft's rule), not when they commit; while the latest config entry is a
#: joint one, elections and commits need majorities in both configurations.
CONFIG = "cns-config"


def _freeze_payload(payload: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(payload.items(), key=lambda kv: kv[0]))


class _PendingRequest:
    """A buffered client request awaiting commitment."""

    __slots__ = ("msg_type", "payload", "client")

    def __init__(self, msg_type: str, payload: Tuple[Tuple[str, Any], ...], client: str) -> None:
        self.msg_type = msg_type
        self.payload = payload
        self.client = client


class ReplicatedCoordinator(ServerAutomaton):
    """One member of the replicated coordinator group."""

    #: When set (``BuildConfig.consensus_batching``), a leader with a commit
    #: round in flight buffers further client requests and packs everything
    #: buffered into **one** :data:`~repro.consensus.log.BATCH` entry when the
    #: round lands — one replication round commits the whole burst.  Sub-
    #: requests keep their own ``request_id``, so exactly-once application and
    #: reply memoization are unchanged.  Off by default: batching coalesces
    #: log entries and so perturbs seeded schedules (golden traces pin the
    #: unbatched shape).
    append_batching: bool = False

    #: When set (``BuildConfig.fanout_batching``), each replication fan-out
    #: (one append per peer) is emitted inside a kernel flight, so one
    #: scheduler event delivers the whole round instead of one per peer.
    batch_fanout: bool = False

    #: Stable storage (``BuildConfig.persistence``): when attached via
    #: :meth:`attach_store`, term/vote/log/commit write through before they
    #: take effect, and ``forget()`` recovers from the store instead of
    #: coming back blank — crash-with-amnesia degrades to ordinary
    #: crash-recovery, restoring Raft's persistence assumption.
    stable_store: Optional[Any] = None

    #: When set, checkpoint the state machine and compact the log every
    #: time the applied-but-uncompacted prefix reaches this many entries
    #: (``PersistencePolicy.compact_every``).
    compact_every: Optional[int] = None

    #: When set (``BuildConfig.leases``), the leader answers read-only
    #: requests (``machine.read_only_types``) locally from its applied state
    #: machine under a quorum-proven lease instead of committing a log entry
    #: — see :mod:`repro.consensus.lease`.  Off by default: the lease fast
    #: path adds messages, payload fields and trace actions, so golden
    #: traces pin the lease-free shape.
    lease_policy: Optional[LeasePolicy] = None

    def __init__(
        self,
        name: str,
        group: Sequence[str],
        machine: CoordinatorStateMachine,
        seed: int = 0,
        election_timeout: Tuple[int, int] = DEFAULT_ELECTION_TIMEOUT,
        bootstrap_leader: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        self.group: Tuple[str, ...] = tuple(group)
        if name not in self.group:
            raise SimulationError(f"consensus member {name!r} is not in its group {self.group}")
        self.machine = machine
        self.seed = seed
        self.election_timeout = tuple(election_timeout)
        #: the configuration this member was constructed with; the live
        #: ``self.group`` is re-derived from the newest config entry in the
        #: log (``_refresh_config``) and falls back to this one.
        self._initial_group: Tuple[str, ...] = self.group
        #: ``(old, new)`` while the newest config entry in the log is joint
        self.joint: Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]] = None
        #: a late-joining member names a *current* member as its bootstrap
        #: leader so it never believes itself leader of term 1
        self.bootstrap_leader = bootstrap_leader if bootstrap_leader is not None else self.group[0]
        self.election = LeaderElection(
            member=name,
            index=self.group.index(name),
            group_size=len(self.group),
            initial_leader=self.bootstrap_leader,
            seed=seed,
            timeout_range=self.election_timeout,
        )
        self.log = ConsensusLog()
        #: known leader of the current term (None while electing)
        self.leader: Optional[str] = self.bootstrap_leader
        #: set when this leader committed a C_new that excludes it: hand off
        #: leadership once the commit has been broadcast
        self._handoff_pending = False
        #: buffered client requests not yet known committed (insertion order)
        self.pending: "OrderedDict[str, _PendingRequest]" = OrderedDict()
        #: leader-side batch buffer (``append_batching`` only): requests that
        #: arrived while a commit round was in flight, awaiting the flush
        self._batch: "OrderedDict[str, _PendingRequest]" = OrderedDict()
        #: request_id -> (client, reply_type, reply_payload) for every applied
        #: request — the RSM reply cache that makes re-application idempotent
        self.applied_replies: Dict[str, Tuple[str, str, Dict[str, Any]]] = {}
        # leader-side replication cursors
        self.next_index: Dict[str, int] = {}
        self.match_index: Dict[str, int] = {}
        # election-timer bookkeeping (at most one live timer per member)
        self._timer_live = False
        self._armed_at = 0
        self._last_heard = 0
        #: set when this member refused a vote to a candidate with an
        #: inferior log while no leader is known: the group needs a healthy
        #: member to campaign (and re-replicate) or the stale candidate
        #: disrupts forever — see ``_on_vote_request``
        self._repair = False
        #: the newest state-machine snapshot this member holds (its own
        #: checkpoint, a leader-installed one, or the recovered one); the
        #: log's compacted prefix is exactly what this covers
        self._snapshot: Optional[Dict[str, Any]] = None
        #: times this member recovered from stable storage (stats)
        self.recoveries = 0
        #: checkpoints this member took (stats)
        self.checkpoints = 0
        # Lease state (all inert unless ``lease_policy`` is installed):
        #: leader-side lease bookkeeping, created lazily on the first read
        self._lease: Optional[LeaderLeaseState] = None
        #: first log index of this member's current leadership term; local
        #: reads are refused until the commit index reaches it (the leader
        #: must know its applied state covers every earlier-term commit)
        self._term_start_index = 0
        #: follower-side promise: grant no votes to members other than
        #: ``_promise_holder`` while ``vtime < _promise_until`` — the other
        #: half of the lease proof (volatile, like term/vote without a
        #: stable store: amnesia resets it, the documented hazard)
        self._promise_until = 0
        self._promise_holder: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def peers(self) -> Tuple[str, ...]:
        return tuple(m for m in self.group if m != self.name)

    # ------------------------------------------------------------------
    # Configuration (joint consensus)
    # ------------------------------------------------------------------
    def _quorum_ok(self, supporters) -> bool:
        """Whether ``supporters`` form a quorum of the *current* config.

        Under a joint configuration a quorum must hold in **both** the old
        and the new group (members in both count for both) — the rule that
        makes any quorum taken during the transition intersect any quorum of
        either epoch, so two leaders (or two commits) can never coexist
        across the change.
        """
        members = set(supporters)

        def majority_of(group: Tuple[str, ...]) -> bool:
            return len(members & set(group)) >= len(group) // 2 + 1

        if self.joint is not None:
            old, new = self.joint
            return majority_of(old) and majority_of(new)
        return majority_of(self.group)

    def _adopt_config(self, payload: Mapping[str, Any]) -> None:
        if payload.get("phase") == "new":
            self.group = tuple(payload["group"])
            self.joint = None
        else:
            old, new = tuple(payload["old"]), tuple(payload["new"])
            self.joint = (old, new)
            self.group = old + tuple(m for m in new if m not in old)

    def _refresh_config(self) -> None:
        """Adopt the newest configuration entry in the log (Raft's rule:
        a configuration takes effect when it is appended, not committed).
        A compacted log falls back to the configuration its snapshot
        carries, then to the construction-time group."""
        for entry in reversed(self.log.entries):
            if entry.msg_type != CONFIG:
                continue
            self._adopt_config(dict(entry.payload))
            return
        if self._snapshot is not None and self._snapshot.get("config") is not None:
            self._adopt_config(dict(self._snapshot["config"]))
            return
        self.group = self._initial_group
        self.joint = None

    def _append_config_entry(
        self,
        request_id: str,
        phase: str,
        payload: Mapping[str, Any],
        client: str,
        ctx: Context,
    ) -> None:
        """Append one configuration entry and adopt it (no replication —
        shared by the leader proposal path and the post-election re-propose
        loop, which replicates once after all re-proposals)."""
        self.log.append(
            LogEntry(
                term=self.election.term,
                request_id=request_id,
                msg_type=CONFIG,
                payload=_freeze_payload({"phase": phase, **payload}),
                client=client,
                proposed_at=ctx.vtime,
            )
        )
        self._refresh_config()
        ctx.internal(
            consensus="config",
            phase=phase,
            term=self.election.term,
            member=self.name,
            group=",".join(self.joint[1] if self.joint else self.group),
        )

    def _append_config(
        self,
        request_id: str,
        phase: str,
        payload: Mapping[str, Any],
        client: str,
        ctx: Context,
    ) -> None:
        """Append a configuration entry, adopt it, and replicate."""
        self._append_config_entry(request_id, phase, payload, client, ctx)
        self._replicate(ctx)
        self._maybe_commit(ctx)

    def forget(self) -> None:
        """Crash-with-amnesia hook: lose *all* volatile state.

        Raft's safety argument assumes term/vote/log survive crashes; an
        amnesiac member can double-vote, so replicated-coordinator systems
        model crash-recovery with durable state.  Without a stable store
        this hook keeps the fault plane's contract honest (tests document
        the hazard); with one attached (``BuildConfig.persistence``) the
        volatile wipe is followed by :meth:`_recover`, and amnesia degrades
        to ordinary crash-recovery.
        """
        self.group = self._initial_group
        self.joint = None
        self._handoff_pending = False
        self.election = LeaderElection(
            member=self.name,
            index=self.group.index(self.name),
            group_size=len(self.group),
            initial_leader=self.bootstrap_leader,
            seed=self.seed,
            timeout_range=self.election_timeout,
        )
        if self.name == self.bootstrap_leader:
            # A blank bootstrap leader must not resume leading: it lost its log.
            self.election.step_down(self.election.term)
        self.log = ConsensusLog()
        self.leader = None
        self.pending = OrderedDict()
        self._batch = OrderedDict()
        self.applied_replies = {}
        self.next_index = {}
        self.match_index = {}
        self.machine.reset()
        self._timer_live = False
        self._repair = False
        self._snapshot = None
        self._lease = None
        self._term_start_index = 0
        self._promise_until = 0
        self._promise_holder = None
        if self.stable_store is not None:
            self._recover()

    # ------------------------------------------------------------------
    # Stable storage (persistence plane)
    # ------------------------------------------------------------------
    def attach_store(self, store: Any, compact_every: Optional[int] = None) -> None:
        """Attach durable storage; all later term/vote/log mutations write
        through *before* they take effect.  An empty store is sealed with
        the current election state (so a crash before any mutation still
        recovers the bootstrap vote); a non-empty one — surviving storage a
        rebuilt system was pointed at — is recovered from immediately."""
        self.stable_store = store
        if compact_every is not None:
            self.compact_every = int(compact_every)
        if store.is_empty():
            store.save_meta(self.election.term, self.election.voted_for)
            self.election.attach_store(store)
            self.log.attach_store(store)
        else:
            self._recover()

    def _recover(self) -> None:
        """Reload term/vote/log from the stable store and replay the
        committed prefix into the (reset) state machine.  Trace-invisible:
        no sends, no internal actions — recovery changes what the member
        *knows*, and only its later behaviour shows it."""
        store = self.stable_store
        meta = store.load_meta()
        if meta is not None:
            self.election.restore(*meta)
        self.election.attach_store(store)
        self.leader = None
        snapshot = store.load_snapshot()
        if snapshot is not None:
            self._snapshot = snapshot
            self.machine.restore(snapshot["machine"])
            self.applied_replies = dict(snapshot["replies"])
            self.log.restore(
                int(snapshot["index"]), int(snapshot["term"]),
                store.load_entries(), store.load_commit(),
            )
        else:
            self.log.restore(0, 0, store.load_entries(), store.load_commit())
        self.log.attach_store(store)
        self._refresh_config()
        self._replay_committed()
        self.recoveries += 1

    def _replay_committed(self) -> None:
        """Recovery twin of :meth:`_apply_committed`: same exactly-once
        dedup, but applied silently — no replies are re-sent (clients got
        them before the crash; a retransmitted request finds the memoized
        reply) and no trace records are appended."""
        for _index, entry in self.log.take_unapplied():
            if entry.is_noop():
                continue
            if entry.msg_type == BATCH:
                for request_id, msg_type, payload, client in entry.batch_requests():
                    if request_id not in self.applied_replies:
                        reply_type, reply_payload = self.machine.apply(msg_type, dict(payload))
                        self.applied_replies[request_id] = (client, reply_type, reply_payload)
                continue
            if entry.msg_type == CONFIG:
                payload = dict(entry.payload)
                if payload.get("phase") == "new":
                    request_id = str(payload.get("request", ""))
                    if request_id and request_id not in self.applied_replies:
                        self.applied_replies[request_id] = (
                            entry.client,
                            "cns-reconfig-done",
                            {
                                "reconfig": int(request_id.rsplit("/", 1)[-1]),
                                "group": tuple(payload.get("group", ())),
                            },
                        )
                continue
            if entry.request_id not in self.applied_replies:
                reply_type, reply_payload = self.machine.apply(
                    entry.msg_type, dict(entry.payload)
                )
                self.applied_replies[entry.request_id] = (entry.client, reply_type, reply_payload)

    # ------------------------------------------------------------------
    # Checkpointing / log compaction
    # ------------------------------------------------------------------
    def _config_at(self, through: int) -> Optional[Tuple[Tuple[str, Any], ...]]:
        """The configuration a snapshot at ``through`` must carry: the
        newest CONFIG payload at an index <= ``through``, falling back to
        the previous snapshot's."""
        for index in range(through, self.log.snapshot_index, -1):
            entry = self.log.entry(index)
            if entry.msg_type == CONFIG:
                return entry.payload
        return self._snapshot.get("config") if self._snapshot is not None else None

    def checkpoint(self) -> int:
        """Snapshot the applied state machine and compact the log through
        ``last_applied``; returns the number of entries discarded.

        Deliberately refused while the newest configuration is joint: the
        joint entry must stay addressable until C_new is proposed, or a
        post-election leader could never finish the membership change.
        Trace-invisible (no sends, no internal actions), so compaction is a
        pure space optimisation — verdict tests pin that it never changes
        committed state.
        """
        if self.joint is not None:
            return 0
        through = self.log.last_applied
        if through <= self.log.snapshot_index:
            return 0
        snapshot: Dict[str, Any] = {
            "index": through,
            "term": self.log.term_at(through),
            "machine": self.machine.snapshot(),
            "replies": dict(self.applied_replies),
            "config": self._config_at(through),
        }
        dropped = self.log.compact(snapshot)
        if dropped:
            self._snapshot = snapshot
            self.checkpoints += 1
        return dropped

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, message: Message, ctx: Context) -> None:
        msg_type = message.msg_type
        if msg_type in self.machine.request_types or msg_type == RECONFIG:
            self._on_client_request(message, ctx)
        elif msg_type == "cns-append":
            self._on_append(message, ctx)
        elif msg_type == "cns-snapshot":
            self._on_snapshot(message, ctx)
        elif msg_type == "cns-append-ack":
            self._on_append_ack(message, ctx)
        elif msg_type == "cns-vote-req":
            self._on_vote_request(message, ctx)
        elif msg_type == "cns-vote":
            self._on_vote(message, ctx)
        elif msg_type == "cns-lease":
            self._on_lease(message, ctx)
        elif msg_type == "cns-lease-ack":
            self._on_lease_ack(message, ctx)

    # ------------------------------------------------------------------
    # Client requests
    # ------------------------------------------------------------------
    def _on_client_request(self, message: Message, ctx: Context) -> None:
        ident = message.get("txn") if message.msg_type != RECONFIG else message.get("reconfig")
        request_id = f"{message.msg_type}/{ident}"
        if request_id in self.applied_replies:
            # Already served; only the leader re-sends (followers stay quiet
            # so the client sees at most a few copies, never a quorum storm).
            if self.election.is_leader:
                self._send_reply(request_id, ctx)
            return
        if self.election.is_leader:
            if self.log.contains_request(request_id) or request_id in self._batch:
                return
            if (
                self.lease_policy is not None
                and message.msg_type in self.machine.read_only_types
            ):
                self._on_read_request(request_id, message, ctx)
                return
            if message.msg_type == RECONFIG:
                if self.joint is not None:
                    raise SimulationError(
                        "a second membership change arrived while C_old,new is "
                        "in flight: at most one configuration change at a time"
                    )
                # A membership change enters the log as the joint
                # configuration C_old,new (adopted on append).
                self._append_config(
                    request_id,
                    "joint",
                    {
                        "old": tuple(message.get("old", ())),
                        "new": tuple(message.get("new", ())),
                    },
                    client=message.src,
                    ctx=ctx,
                )
                return
            if self.append_batching:
                # Buffer while a commit round is in flight; the flush at the
                # end of that round packs the whole buffer into one entry.
                self._batch[request_id] = _PendingRequest(
                    message.msg_type, _freeze_payload(message.payload), message.src
                )
                if self.log.commit_index == self.log.last_index:
                    self._flush_batch(ctx)
                return
            self.log.append(
                LogEntry(
                    term=self.election.term,
                    request_id=request_id,
                    msg_type=message.msg_type,
                    payload=_freeze_payload(message.payload),
                    client=message.src,
                    proposed_at=ctx.vtime,
                )
            )
            self._replicate(ctx)
            self._maybe_commit(ctx)
            return
        # Follower / candidate: buffer the broadcast copy and make sure an
        # election timer is running — if the leader never commits this, the
        # timer is what converts the buffered copy into a re-proposal.
        self.pending.setdefault(
            request_id,
            _PendingRequest(message.msg_type, _freeze_payload(message.payload), message.src),
        )
        self._ensure_timer(ctx)

    # ------------------------------------------------------------------
    # Replication (leader side)
    # ------------------------------------------------------------------
    def _append_requests(
        self, requests: Sequence[Tuple[str, str, Tuple[Tuple[str, Any], ...], str]], ctx: Context
    ) -> None:
        """Append buffered ``(request_id, msg_type, payload, client)`` tuples:
        one ordinary entry for a single request, one BATCH entry otherwise."""
        if not requests:
            return
        if len(requests) == 1:
            request_id, msg_type, payload, client = requests[0]
            self.log.append(
                LogEntry(
                    term=self.election.term,
                    request_id=request_id,
                    msg_type=msg_type,
                    payload=payload,
                    client=client,
                    proposed_at=ctx.vtime,
                )
            )
            return
        self.log.append(
            LogEntry(
                term=self.election.term,
                request_id=f"{BATCH}/{self.election.term}.{self.log.last_index + 1}",
                msg_type=BATCH,
                payload=(("requests", tuple(requests)),),
                proposed_at=ctx.vtime,
            )
        )

    def _flush_batch(self, ctx: Context) -> None:
        """Pack everything in the batch buffer into one log entry and start
        its replication round (leader, ``append_batching`` only)."""
        if not self._batch:
            return
        requests = tuple(
            (request_id, request.msg_type, request.payload, request.client)
            for request_id, request in self._batch.items()
        )
        self._batch = OrderedDict()
        self._append_requests(requests, ctx)
        self._replicate(ctx)
        self._maybe_commit(ctx)

    def _replicate(self, ctx: Context) -> None:
        if self.batch_fanout and len(self.peers) > 1:
            with ctx.flight():
                for peer in self.peers:
                    self._send_append(peer, ctx)
            return
        for peer in self.peers:
            self._send_append(peer, ctx)

    def _send_append(self, peer: str, ctx: Context) -> None:
        next_index = self.next_index.get(peer, self.log.last_index + 1)
        if next_index <= self.log.snapshot_index:
            # The entries this peer needs were compacted away: ship the
            # snapshot instead (Raft's InstallSnapshot); ordinary appends
            # resume from the snapshot index once the peer acks it.
            self._send_snapshot(peer, ctx)
            return
        prev_index = next_index - 1
        ctx.send(
            peer,
            "cns-append",
            {
                "term": self.election.term,
                "prev_index": prev_index,
                "prev_term": self.log.term_at(prev_index) if prev_index <= self.log.last_index else 0,
                "entries": self.log.entries_from(next_index),
                "commit": self.log.commit_index,
            },
            phase="consensus",
        )

    def _send_snapshot(self, peer: str, ctx: Context) -> None:
        if self._snapshot is None:
            raise SimulationError(
                f"{self.name} compacted its log without retaining a snapshot"
            )
        ctx.send(
            peer,
            "cns-snapshot",
            {"term": self.election.term, "snapshot": self._snapshot},
            phase="consensus",
        )

    def _maybe_commit(self, ctx: Context) -> None:
        """Advance the commit index to the highest current-term entry
        replicated on a majority (counting self), then apply.

        An advanced commit is immediately broadcast (an append carrying the
        new commit index, usually with no entries): followers apply and drop
        the request from their buffers, which is what lets their election
        timers quiesce — without it the *last* request of a burst would sit
        uncommitted at the followers forever and trigger a needless election
        at idle.
        """
        before = self.log.commit_index
        for index in range(self.log.last_index, self.log.commit_index, -1):
            if self.log.term_at(index) != self.election.term:
                break
            supporters = {self.name} | {
                p for p in self.peers if self.match_index.get(p, 0) >= index
            }
            if self._quorum_ok(supporters):
                self.log.advance_commit(index)
                break
        self._apply_committed(ctx)
        if self.log.commit_index > before:
            self._replicate(ctx)
        if (
            self._batch
            and self.election.is_leader
            and self.log.commit_index == self.log.last_index
        ):
            # The in-flight round landed: open the next one with everything
            # that queued up behind it, packed into a single entry.
            self._flush_batch(ctx)
        if self.lease_policy is not None and self.log.commit_index > before:
            # An advanced commit may satisfy the current-term guard that
            # parked reads were waiting on.
            self._lease_pump(ctx)
        if self._handoff_pending and self.election.is_leader:
            # This leader committed a C_new that excludes it: the commit has
            # been broadcast above, so abdicate — the remaining members hold
            # an election the next time progress needs a leader.
            self._handoff_pending = False
            ctx.internal(
                consensus="leader-handoff", term=self.election.term, member=self.name
            )
            self._step_down(self.election.term, leader=None, ctx=ctx)

    def _on_append_ack(self, message: Message, ctx: Context) -> None:
        term = int(message.get("term", 0))
        if term > self.election.term:
            self._step_down(term, leader=None, ctx=ctx)
            return
        if not self.election.is_leader or term < self.election.term:
            return
        peer = message.src
        if message.get("ok"):
            match = int(message.get("match", 0))
            self.match_index[peer] = max(self.match_index.get(peer, 0), match)
            self.next_index[peer] = self.match_index[peer] + 1
            self._maybe_commit(ctx)
        else:
            # Fast backtrack to the follower's committed prefix, which the
            # log-matching property guarantees agrees with ours.
            self.next_index[peer] = int(message.get("match", 0)) + 1
            self._send_append(peer, ctx)

    # ------------------------------------------------------------------
    # Leader leases (lease_policy only; see repro.consensus.lease)
    # ------------------------------------------------------------------
    def _lease_duration(self) -> int:
        return self.lease_policy.resolve(self.election_timeout)

    def _lease_state(self) -> LeaderLeaseState:
        if self._lease is None:
            self._lease = LeaderLeaseState(self._lease_duration())
        return self._lease

    def _on_read_request(self, request_id: str, message: Message, ctx: Context) -> None:
        """Leader fast path for a read-only request: park it on the lease
        and pump — a live proven lease serves it immediately (latency 0),
        otherwise the extension round in flight proves the window for every
        read parked behind it in one evaluation."""
        lease = self._lease_state()
        if request_id in lease.reads:
            return
        if lease.expiry and not lease.live(ctx.vtime) and not lease.expired_logged:
            lease.expired_logged = True
            ctx.internal(
                consensus="lease-expired",
                term=self.election.term,
                member=self.name,
                until=lease.expiry,
                vtime=ctx.vtime,
            )
        lease.reads[request_id] = (
            _PendingRequest(message.msg_type, _freeze_payload(message.payload), message.src),
            ctx.vtime,
        )
        self._lease_pump(ctx)

    def _serve_read_locally(
        self, request_id: str, request: _PendingRequest, arrived_at: int, ctx: Context
    ) -> None:
        """Answer a read from the applied state machine without a log entry.

        Read-only transitions are pure, so applying one touches no state;
        the reply is memoized like a committed one (retransmissions dedup)
        and the request id queues for the next ``cns-lease`` notify round so
        followers drop their broadcast copies and quiesce."""
        reply_type, reply_payload = self.machine.apply(request.msg_type, dict(request.payload))
        self.applied_replies[request_id] = (request.client, reply_type, reply_payload)
        self.pending.pop(request_id, None)
        lease = self._lease
        lease.notify.append(request_id)
        ctx.internal(
            consensus="local-read",
            term=self.election.term,
            member=self.name,
            request=request_id,
            until=lease.expiry,
            vtime=ctx.vtime,
            read_latency=max(0, ctx.vtime - arrived_at),
        )
        self._send_reply(request_id, ctx)

    def _lease_pump(self, ctx: Context) -> None:
        """Serve every parked read the proven window covers, then keep an
        extension round in flight while anything still needs one."""
        lease = self._lease
        if lease is None or not self.election.is_leader:
            return
        if (
            lease.reads
            and lease.live(ctx.vtime)
            and self.log.commit_index >= self._term_start_index
        ):
            parked = list(lease.reads.items())
            lease.reads = OrderedDict()
            for request_id, (request, arrived_at) in parked:
                if request_id in self.applied_replies:
                    self._send_reply(request_id, ctx)
                    continue
                self._serve_read_locally(request_id, request, arrived_at, ctx)
        self._maybe_start_lease_round(ctx)

    def _maybe_start_lease_round(self, ctx: Context) -> None:
        lease = self._lease
        if lease is None or lease.round_open or not self.election.is_leader:
            return
        if not lease.reads and not lease.notify:
            return
        lease.round_open = True
        lease.round_sent_at = ctx.vtime
        # The leader's own ack is implicit at send time (it holds its log).
        lease.record_ack(self.name, ctx.vtime)
        served = tuple(lease.notify)
        lease.notify = []
        payload = {"term": self.election.term, "at": lease.round_sent_at, "served": served}
        if self.batch_fanout and len(self.peers) > 1:
            with ctx.flight():
                for peer in self.peers:
                    ctx.send(peer, "cns-lease", payload, phase="consensus")
        else:
            for peer in self.peers:
                ctx.send(peer, "cns-lease", payload, phase="consensus")
        self._refresh_lease(ctx)  # single-member groups prove instantly

    def _refresh_lease(self, ctx: Context) -> None:
        """Recompute the proven lease window from the ack times and close
        the open round once a quorum has acknowledged it."""
        lease = self._lease
        start = lease.proven_start(self._quorum_ok)
        if start is not None:
            new_expiry = start + lease.duration
            if new_expiry > lease.expiry:
                kind = (
                    "lease-renewed"
                    if lease.expiry and lease.live(ctx.vtime)
                    else "lease-acquired"
                )
                lease.expiry = new_expiry
                lease.expired_logged = False
                ctx.internal(
                    consensus=kind,
                    term=self.election.term,
                    member=self.name,
                    start=start,
                    until=new_expiry,
                    vtime=ctx.vtime,
                )
        if lease.round_open and lease.expiry >= lease.round_sent_at + lease.duration:
            lease.round_open = False
            self._lease_pump(ctx)

    def _on_lease(self, message: Message, ctx: Context) -> None:
        """Follower side of a ``cns-lease`` round: promise not to elect
        anyone else for one lease duration from *local* receive time (the
        virtual clock is skew-free, so receive time >= send time and the
        promise provably covers the leader's window), drop the broadcast
        copies of locally-served reads, and acknowledge."""
        if self.lease_policy is None:
            return
        term = int(message.get("term", 0))
        at = int(message.get("at", 0))
        if term < self.election.term:
            ctx.send(
                message.src,
                "cns-lease-ack",
                {"term": self.election.term, "at": at, "ok": False},
                phase="consensus",
            )
            return
        if term > self.election.term or not self.election.is_follower:
            self._step_down(term, leader=message.src, ctx=ctx)
        self.leader = message.src
        self._last_heard = ctx.vtime
        self._repair = False
        until = ctx.vtime + self._lease_duration()
        if until > self._promise_until:
            self._promise_until = until
        self._promise_holder = message.src
        for request_id in tuple(message.get("served", ())):
            self.pending.pop(request_id, None)
        ctx.send(
            message.src,
            "cns-lease-ack",
            {"term": self.election.term, "at": at, "ok": True},
            phase="consensus",
        )

    def _on_lease_ack(self, message: Message, ctx: Context) -> None:
        term = int(message.get("term", 0))
        if term > self.election.term:
            self._step_down(term, leader=None, ctx=ctx)
            return
        if not self.election.is_leader or term < self.election.term:
            return
        if self._lease is None or not message.get("ok"):
            return
        self._lease.record_ack(message.src, int(message.get("at", 0)))
        self._refresh_lease(ctx)

    # ------------------------------------------------------------------
    # Replication (follower side)
    # ------------------------------------------------------------------
    def _on_append(self, message: Message, ctx: Context) -> None:
        term = int(message.get("term", 0))
        if term < self.election.term:
            ctx.send(
                message.src,
                "cns-append-ack",
                {"term": self.election.term, "ok": False, "match": self.log.commit_index},
                phase="consensus",
            )
            return
        if term > self.election.term or not self.election.is_follower:
            self._step_down(term, leader=message.src, ctx=ctx)
        self.leader = message.src
        self._last_heard = ctx.vtime
        self._repair = False  # a live leader is doing the re-replication
        prev_index = int(message.get("prev_index", 0))
        prev_term = int(message.get("prev_term", 0))
        if not self.log.matches(prev_index, prev_term):
            ctx.send(
                message.src,
                "cns-append-ack",
                {"term": self.election.term, "ok": False, "match": self.log.commit_index},
                phase="consensus",
            )
            return
        entries = tuple(message.get("entries", ()))
        if entries:
            self.log.merge(prev_index, entries)
            # A merge may have installed *or truncated* a configuration
            # entry; re-derive the active config from the log (cheap: logs
            # are short).  Empty appends (heartbeats, commit broadcasts)
            # cannot change the log, so they skip both.
            self._refresh_config()
        self.log.advance_commit(int(message.get("commit", 0)))
        self._apply_committed(ctx)
        # Acknowledge exactly the prefix this append established — a stale
        # longer suffix past it must not inflate the leader's match cursor.
        # Floor at the local snapshot index (a no-op without compaction):
        # entries below it were skipped as already-committed, and acking
        # less would walk the leader's next_index into the compacted prefix
        # forever.
        ctx.send(
            message.src,
            "cns-append-ack",
            {
                "term": self.election.term,
                "ok": True,
                "match": max(prev_index + len(entries), self.log.snapshot_index),
            },
            phase="consensus",
        )

    def _on_snapshot(self, message: Message, ctx: Context) -> None:
        """Install a leader-shipped snapshot (the compacted counterpart of
        :meth:`_on_append`): adopt machine state, reply cache and config as
        of the snapshot index, then ack so ordinary appends resume."""
        term = int(message.get("term", 0))
        if term < self.election.term:
            ctx.send(
                message.src,
                "cns-append-ack",
                {"term": self.election.term, "ok": False, "match": self.log.commit_index},
                phase="consensus",
            )
            return
        if term > self.election.term or not self.election.is_follower:
            self._step_down(term, leader=message.src, ctx=ctx)
        self.leader = message.src
        self._last_heard = ctx.vtime
        self._repair = False
        snapshot = dict(message.get("snapshot") or {})
        if int(snapshot.get("index", 0)) > self.log.snapshot_index:
            if self.log.install_snapshot(snapshot):
                self.machine.restore(snapshot["machine"])
                self.applied_replies = dict(snapshot["replies"])
            else:
                # Already applied past the snapshot: keep the newer machine,
                # just absorb any replies we never saw.
                for request_id, reply in dict(snapshot["replies"]).items():
                    self.applied_replies.setdefault(request_id, reply)
            self._snapshot = snapshot
            self._refresh_config()
            for request_id in [r for r in self.pending if r in self.applied_replies]:
                self.pending.pop(request_id, None)
        ctx.send(
            message.src,
            "cns-append-ack",
            {"term": self.election.term, "ok": True, "match": self.log.commit_index},
            phase="consensus",
        )

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------
    def _on_vote_request(self, message: Message, ctx: Context) -> None:
        term = int(message.get("term", 0))
        candidate = message.src
        was_leader = self.election.is_leader
        if term > self.election.term:
            self._step_down(term, leader=None, ctx=ctx)
        granted = (
            self.election.may_grant(candidate, term)
            and not self.election.is_leader
            and candidate in self.group  # elections are restricted to the current config
            and self.log.up_to_date(
                int(message.get("last_index", 0)), int(message.get("last_term", 0))
            )
            # Lease promise: while this member vouches for a lease holder it
            # elects nobody else — by quorum intersection no election can
            # complete inside a proven lease window, so the candidate waits
            # the old lease out.  (The holder itself may reclaim: a
            # same-member re-election cannot produce a stale read.)
            and not (
                self.lease_policy is not None
                and self._promise_until > ctx.vtime
                and candidate != self._promise_holder
            )
        )
        if granted:
            self.election.grant(candidate)
            self._last_heard = ctx.vtime  # a live candidacy counts as liveness
        ctx.send(
            candidate,
            "cns-vote",
            {"term": self.election.term, "granted": granted},
            phase="consensus",
        )
        if not granted and self.name in self.group and not self.election.is_leader:
            # A stale member (e.g. back from a healed partition, campaigning
            # on requests the group long committed) can depose a quiescent
            # leader it cannot replace: without heartbeats nobody would ever
            # re-replicate, so the stale candidate campaigns forever.  The
            # refusers hold better logs — a deposed leader reclaims
            # leadership immediately (asymmetric, so no duel), and refusing
            # followers arm their randomized repair timers; whichever
            # campaigns first wins, and the new term's replication catches
            # the stale member up, drains its buffer and restores quiescence.
            if was_leader:
                self._start_election(ctx)
            else:
                self._repair = True
                self._ensure_timer(ctx)

    def _on_vote(self, message: Message, ctx: Context) -> None:
        term = int(message.get("term", 0))
        if term > self.election.term:
            self._step_down(term, leader=None, ctx=ctx)
            return
        if not self.election.is_candidate or term < self.election.term:
            return
        if message.get("granted"):
            self.election.record_vote(message.src)
            if self._quorum_ok(self.election.votes):
                self._become_leader(ctx)

    def _start_election(self, ctx: Context) -> None:
        term = self.election.start_candidacy()
        self.leader = None
        ctx.internal(consensus="candidacy", term=term, member=self.name)
        for peer in self.peers:
            ctx.send(
                peer,
                "cns-vote-req",
                {
                    "term": term,
                    "last_index": self.log.last_index,
                    "last_term": self.log.last_term,
                },
                phase="consensus",
            )
        self.election.record_vote(self.name)
        if self._quorum_ok(self.election.votes):  # single-survivor groups
            self._become_leader(ctx)

    def _become_leader(self, ctx: Context) -> None:
        self.election.become_leader()
        self.leader = self.name
        self._repair = False
        self.next_index = {p: self.log.last_index + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        # A fresh leader holds no lease and serves no local read until its
        # current-term no-op commits (its applied state must cover every
        # earlier-term commit before a local read can reflect them).
        self._lease = None
        self._term_start_index = self.log.last_index + 1
        ctx.internal(
            consensus="became-leader",
            term=self.election.term,
            member=self.name,
            vtime=ctx.vtime,
        )
        # A no-op of the new term commits every prior-term entry beneath it
        # (Raft §5.4.2), and the buffered requests the old leader never
        # committed are re-proposed behind it.
        self.log.append(
            LogEntry(
                term=self.election.term,
                request_id=f"{NOOP}/{self.election.term}/{self.name}",
                msg_type=NOOP,
                proposed_at=ctx.vtime,
            )
        )
        batchable: List[Tuple[str, str, Tuple[Tuple[str, Any], ...], str]] = []
        for request_id, request in self.pending.items():
            if self.log.contains_request(request_id) or request_id in self.applied_replies:
                continue
            if request.msg_type == RECONFIG:
                if self.joint is not None:
                    continue  # another change is mid-flight; stays buffered
                # Re-propose a buffered membership change as its joint entry.
                payload = dict(request.payload)
                self._append_config_entry(
                    request_id,
                    "joint",
                    {
                        "old": tuple(payload.get("old", ())),
                        "new": tuple(payload.get("new", ())),
                    },
                    client=request.client,
                    ctx=ctx,
                )
                continue
            if self.append_batching:
                # Re-proposals ride in one packed entry too.
                batchable.append(
                    (request_id, request.msg_type, request.payload, request.client)
                )
                continue
            self.log.append(
                LogEntry(
                    term=self.election.term,
                    request_id=request_id,
                    msg_type=request.msg_type,
                    payload=request.payload,
                    client=request.client,
                    proposed_at=ctx.vtime,
                )
            )
        self._append_requests(batchable, ctx)
        self._maybe_advance_config(ctx)
        self._replicate(ctx)
        self._maybe_commit(ctx)

    def _step_down(self, term: int, leader: Optional[str], ctx: Context) -> None:
        was_leader = self.election.is_leader
        self.election.step_down(term)
        self.leader = leader
        if self._batch:
            # A deposed leader's unflushed batch joins its follower buffer —
            # the requests were never appended, so if the new leader also
            # lacks them (clients broadcast, but copies can still be in
            # flight) they are re-proposed from here at the next election.
            for request_id, request in self._batch.items():
                self.pending.setdefault(request_id, request)
            self._batch = OrderedDict()
        if self._lease is not None:
            # Unserved parked reads survive a deposition the same way: they
            # join the follower buffer and are re-proposed (as ordinary
            # committed entries) if no other copy reaches the new leader.
            for request_id, (request, _arrived_at) in self._lease.reads.items():
                self.pending.setdefault(request_id, request)
            self._lease = None
        if was_leader:
            ctx.internal(consensus="stepped-down", term=term, member=self.name)

    # ------------------------------------------------------------------
    # Election timer
    # ------------------------------------------------------------------
    def _ensure_timer(self, ctx: Context) -> None:
        if self._timer_live or self.election.is_leader:
            return
        self._timer_live = True
        self._armed_at = ctx.vtime
        ctx.set_timeout(self.election.next_timeout(), kind="election")

    def on_timeout(self, info: Mapping[str, Any], ctx: Context) -> None:
        self._timer_live = False
        if self.election.is_leader or not (self.pending or self._repair):
            return  # nothing blocked on a leader: quiesce
        if self.name not in self.group:
            return  # removed from the config: never campaign, await retirement
        if (
            self.lease_policy is not None
            and self._promise_until > ctx.vtime
            and self._promise_holder != self.name
        ):
            # A live lease promise: campaigning now would be refused by the
            # promiser quorum anyway — wait the old lease out, then retry.
            self._ensure_timer(ctx)
            return
        if self.election.is_follower and self._last_heard >= self._armed_at:
            # The leader (or an election) showed signs of life during this
            # window — grant another full window before interfering.
            self._ensure_timer(ctx)
            return
        self._start_election(ctx)
        self._ensure_timer(ctx)

    # ------------------------------------------------------------------
    # Apply + reply
    # ------------------------------------------------------------------
    def _maybe_advance_config(self, ctx: Context) -> None:
        """Leader rule: once the joint entry C_old,new is committed, append
        C_new (also run at election time, in case the previous leader died
        between committing the joint entry and proposing C_new)."""
        if not self.election.is_leader or self.joint is None:
            return
        # Scan stops at the snapshot: checkpoint() never compacts while the
        # newest config is joint, so a joint entry is always in the suffix.
        for index in range(self.log.last_index, self.log.snapshot_index, -1):
            entry = self.log.entry(index)
            if entry.msg_type != CONFIG:
                continue
            payload = dict(entry.payload)
            if payload.get("phase") != "joint":
                return  # newest config is already C_new
            if index > self.log.commit_index:
                return  # joint entry not committed yet
            if self.log.contains_request(f"{entry.request_id}/new"):
                return
            self._append_config(
                f"{entry.request_id}/new",
                "new",
                {"group": tuple(payload["new"]), "request": entry.request_id},
                client=entry.client,
                ctx=ctx,
            )
            return

    def _apply_config(self, entry: LogEntry, ctx: Context) -> None:
        """Apply a committed configuration entry (both phases are config-
        only: the coordinator state machine never sees them)."""
        payload = dict(entry.payload)
        if payload.get("phase") == "joint":
            self._maybe_advance_config(ctx)
            return
        # C_new committed: answer the original cns-reconfig request exactly
        # once (the reply is memoized under the *request's* id, so a re-sent
        # request after failover gets the same done message back).
        request_id = str(payload.get("request", ""))
        if request_id and request_id not in self.applied_replies:
            self.applied_replies[request_id] = (
                entry.client,
                "cns-reconfig-done",
                {
                    "reconfig": int(request_id.rsplit("/", 1)[-1]),
                    "group": tuple(payload.get("group", ())),
                },
            )
        self.pending.pop(request_id, None)
        if self.election.is_leader:
            if request_id:
                self._send_reply(request_id, ctx)
            if self.name not in tuple(payload.get("group", ())):
                self._handoff_pending = True

    def _apply_committed(self, ctx: Context) -> None:
        for index, entry in self.log.take_unapplied():
            if entry.is_noop():
                continue
            if entry.msg_type == BATCH:
                # Unpack and apply each sub-request exactly as if it had its
                # own entry: per-sub-id dedup, memoized replies, one apply
                # record each — client-visible behaviour is unchanged.
                for request_id, msg_type, payload, client in entry.batch_requests():
                    if request_id not in self.applied_replies:
                        reply_type, reply_payload = self.machine.apply(
                            msg_type, dict(payload)
                        )
                        self.applied_replies[request_id] = (client, reply_type, reply_payload)
                    self.pending.pop(request_id, None)
                    self._batch.pop(request_id, None)
                    info = dict(
                        consensus="apply",
                        index=index,
                        term=entry.term,
                        request=request_id,
                        commit_latency=max(0, ctx.vtime - entry.proposed_at),
                    )
                    if self.lease_policy is not None and msg_type in self.machine.read_only_types:
                        info["read"] = True
                    ctx.internal(**info)
                    if self.election.is_leader:
                        self._send_reply(request_id, ctx)
                continue
            if entry.msg_type == CONFIG:
                self._apply_config(entry, ctx)
                ctx.internal(
                    consensus="apply",
                    index=index,
                    term=entry.term,
                    request=entry.request_id,
                    commit_latency=max(0, ctx.vtime - entry.proposed_at),
                )
                continue
            if entry.request_id not in self.applied_replies:
                reply_type, reply_payload = self.machine.apply(
                    entry.msg_type, dict(entry.payload)
                )
                self.applied_replies[entry.request_id] = (entry.client, reply_type, reply_payload)
            self.pending.pop(entry.request_id, None)
            info = dict(
                consensus="apply",
                index=index,
                term=entry.term,
                request=entry.request_id,
                commit_latency=max(0, ctx.vtime - entry.proposed_at),
            )
            if self.lease_policy is not None and entry.msg_type in self.machine.read_only_types:
                info["read"] = True
            ctx.internal(**info)
            if self.election.is_leader:
                self._send_reply(entry.request_id, ctx)
        if (
            self.compact_every is not None
            and self.log.last_applied - self.log.snapshot_index >= self.compact_every
        ):
            self.checkpoint()

    def _send_reply(self, request_id: str, ctx: Context) -> None:
        client, reply_type, reply_payload = self.applied_replies[request_id]
        msg_type = request_id.split("/", 1)[0]
        phase = "reconfig" if msg_type == RECONFIG else self.machine.reply_phase(msg_type)
        ctx.send(client, reply_type, reply_payload, phase=phase)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"{self.name}: {self.election.describe().split(': ', 1)[1]}, "
            f"{self.log.describe()}, pending={len(self.pending)}, {self.machine.describe()}"
        )


def consensus_members(
    group: Sequence[str],
    machine_factory,
    seed: int = 0,
    election_timeout: Tuple[int, int] = DEFAULT_ELECTION_TIMEOUT,
) -> List[ReplicatedCoordinator]:
    """Build one :class:`ReplicatedCoordinator` per name in ``group``.

    ``machine_factory`` is called once per member so every member applies its
    *own* copy of the state machine (shared state would fake agreement).
    """
    return [
        ReplicatedCoordinator(
            name=member,
            group=group,
            machine=machine_factory(),
            seed=seed,
            election_timeout=election_timeout,
        )
        for member in group
    ]
