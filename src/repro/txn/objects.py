"""Objects, versions, keys and tags of the transaction processing system.

The paper's system stores a set of read/write *objects* ``o_1 … o_k``, each
maintained by a separate server.  WRITE transactions create new *versions* of
a subset of objects; versions are identified by *keys* ``κ = (z, w)`` — a
per-writer sequence number paired with the writer id (Section 5.2) — and the
serialization arguments assign each transaction a *tag* drawn from the
naturals (Sections 7–9).

This module defines those small value types plus the per-server version store
(`VersionStore`) shared by the protocol implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Key:
    """A WRITE-transaction key ``κ = (z, writer)``.

    ``z`` is the writer-local sequence number (strictly increasing per
    writer) and ``writer`` the writer id.  ``Key.initial()`` is the paper's
    ``κ₀ = (0, w₀)`` placeholder identifying the initial versions.
    Ordering is lexicographic, which is only used for deterministic
    tie-breaking in reports — the protocols never rely on cross-writer key
    order (that is what tags are for).
    """

    z: int
    writer: str

    @classmethod
    def initial(cls) -> "Key":
        return cls(0, "w0")

    def is_initial(self) -> bool:
        return self.z == 0

    def describe(self) -> str:
        return f"({self.z},{self.writer})"


@dataclass(frozen=True)
class Version:
    """One version of one object: the value plus the key that wrote it."""

    object_id: str
    value: Any
    key: Key

    def describe(self) -> str:
        return f"{self.object_id}={self.value!r}@{self.key.describe()}"


class VersionStore:
    """The per-server multi-version store ``Vals`` of the pseudocode.

    Servers in algorithms A, B and C keep *every* version they have been sent
    (``Vals ← Vals ∪ {(κ, v)}``) and answer reads either for a specific key
    (A, B) or with the whole set (C).  The store also remembers insertion
    order so the Eiger-style and naive protocols can ask for "the latest"
    version.
    """

    def __init__(self, object_id: str, initial_value: Any = 0) -> None:
        self.object_id = object_id
        self._by_key: Dict[Key, Version] = {}
        self._order: List[Key] = []
        initial = Version(object_id=object_id, value=initial_value, key=Key.initial())
        self._by_key[initial.key] = initial
        self._order.append(initial.key)

    # ------------------------------------------------------------------
    def put(self, key: Key, value: Any) -> Version:
        """Insert (or overwrite) the version for ``key``."""
        version = Version(object_id=self.object_id, value=value, key=key)
        if key not in self._by_key:
            self._order.append(key)
        self._by_key[key] = version
        return version

    def get(self, key: Key) -> Optional[Version]:
        """The version written under ``key``, or ``None``."""
        return self._by_key.get(key)

    def latest(self) -> Version:
        """The most recently inserted version (arrival order at this server)."""
        return self._by_key[self._order[-1]]

    def initial(self) -> Version:
        return self._by_key[self._order[0]]

    def all_versions(self) -> Tuple[Version, ...]:
        """Every version, in insertion order (the ``Vals`` set)."""
        return tuple(self._by_key[k] for k in self._order)

    def keys(self) -> Tuple[Key, ...]:
        return tuple(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Key) -> bool:
        return key in self._by_key

    def describe(self) -> str:
        return f"VersionStore({self.object_id}: {[v.describe() for v in self.all_versions()]})"


def object_names(count: int, prefix: str = "o") -> Tuple[str, ...]:
    """Standard object naming: ``o1 … ok`` (or ``ox``/``oy`` for two objects)."""
    if count == 2:
        return (f"{prefix}x", f"{prefix}y")
    return tuple(f"{prefix}{i}" for i in range(1, count + 1))


def server_for_object(object_id: str, prefix: str = "s") -> str:
    """The canonical name of the server holding ``object_id``.

    The paper assumes one object per server; we name the server after the
    object (``ox`` is held by ``sx``, ``o3`` by ``s3``).
    """
    if object_id.startswith("o"):
        return prefix + object_id[1:]
    return prefix + "_" + object_id


def object_for_server(server_id: str, prefix: str = "o") -> str:
    """Inverse of :func:`server_for_object`."""
    if server_id.startswith("s"):
        return prefix + server_id[1:]
    return prefix + "_" + server_id
