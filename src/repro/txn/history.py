"""Transaction histories: invocation/response events, precedence, results.

A *history* is the transaction-level view of an execution: for each
transaction we keep its invocation index, response index and result, which is
all the strict-serializability checkers need.  Histories are usually built
from a finished :class:`~repro.ioa.simulation.Simulation` via
:meth:`History.from_simulation`, but they can also be written down directly
(the Eiger counter-example of Figure 5 and many unit tests do this).

The real-time precedence relation ``φ →_rt π`` ("φ responds before π is
invoked") is what the S property must respect on top of the sequential
semantics of the data type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .transactions import (
    ReadResult,
    ReadTransaction,
    Transaction,
    WriteTransaction,
    WRITE_OK,
    is_read_transaction,
    is_write_transaction,
)


@dataclass(frozen=True)
class HistoryEntry:
    """One completed (or still-running) transaction in a history."""

    txn: Transaction
    client: str
    invoke_index: Optional[int]
    respond_index: Optional[int]
    result: Any = None

    @property
    def txn_id(self) -> str:
        return self.txn.txn_id

    @property
    def complete(self) -> bool:
        return self.invoke_index is not None and self.respond_index is not None

    def precedes(self, other: "HistoryEntry") -> bool:
        """Real-time precedence: this transaction responds before ``other`` is invoked."""
        if self.respond_index is None or other.invoke_index is None:
            return False
        return self.respond_index < other.invoke_index

    def overlaps(self, other: "HistoryEntry") -> bool:
        """Concurrent in real time (neither precedes the other)."""
        return not self.precedes(other) and not other.precedes(self)

    def describe(self) -> str:
        span = f"[{self.invoke_index},{self.respond_index}]"
        if isinstance(self.result, ReadResult):
            result = self.result.describe()
        else:
            result = repr(self.result)
        return f"{self.txn.describe()} {span} -> {result}"


class History:
    """An ordered collection of :class:`HistoryEntry` records."""

    def __init__(self, entries: Iterable[HistoryEntry], objects: Sequence[str], initial_value: Any = 0) -> None:
        self._entries: List[HistoryEntry] = list(entries)
        self.objects = tuple(objects)
        self.initial_value = initial_value
        ids = [e.txn_id for e in self._entries]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate transaction ids in history")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simulation(cls, simulation: Any, objects: Optional[Sequence[str]] = None, initial_value: Any = 0) -> "History":
        """Build a history from a simulation's transaction records.

        ``objects`` defaults to the union of objects touched by the recorded
        transactions (sorted), which is correct whenever the workload touches
        every object at least once; experiments that need untouched objects
        pass the full object list explicitly.
        """
        entries = []
        touched: Set[str] = set()
        for record in simulation.transaction_records():
            txn = record.txn
            touched.update(getattr(txn, "objects", ()))
            entries.append(
                HistoryEntry(
                    txn=txn,
                    client=record.client,
                    invoke_index=record.invoke_index,
                    respond_index=record.respond_index,
                    result=record.result,
                )
            )
        if objects is None:
            objects = tuple(sorted(touched))
        return cls(entries, objects, initial_value)

    @classmethod
    def from_results(
        cls,
        results: Sequence[Tuple[Transaction, str, int, int, Any]],
        objects: Sequence[str],
        initial_value: Any = 0,
    ) -> "History":
        """Build a history from ``(txn, client, invoke, respond, result)`` tuples."""
        entries = [
            HistoryEntry(txn=t, client=c, invoke_index=i, respond_index=r, result=res)
            for (t, c, i, r, res) in results
        ]
        return cls(entries, objects, initial_value)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> Tuple[HistoryEntry, ...]:
        return tuple(self._entries)

    def entry(self, txn_id: str) -> HistoryEntry:
        for entry in self._entries:
            if entry.txn_id == txn_id:
                return entry
        raise KeyError(txn_id)

    def complete_entries(self) -> Tuple[HistoryEntry, ...]:
        return tuple(e for e in self._entries if e.complete)

    def incomplete_entries(self) -> Tuple[HistoryEntry, ...]:
        return tuple(e for e in self._entries if not e.complete)

    def reads(self) -> Tuple[HistoryEntry, ...]:
        return tuple(e for e in self._entries if is_read_transaction(e.txn))

    def writes(self) -> Tuple[HistoryEntry, ...]:
        return tuple(e for e in self._entries if is_write_transaction(e.txn))

    def transactions(self) -> Tuple[Transaction, ...]:
        return tuple(e.txn for e in self._entries)

    def results(self) -> Dict[str, Any]:
        """Map from txn_id to observed result, for complete transactions."""
        out: Dict[str, Any] = {}
        for entry in self._entries:
            if entry.complete:
                out[entry.txn_id] = entry.result
        return out

    # ------------------------------------------------------------------
    # Real-time precedence
    # ------------------------------------------------------------------
    def precedence_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """All real-time precedence pairs ``(earlier, later)`` among complete txns."""
        complete = self.complete_entries()
        pairs = []
        for a in complete:
            for b in complete:
                if a is b:
                    continue
                if a.precedes(b):
                    pairs.append((a.txn_id, b.txn_id))
        return tuple(pairs)

    def concurrent_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Unordered pairs of real-time concurrent complete transactions."""
        complete = self.complete_entries()
        pairs = []
        for i, a in enumerate(complete):
            for b in complete[i + 1 :]:
                if a.overlaps(b):
                    pairs.append((a.txn_id, b.txn_id))
        return tuple(pairs)

    def max_concurrent_writes(self, entry: HistoryEntry) -> int:
        """Number of WRITE transactions concurrent with ``entry``.

        Used by the Figure 1(b) analysis: algorithm C may return up to
        ``|W|`` versions where ``|W|`` is the number of WRITE transactions
        concurrent with the READ.
        """
        return sum(1 for w in self.writes() if w.complete and w.overlaps(entry))

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"History with {len(self._entries)} transactions over objects {list(self.objects)}:"]
        for entry in self._entries:
            lines.append("  " + entry.describe())
        return "\n".join(lines)

    def restricted_to_complete(self) -> "History":
        return History(self.complete_entries(), self.objects, self.initial_value)
