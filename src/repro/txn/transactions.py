"""READ and WRITE transactions.

The transaction model is exactly the paper's (Sections 2 and 7.1):

* a **READ transaction** ``R(o_{i1}, …, o_{iq})`` is a set of read requests
  for a subset of objects and returns one value per requested object;
* a **WRITE transaction** ``W((o_{i1}, v_{i1}), …, (o_{ip}, v_{ip}))`` is a
  set of write requests updating a subset of objects and returns ``ok``;
* read clients issue only READ transactions, write clients only WRITE
  transactions; there are no aborts and no failures.

Transactions are plain immutable values; the protocol implementations turn
them into messages, and the histories/checkers consume them together with
their results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

_txn_counter = itertools.count(1)


def _next_txn_id(prefix: str) -> str:
    return f"{prefix}{next(_txn_counter)}"


@dataclass(frozen=True)
class ReadTransaction:
    """``R(o_{i1}, …, o_{iq})``: read the listed objects."""

    objects: Tuple[str, ...]
    txn_id: str = ""
    kind: str = field(default="read", init=False)

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("a READ transaction must read at least one object")
        if len(set(self.objects)) != len(self.objects):
            raise ValueError("a READ transaction reads distinct objects")
        if not self.txn_id:
            object.__setattr__(self, "txn_id", _next_txn_id("R"))
        object.__setattr__(self, "objects", tuple(self.objects))

    def is_read(self) -> bool:
        return True

    def is_write(self) -> bool:
        return False

    def describe(self) -> str:
        return f"{self.txn_id}=READ({', '.join(self.objects)})"


@dataclass(frozen=True)
class WriteTransaction:
    """``W((o_{i1}, v_{i1}), …)``: update the listed objects with new values."""

    updates: Tuple[Tuple[str, Any], ...]
    txn_id: str = ""
    kind: str = field(default="write", init=False)

    def __post_init__(self) -> None:
        if not self.updates:
            raise ValueError("a WRITE transaction must write at least one object")
        objects = [obj for obj, _ in self.updates]
        if len(set(objects)) != len(objects):
            raise ValueError("a WRITE transaction writes distinct objects")
        if not self.txn_id:
            object.__setattr__(self, "txn_id", _next_txn_id("W"))
        object.__setattr__(self, "updates", tuple(tuple(u) for u in self.updates))

    @property
    def objects(self) -> Tuple[str, ...]:
        return tuple(obj for obj, _ in self.updates)

    @property
    def values(self) -> Mapping[str, Any]:
        return dict(self.updates)

    def value_for(self, object_id: str) -> Any:
        return dict(self.updates)[object_id]

    def is_read(self) -> bool:
        return False

    def is_write(self) -> bool:
        return True

    def describe(self) -> str:
        inner = ", ".join(f"{o}={v!r}" for o, v in self.updates)
        return f"{self.txn_id}=WRITE({inner})"


Transaction = Any  # ReadTransaction | WriteTransaction


def read(*objects: str, txn_id: str = "") -> ReadTransaction:
    """Convenience constructor: ``read("ox", "oy")``."""
    return ReadTransaction(objects=tuple(objects), txn_id=txn_id)


def write(txn_id: str = "", **updates: Any) -> WriteTransaction:
    """Convenience constructor: ``write(ox=1, oy=1)``.

    Keyword order is preserved (Python ≥3.7 keeps keyword argument order), so
    ``write(ox=1, oy=1)`` writes ``ox`` then ``oy`` in the description, though
    semantically a WRITE transaction is an unordered set of updates.
    """
    return WriteTransaction(updates=tuple(updates.items()), txn_id=txn_id)


def write_pairs(pairs: Sequence[Tuple[str, Any]], txn_id: str = "") -> WriteTransaction:
    """Constructor from explicit (object, value) pairs."""
    return WriteTransaction(updates=tuple(pairs), txn_id=txn_id)


@dataclass(frozen=True)
class ReadResult:
    """The values returned by a READ transaction, one per requested object."""

    values: Tuple[Tuple[str, Any], ...]

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ReadResult":
        return cls(values=tuple(sorted(mapping.items())))

    @property
    def as_dict(self) -> Dict[str, Any]:
        return dict(self.values)

    def value_for(self, object_id: str) -> Any:
        return dict(self.values)[object_id]

    def objects(self) -> Tuple[str, ...]:
        return tuple(o for o, _ in self.values)

    def describe(self) -> str:
        inner = ", ".join(f"{o}={v!r}" for o, v in self.values)
        return f"({inner})"


WRITE_OK = "ok"
"""The response of a WRITE transaction (the paper's ``ok`` status)."""


def is_read_transaction(txn: Any) -> bool:
    return isinstance(txn, ReadTransaction)


def is_write_transaction(txn: Any) -> bool:
    return isinstance(txn, WriteTransaction)
