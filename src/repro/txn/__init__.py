"""Transaction-system substrate: objects, transactions, the OT data type, histories."""

from .datatype import (
    OTState,
    apply_transaction,
    consistent_with_serial_order,
    run_serial,
    serial_read_expectation,
)
from .history import History, HistoryEntry
from .objects import (
    Key,
    Version,
    VersionStore,
    object_for_server,
    object_names,
    server_for_object,
)
from .placement import (
    MajorityQuorum,
    Placement,
    QuorumPolicy,
    ReadOneWriteAll,
    quorum_policy,
    quorum_policy_names,
    replica_names,
    standard_placement,
)
from .transactions import (
    ReadResult,
    ReadTransaction,
    Transaction,
    WRITE_OK,
    WriteTransaction,
    is_read_transaction,
    is_write_transaction,
    read,
    write,
    write_pairs,
)

__all__ = [
    "OTState",
    "apply_transaction",
    "consistent_with_serial_order",
    "run_serial",
    "serial_read_expectation",
    "History",
    "HistoryEntry",
    "Key",
    "Version",
    "VersionStore",
    "object_for_server",
    "object_names",
    "server_for_object",
    "MajorityQuorum",
    "Placement",
    "QuorumPolicy",
    "ReadOneWriteAll",
    "quorum_policy",
    "quorum_policy_names",
    "replica_names",
    "standard_placement",
    "ReadResult",
    "ReadTransaction",
    "Transaction",
    "WRITE_OK",
    "WriteTransaction",
    "is_read_transaction",
    "is_write_transaction",
    "read",
    "write",
    "write_pairs",
]
