"""The sequential data type ``OT`` of Section 7.1.

``OT`` is a ``k``-object read/write register array with two kinds of
invocations — READ transactions over a subset of objects and WRITE
transactions over a subset of objects — and the transition function ``f``:

* ``f(READ(o_{i1},…,o_{iq}), state) = ((state[o_{i1}],…,state[o_{iq}]), state)``
* ``f(WRITE((o_{i1},u_{i1}),…), state) = (ok, state[o_{ij} ↦ u_{ij}])``

A *serial* execution of ``OT`` applies transactions one at a time with ``f``;
the strict-serializability checkers search for a serial order whose responses
match the observed ones.  This module provides the sequential specification,
used both by the checkers and by property-based tests as the reference model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .transactions import (
    ReadResult,
    ReadTransaction,
    Transaction,
    WriteTransaction,
    WRITE_OK,
)


@dataclass(frozen=True)
class OTState:
    """An immutable snapshot of the ``k`` object values."""

    values: Tuple[Tuple[str, Any], ...]

    @classmethod
    def initial(cls, objects: Sequence[str], initial_value: Any = 0) -> "OTState":
        """The initial state: every object holds ``initial_value`` (the paper's ``v⁰``)."""
        return cls(values=tuple((o, initial_value) for o in objects))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "OTState":
        return cls(values=tuple(sorted(mapping.items())))

    @property
    def as_dict(self) -> Dict[str, Any]:
        return dict(self.values)

    def value_for(self, object_id: str) -> Any:
        return dict(self.values)[object_id]

    def objects(self) -> Tuple[str, ...]:
        return tuple(o for o, _ in self.values)

    def with_updates(self, updates: Mapping[str, Any]) -> "OTState":
        merged = dict(self.values)
        for obj, value in updates.items():
            if obj not in merged:
                raise KeyError(f"unknown object {obj!r}")
            merged[obj] = value
        return OTState(values=tuple(sorted(merged.items())))


def apply_transaction(state: OTState, txn: Transaction) -> Tuple[Any, OTState]:
    """The transition function ``f`` of the data type ``OT``.

    Returns ``(response, next_state)``.
    """
    if isinstance(txn, ReadTransaction):
        current = state.as_dict
        for obj in txn.objects:
            if obj not in current:
                raise KeyError(f"READ of unknown object {obj!r}")
        response = ReadResult.from_mapping({obj: current[obj] for obj in txn.objects})
        return response, state
    if isinstance(txn, WriteTransaction):
        return WRITE_OK, state.with_updates(dict(txn.updates))
    raise TypeError(f"not a transaction: {txn!r}")


def run_serial(
    transactions: Sequence[Transaction],
    objects: Sequence[str],
    initial_value: Any = 0,
) -> Tuple[Tuple[Any, ...], OTState]:
    """Execute transactions serially from the initial state.

    Returns the tuple of responses (one per transaction, in order) and the
    final state.  This is the reference semantics used by the checkers and
    by the hypothesis-based differential tests.
    """
    state = OTState.initial(objects, initial_value)
    responses = []
    for txn in transactions:
        response, state = apply_transaction(state, txn)
        responses.append(response)
    return tuple(responses), state


def serial_read_expectation(
    order: Sequence[Transaction],
    read_txn: ReadTransaction,
    objects: Sequence[str],
    initial_value: Any = 0,
) -> ReadResult:
    """What ``read_txn`` must return if the serial order is ``order``.

    ``order`` must contain ``read_txn``; the expectation is computed by
    replaying the prefix of ``order`` before ``read_txn``.
    """
    state = OTState.initial(objects, initial_value)
    for txn in order:
        if txn is read_txn or (hasattr(txn, "txn_id") and txn.txn_id == read_txn.txn_id):
            response, _ = apply_transaction(state, read_txn)
            return response
        _, state = apply_transaction(state, txn)
    raise ValueError(f"read transaction {read_txn.txn_id} not found in the serial order")


def consistent_with_serial_order(
    order: Sequence[Transaction],
    observed: Mapping[str, Any],
    objects: Sequence[str],
    initial_value: Any = 0,
) -> bool:
    """Check observed responses against a candidate serial order.

    ``observed`` maps ``txn_id`` to the observed response (a
    :class:`~repro.txn.transactions.ReadResult` for reads, anything for
    writes — write responses are always ``ok`` and carry no information).
    Only read responses constrain the order.
    """
    state = OTState.initial(objects, initial_value)
    for txn in order:
        response, state = apply_transaction(state, txn)
        if isinstance(txn, ReadTransaction):
            seen = observed.get(txn.txn_id)
            if seen is None:
                continue
            if isinstance(seen, ReadResult):
                seen_map = seen.as_dict
            elif isinstance(seen, Mapping):
                seen_map = dict(seen)
            else:
                seen_map = dict(seen)
            if seen_map != response.as_dict:
                return False
    return True
