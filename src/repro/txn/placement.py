"""The placement layer: object → replica group mapping and quorum policies.

The paper models each object as held by a *single* server (``ox ↦ sx``), and
the seed repository hard-coded that assumption through every layer.  This
module replaces it with an explicit **placement**: every object is assigned a
*replica group* of ``N`` servers, and a pluggable :class:`QuorumPolicy`
decides how many replicas a WRITE must install at (``W``) and how many
replies a READ must collect (``R``) before proceeding.

Design constraints:

* **Degeneration** — with ``replication_factor=1`` the placement names
  exactly the paper's servers (``sx``, ``sy``, ``s1`` …) and every quorum is
  of size one, so the protocols produce byte-for-byte the same traces as the
  single-copy seed (pinned by the golden-signature tests under
  ``tests/replication``).
* **Quorum intersection** — a policy is valid for a group of size ``N`` only
  when ``R + W > N``: any read quorum then overlaps any completed write
  quorum, which is what lets exact-key reads find the version the metadata
  layer (coordinator ``List`` / algorithm A's reader ``List``) named even
  while later installs are still in flight or a replica is down.
* **Determinism** — replica naming and group ordering are pure functions of
  the object names and the replication factor, so placements never introduce
  nondeterminism into traces.

Replica naming: the *primary* replica of object ``o`` keeps the canonical
single-copy name (``server_for_object(o)``, e.g. ``sx``); additional replicas
are ``sx.2, sx.3, …``.  The first server of the first group doubles as the
coordinator / timestamp-oracle for the protocols that need one, exactly as
the first server did before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from .objects import object_names, server_for_object


def replica_names(object_id: str, replication_factor: int) -> Tuple[str, ...]:
    """The replica group of ``object_id``: primary first, then ``.i`` suffixes."""
    if replication_factor < 1:
        raise ValueError(f"replication_factor must be >= 1, got {replication_factor}")
    primary = server_for_object(object_id)
    return (primary,) + tuple(f"{primary}.{i}" for i in range(2, replication_factor + 1))


def next_replica_names(object_id: str, taken: Sequence[str], count: int = 1) -> Tuple[str, ...]:
    """Fresh replica names for ``object_id`` not colliding with ``taken``.

    Reconfiguration grows a group with servers named by the same convention
    as :func:`replica_names` (``sx.2, sx.3, …``), skipping suffixes already
    in use — so a replacement for a retired ``sx.3`` in the group
    ``(sx, sx.2, sx.3)`` is deterministically ``sx.4``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    primary = server_for_object(object_id)
    used = set(taken)
    fresh = []
    suffix = 2
    while len(fresh) < count:
        candidate = f"{primary}.{suffix}"
        if candidate not in used:
            fresh.append(candidate)
            used.add(candidate)
        suffix += 1
    return tuple(fresh)


def coordinator_group_names(consensus_factor: int, base: str = "coor") -> Tuple[str, ...]:
    """The replicated-coordinator group, alongside the replica groups.

    With ``consensus_factor=1`` the coordinator stays where the paper puts it
    — on the first storage server — and *no* dedicated group exists, so this
    returns ``()`` (the byte-identity contract of the consensus layer).  With
    N >= 2 the coordinator role moves to N dedicated consensus members named
    like replicas: ``coor, coor.2, …, coor.N`` (the first member is the
    bootstrap leader, mirroring "the first server doubles as coordinator").
    """
    if consensus_factor < 1:
        raise ValueError(f"consensus_factor must be >= 1, got {consensus_factor}")
    if consensus_factor == 1:
        return ()
    return (base,) + tuple(f"{base}.{i}" for i in range(2, consensus_factor + 1))


# ----------------------------------------------------------------------
# Quorum policies
# ----------------------------------------------------------------------
class QuorumPolicy:
    """How many replicas a write installs at / a read hears from.

    Subclasses define :meth:`read_quorum` and :meth:`write_quorum` as
    functions of the group size ``n``.  :meth:`validate` enforces quorum
    intersection (``R + W > n``), without which an exact-key read could miss
    the completed write it was promised.
    """

    name: str = "abstract"

    def read_quorum(self, n: int) -> int:
        raise NotImplementedError

    def write_quorum(self, n: int) -> int:
        raise NotImplementedError

    def validate(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"replica group size must be >= 1, got {n}")
        r, w = self.read_quorum(n), self.write_quorum(n)
        if not (1 <= r <= n and 1 <= w <= n):
            raise ValueError(
                f"quorum policy {self.name!r} gives R={r}, W={w} outside [1, {n}]"
            )
        if r + w <= n:
            raise ValueError(
                f"quorum policy {self.name!r} violates intersection for n={n}: "
                f"R={r} + W={w} <= {n} (a read quorum could miss a completed write)"
            )

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class ReadOneWriteAll(QuorumPolicy):
    """``R=1, W=n``: reads take the first reply, writes install everywhere.

    The degenerate policy for ``n=1`` — and the default, because it is the
    only policy whose quorum rounds are indistinguishable from the paper's
    single-copy protocol at every group size 1.
    """

    name: str = "read-one-write-all"

    def read_quorum(self, n: int) -> int:
        return 1

    def write_quorum(self, n: int) -> int:
        return n


@dataclass(frozen=True)
class MajorityQuorum(QuorumPolicy):
    """``R = W = ⌊n/2⌋ + 1``: tolerate ``⌈n/2⌉ - 1`` crashed replicas.

    The classic symmetric quorum: any two quorums intersect, so with
    ``n=3`` one replica may be down (or slow, or partitioned away) and both
    reads and writes still complete.
    """

    name: str = "majority"

    def read_quorum(self, n: int) -> int:
        return n // 2 + 1

    def write_quorum(self, n: int) -> int:
        return n // 2 + 1


_QUORUM_FACTORIES: Dict[str, Callable[[], QuorumPolicy]] = {
    "read-one-write-all": ReadOneWriteAll,
    "rowa": ReadOneWriteAll,
    "majority": MajorityQuorum,
}


def quorum_policy_names() -> Tuple[str, ...]:
    """All registered quorum policy names, sorted."""
    return tuple(sorted(_QUORUM_FACTORIES))


def quorum_policy(name_or_policy) -> QuorumPolicy:
    """Resolve a policy instance from a name (or pass an instance through)."""
    if isinstance(name_or_policy, QuorumPolicy):
        return name_or_policy
    try:
        factory = _QUORUM_FACTORIES[name_or_policy]
    except KeyError:
        known = ", ".join(repr(n) for n in quorum_policy_names())
        raise KeyError(
            f"unknown quorum policy {name_or_policy!r}; known policies: {known}"
        ) from None
    return factory()


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Placement:
    """An immutable object → replica-group map.

    ``groups`` preserves object order; each group lists the primary replica
    first.  Lookup helpers are O(1) via the derived indexes (computed once in
    ``__post_init__``; stored with ``object.__setattr__`` because the
    dataclass is frozen).
    """

    groups: Tuple[Tuple[str, Tuple[str, ...]], ...]

    def __post_init__(self) -> None:
        frozen = tuple((obj, tuple(group)) for obj, group in self.groups)
        object.__setattr__(self, "groups", frozen)
        by_object: Dict[str, Tuple[str, ...]] = {}
        object_of: Dict[str, str] = {}
        for obj, group in frozen:
            if not group:
                raise ValueError(f"object {obj!r} has an empty replica group")
            if obj in by_object:
                raise ValueError(f"object {obj!r} placed twice")
            by_object[obj] = group
            for server in group:
                if server in object_of:
                    raise ValueError(f"server {server!r} appears in two replica groups")
                object_of[server] = obj
        object.__setattr__(self, "_by_object", by_object)
        object.__setattr__(self, "_object_of", object_of)

    # ------------------------------------------------------------------
    @classmethod
    def for_objects(
        cls, objects: Sequence[str], replication_factor: int = 1
    ) -> "Placement":
        """The standard placement: uniform replication over canonical names."""
        return cls(
            groups=tuple(
                (obj, replica_names(obj, replication_factor)) for obj in objects
            )
        )

    @classmethod
    def single_copy(cls, objects: Sequence[str]) -> "Placement":
        """The paper's one-server-per-object placement."""
        return cls.for_objects(objects, replication_factor=1)

    # ------------------------------------------------------------------
    def objects(self) -> Tuple[str, ...]:
        return tuple(obj for obj, _ in self.groups)

    def group(self, object_id: str) -> Tuple[str, ...]:
        """The replica group of ``object_id`` (primary first)."""
        try:
            return self._by_object[object_id]
        except KeyError:
            raise KeyError(f"object {object_id!r} is not placed") from None

    def primary(self, object_id: str) -> str:
        return self.group(object_id)[0]

    def object_of(self, server: str) -> str:
        """The object a replica server holds (inverse of :meth:`group`)."""
        try:
            return self._object_of[server]
        except KeyError:
            raise KeyError(f"server {server!r} belongs to no replica group") from None

    def servers(self) -> Tuple[str, ...]:
        """All replica servers, object-major, primaries first within a group."""
        return tuple(server for _, group in self.groups for server in group)

    def is_trivial(self) -> bool:
        """Whether every group has a single replica (the paper's assumption)."""
        return all(len(group) == 1 for _, group in self.groups)

    @property
    def replication_factor(self) -> int:
        return max((len(group) for _, group in self.groups), default=1)

    def with_group(self, object_id: str, group: Sequence[str]) -> "Placement":
        """A new placement with ``object_id``'s replica group replaced.

        The epoch-transition primitive of the reconfiguration layer: every
        other group is untouched, and the constructor re-validates the whole
        map (no empty groups, no server in two groups).
        """
        if object_id not in self._by_object:
            raise KeyError(f"object {object_id!r} is not placed")
        return Placement(
            groups=tuple(
                (obj, tuple(group) if obj == object_id else existing)
                for obj, existing in self.groups
            )
        )

    def validate_policy(self, policy: QuorumPolicy) -> None:
        for _, group in self.groups:
            policy.validate(len(group))

    def describe(self) -> str:
        parts = [f"{obj}→[{','.join(group)}]" for obj, group in self.groups]
        return f"Placement({'; '.join(parts)})"


def standard_placement(num_objects: int, replication_factor: int = 1) -> Placement:
    """Placement over the standard object names (``ox``/``oy`` or ``o1…ok``)."""
    return Placement.for_objects(object_names(num_objects), replication_factor)
