"""Causal span trees derived from kernel traces.

The paper's arguments are conducted over *executions*; this module gives an
execution the shape observability tooling expects: a forest of **spans**
(intervals of trace indices attributed to one activity) plus **causal
edges** (one per delivered message, stitched from the matching send→recv
``msg_id`` pair).

Span derivation is a pure function of a finished simulation:

* one ``txn`` span per submitted transaction, from its invocation to its
  response (reusing the kernel's :class:`TransactionRecord` stamps);
* one ``round`` child span per client quorum round, grouped by the
  ``phase`` info the protocols stamp on their SEND actions (and carrying
  the ``epoch``/``attempt`` payload stamps of the reconfiguration layer);
* zero-length ``consensus`` spans for each applied coordinator-log entry
  (parented onto the transaction named by its request id);
* ``election`` spans from a member's ``candidacy`` to its
  ``became-leader`` internal action (same member and term);
* ``reconfig`` spans from a membership change's ``joint-begin`` to its
  ``commit`` (and likewise for the consensus-group variant).

Everything is keyed on trace indices and payload fields — never ``msg_id``
values (process-global, so unequal across runs) and never wall-clock time —
so the :meth:`SpanTree.signature` of two runs of the same configuration is
identical.  That is the determinism contract the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..ioa.actions import Action, ActionKind
from ..ioa.simulation import Simulation


@dataclass(frozen=True)
class Span:
    """One interval of trace indices attributed to a single activity."""

    span_id: str
    name: str
    kind: str  # "txn" | "round" | "consensus" | "election" | "reconfig"
    actor: str
    start: int  # trace index of the first action of the span
    end: int  # trace index of the last action (== start for point spans)
    parent: Optional[str] = None
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> int:
        return self.end - self.start

    def get(self, key: str, default: Any = None) -> Any:
        return dict(self.attrs).get(key, default)

    def describe(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in self.attrs)
        suffix = f" [{extra}]" if extra else ""
        return f"[{self.start:5d} → {self.end:5d}] {self.kind}:{self.name} @ {self.actor}{suffix}"


@dataclass(frozen=True)
class CausalEdge:
    """One delivered message: the happens-before edge send → recv."""

    src: str
    dst: str
    send_index: int
    recv_index: int
    msg_type: str


@dataclass
class SpanTree:
    """A forest of spans plus the causal edges of the underlying trace."""

    spans: Tuple[Span, ...] = ()
    edges: Tuple[CausalEdge, ...] = ()
    #: messages sent but never received (drops, crash-held, end-of-run)
    undelivered: int = 0
    _children: Dict[Optional[str], List[Span]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for span in self.spans:
            self._children.setdefault(span.parent, []).append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> Tuple[Span, ...]:
        return tuple(self._children.get(None, ()))

    def children(self, span: Span) -> Tuple[Span, ...]:
        return tuple(self._children.get(span.span_id, ()))

    def span(self, span_id: str) -> Optional[Span]:
        for candidate in self.spans:
            if candidate.span_id == span_id:
                return candidate
        return None

    def of_kind(self, kind: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.kind == kind)

    def signature(self) -> Tuple[Any, ...]:
        """Canonical cross-run-comparable projection (no msg ids inside)."""
        span_rows = tuple(
            (s.span_id, s.name, s.kind, s.actor, s.start, s.end, s.parent, s.attrs)
            for s in self.spans
        )
        edge_rows = tuple(
            (e.src, e.dst, e.send_index, e.recv_index, e.msg_type) for e in self.edges
        )
        return (span_rows, edge_rows, self.undelivered)

    def describe(self) -> str:
        lines = [
            f"SpanTree: {len(self.spans)} spans, {len(self.edges)} causal edges, "
            f"{self.undelivered} undelivered messages"
        ]

        def walk(span: Span, depth: int) -> None:
            lines.append("  " * (depth + 1) + span.describe())
            for child in self.children(span):
                walk(child, depth + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)


def _round_attrs(send: Action) -> Tuple[Tuple[str, Any], ...]:
    """Epoch/attempt stamps the reconfiguration layer puts on round sends."""
    attrs: List[Tuple[str, Any]] = []
    message = send.message
    if message is None:
        return ()
    for key in ("epoch", "attempt"):
        value = message.get(key)
        if value is not None:
            attrs.append((key, value))
    return tuple(attrs)


def _txn_round_spans(
    txn_span: Span,
    sends: List[Action],
    recvs: List[Action],
) -> List[Span]:
    """Child round spans of one transaction.

    A round starts at a client send whose ``(phase, attempt)`` differs from
    the previous send's and extends to the last client receive before the
    next round's first send (the replies a quorum round collected).  This is
    exactly the shape of the session protocol: a burst of sends stamped with
    one phase, then an Await collecting the replies.
    """
    groups: List[Tuple[Tuple[Any, Any], List[Action]]] = []
    for send in sends:
        phase = send.get("phase") or (send.message.msg_type if send.message else "send")
        attempt = send.message.get("attempt") if send.message is not None else None
        key = (phase, attempt)
        if groups and groups[-1][0] == key:
            groups[-1][1].append(send)
        else:
            groups.append((key, [send]))
    spans: List[Span] = []
    for number, ((phase, _attempt), group_sends) in enumerate(groups, start=1):
        start = group_sends[0].index
        window_end = (
            groups[number][1][0].index if number < len(groups) else txn_span.end + 1
        )
        replies = [r.index for r in recvs if start < r.index < window_end]
        end = max(replies) if replies else group_sends[-1].index
        spans.append(
            Span(
                span_id=f"{txn_span.span_id}/round{number}",
                name=str(phase),
                kind="round",
                actor=txn_span.actor,
                start=start,
                end=end,
                parent=txn_span.span_id,
                attrs=(("sends", len(group_sends)), ("replies", len(replies)))
                + _round_attrs(group_sends[0]),
            )
        )
    return spans


def derive_spans(simulation: Simulation) -> SpanTree:
    """Derive the causal span tree of a (finished) simulation."""
    trace = simulation.trace
    records = simulation.transaction_records()

    # One linear pass collects everything the builders below need.
    send_index: Dict[int, Action] = {}
    recv_index: Dict[int, Action] = {}
    client_sends: Dict[str, List[Action]] = {}
    client_recvs: Dict[str, List[Action]] = {}
    consensus_actions: List[Action] = []
    reconfig_actions: List[Action] = []
    clients = {record.client for record in records}
    for action in trace:
        message = action.message
        if action.kind is ActionKind.SEND and message is not None:
            send_index[message.msg_id] = action
            if action.actor in clients:
                txn = message.get("txn")
                if txn is not None:
                    client_sends.setdefault(str(txn), []).append(action)
        elif action.kind is ActionKind.RECV and message is not None:
            recv_index[message.msg_id] = action
            if action.actor in clients:
                txn = message.get("txn")
                if txn is not None:
                    client_recvs.setdefault(str(txn), []).append(action)
        elif action.kind is ActionKind.INTERNAL and action.info:
            info = dict(action.info)
            if "consensus" in info:
                consensus_actions.append(action)
            elif "reconfig" in info:
                reconfig_actions.append(action)

    spans: List[Span] = []
    txn_span_ids: Dict[str, str] = {}

    # -- transaction spans + their quorum-round children ----------------
    # The newest *global* index, not len()-1: under a sampled or ring trace
    # retained indices are sparse/windowed, and len() would undershoot.
    last_index = getattr(trace, "last_index", len(trace) - 1)
    for record in records:
        if record.invoke_index is None:
            continue  # never invoked: nothing of it is in the trace
        txn_id = str(record.txn_id)
        end = record.respond_index if record.respond_index is not None else last_index
        kind = getattr(record.txn, "kind", "txn")
        txn_span = Span(
            span_id=f"txn:{txn_id}",
            name=f"{kind} {txn_id}",
            kind="txn",
            actor=record.client,
            start=record.invoke_index,
            end=end,
            attrs=(
                ("complete", record.complete),
                ("rounds", record.rounds),
                ("messages_sent", record.messages_sent),
            ),
        )
        txn_span_ids[txn_id] = txn_span.span_id
        spans.append(txn_span)
        spans.extend(
            _txn_round_spans(
                txn_span,
                client_sends.get(txn_id, []),
                client_recvs.get(txn_id, []),
            )
        )

    # -- consensus spans: applied entries and elections ------------------
    candidacies: Dict[Tuple[str, Any], Action] = {}
    for action in consensus_actions:
        info = dict(action.info)
        what = info.get("consensus")
        if what == "apply":
            request = str(info.get("request", ""))
            txn = request.rsplit("/", 1)[-1] if "/" in request else None
            spans.append(
                Span(
                    span_id=f"cns:{request}@{action.index}",
                    name=f"apply {request}",
                    kind="consensus",
                    actor=action.actor,
                    start=action.index,
                    end=action.index,
                    parent=txn_span_ids.get(txn) if txn else None,
                    attrs=(
                        ("term", info.get("term")),
                        ("commit_latency", info.get("commit_latency")),
                    ),
                )
            )
        elif what == "candidacy":
            candidacies[(action.actor, info.get("term"))] = action
        elif what == "became-leader":
            started = candidacies.pop((action.actor, info.get("term")), None)
            spans.append(
                Span(
                    span_id=f"election:{action.actor}@{action.index}",
                    name=f"election term {info.get('term')}",
                    kind="election",
                    actor=action.actor,
                    start=started.index if started is not None else action.index,
                    end=action.index,
                    attrs=(("term", info.get("term")), ("won", True)),
                )
            )
    for (member, term), action in candidacies.items():
        spans.append(
            Span(
                span_id=f"election:{member}@{action.index}",
                name=f"election term {term}",
                kind="election",
                actor=member,
                start=action.index,
                end=action.index,
                attrs=(("term", term), ("won", False)),
            )
        )

    # -- reconfiguration spans: joint window → commit --------------------
    open_joint: Dict[Tuple[str, Any], Action] = {}
    for action in reconfig_actions:
        info = dict(action.info)
        what = info.get("reconfig")
        if what in ("joint-begin", "cns-joint-begin"):
            scope = "cns" if what.startswith("cns-") else "replica"
            # Storage changes are keyed by object; the driver serializes
            # consensus-group changes, so scope alone identifies those.
            open_joint[(scope, info.get("object"))] = action
        elif what in ("commit", "cns-commit"):
            scope = "cns" if what.startswith("cns-") else "replica"
            begin = open_joint.pop((scope, info.get("object")), None)
            start = begin.index if begin is not None else action.index
            spans.append(
                Span(
                    span_id=f"reconfig:{scope}@{start}",
                    name=f"{scope}-change epoch {info.get('epoch')}",
                    kind="reconfig",
                    actor=action.actor,
                    start=start,
                    end=action.index,
                    attrs=(("epoch", info.get("epoch")),),
                )
            )
    for (scope, _object_id), action in open_joint.items():
        info = dict(action.info)
        spans.append(
            Span(
                span_id=f"reconfig:{scope}@{action.index}",
                name=f"{scope}-change (uncommitted)",
                kind="reconfig",
                actor=action.actor,
                start=action.index,
                end=last_index if last_index >= action.index else action.index,
                attrs=(("epoch", info.get("epoch")), ("committed", False)),
            )
        )

    # -- causal edges: one per delivered message --------------------------
    edges: List[CausalEdge] = []
    for msg_id, send in send_index.items():
        recv = recv_index.get(msg_id)
        if recv is None or send.message is None:
            continue
        edges.append(
            CausalEdge(
                src=send.message.src,
                dst=send.message.dst,
                send_index=send.index,
                recv_index=recv.index,
                msg_type=send.message.msg_type,
            )
        )
    edges.sort(key=lambda e: (e.send_index, e.recv_index))

    spans.sort(key=lambda s: (s.start, s.end, s.span_id))
    return SpanTree(
        spans=tuple(spans),
        edges=tuple(edges),
        undelivered=len(send_index) - len(edges),
    )
