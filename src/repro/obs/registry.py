"""The kernel metrics registry: virtual-time counters, gauges and histograms.

Every value in the registry is derived from *simulation-visible* quantities —
trace actions, virtual-clock stamps, payload fields — never from wall-clock
time, so a registry snapshot is as deterministic as the trace it was fed
from: the same configuration run twice yields byte-identical snapshots.
(Wall-clock measurement lives in :mod:`repro.obs.profiler` and is kept
strictly out of snapshots and exports.)

Metrics are addressed by ``(name, labels)`` the way Prometheus-style
registries are, e.g. ``registry.counter("kernel.events", kind="send")``.
Instruments are created on first touch and iterate in sorted label order, so
rendering is stable regardless of the order in which a run touched them.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted list (mirrors
    :func:`repro.analysis.metrics.percentile`; duplicated locally so the
    kernel-side registry never imports the analysis layer)."""
    if not values:
        return float("nan")
    rank = max(1, math.ceil(fraction * len(values)))
    return float(values[rank - 1])


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


def _label_string(key: MetricKey) -> str:
    name, items = key
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A settable value that also remembers the maximum it ever held."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0
        self.max_value = 0

    def set(self, value: Any) -> None:
        self.value = value
        if isinstance(value, (int, float)) and value > self.max_value:
            self.max_value = value

    def inc(self, amount: int = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: int = 1) -> None:
        self.value -= amount


class Histogram:
    """A distribution: stores raw observations (runs are small enough that
    exact retention beats bucketing, and the analysis layer wants the raw
    values for its own aggregation)."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(self._values)

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._values)
        if not ordered:
            return {"count": 0}
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
        }


#: the label set high-cardinality instruments overflow into (see below)
OVERFLOW_LABELS: Tuple[Tuple[str, Any], ...] = (("label_overflow", "true"),)


class MetricsRegistry:
    """Get-or-create store of named, labelled instruments.

    ``max_label_sets`` caps the distinct label sets **per metric name and
    instrument type** — a million-object workload labelling a histogram by
    object id must not blow up registry memory.  Once a metric name hits the
    cap, further *new* label sets all route to one shared overflow
    instrument (labelled ``label_overflow="true"``) and the
    ``obs.label_overflow{metric=<name>}`` counter counts every routed touch,
    so the overflow is loud in any snapshot instead of a silent memory lie.
    Existing label sets keep resolving to their own instruments.
    """

    def __init__(self, max_label_sets: int = 512) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        #: (instrument type, metric name) -> distinct label sets created
        self._cardinality: Dict[Tuple[str, str], int] = {}

    def _admit(self, family: str, name: str, key: MetricKey) -> MetricKey:
        """Key to actually store under: ``key`` while under the cap, the
        overflow key after.  Counts the admission and screams on overflow."""
        count = self._cardinality.get((family, name), 0)
        if count >= self.max_label_sets:
            # Bypass the capped path for the alarm counter itself (it has
            # one label set per overflowing metric name — bounded).
            alarm_key = _key("obs.label_overflow", {"metric": name})
            alarm = self._counters.get(alarm_key)
            if alarm is None:
                alarm = self._counters[alarm_key] = Counter()
            alarm.inc()
            return (name, OVERFLOW_LABELS)
        self._cardinality[(family, name)] = count + 1
        return key

    # -- instrument access ---------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            key = self._admit("counter", name, key)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            key = self._admit("gauge", name, key)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            key = self._admit("histogram", name, key)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram()
        return instrument

    # -- read-side helpers (0 / empty when never touched) --------------
    def counter_value(self, name: str, **labels: Any) -> int:
        instrument = self._counters.get(_key(name, labels))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name: str) -> int:
        """Sum of a counter over all label sets (e.g. events of any kind)."""
        return sum(c.value for (n, _), c in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: Any) -> Optional[Any]:
        instrument = self._gauges.get(_key(name, labels))
        return instrument.value if instrument is not None else None

    def gauge_max(self, name: str, **labels: Any) -> Optional[Any]:
        instrument = self._gauges.get(_key(name, labels))
        return instrument.max_value if instrument is not None else None

    def histogram_values(self, name: str, **labels: Any) -> Tuple[float, ...]:
        instrument = self._histograms.get(_key(name, labels))
        return instrument.values if instrument is not None else ()

    # -- rendering ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A plain, JSON-able, deterministically ordered view of everything."""
        return {
            "counters": {
                _label_string(key): self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                _label_string(key): {
                    "value": self._gauges[key].value,
                    "max": self._gauges[key].max_value,
                }
                for key in sorted(self._gauges)
            },
            "histograms": {
                _label_string(key): self._histograms[key].summary()
                for key in sorted(self._histograms)
            },
        }

    def describe(self) -> str:
        """Multi-line human-readable rendering of the snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        for label, value in snap["counters"].items():
            lines.append(f"{label} = {value}")
        for label, gauge in snap["gauges"].items():
            lines.append(f"{label} = {gauge['value']} (max {gauge['max']})")
        for label, summary in snap["histograms"].items():
            if summary["count"] == 0:
                lines.append(f"{label}: n=0")
                continue
            lines.append(
                f"{label}: n={summary['count']} min={summary['min']:g} "
                f"p50={summary['p50']:g} p95={summary['p95']:g} max={summary['max']:g}"
            )
        return "\n".join(lines)
