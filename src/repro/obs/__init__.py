"""Deterministic observability plane: spans, metrics, profiling, exports.

Three coordinated pieces (see ISSUE 6 / ROADMAP item 2):

* :mod:`repro.obs.spans` — causal span trees derived from kernel traces
  (transactions → quorum rounds, consensus applies/elections, reconfig
  windows, plus send→recv causal edges);
* :mod:`repro.obs.registry` / :mod:`repro.obs.plane` — a kernel metrics
  registry fed by cheap hooks in the simulation (mailbox depth, events and
  messages per kind, election/epoch/retry counts, probe RTT distributions);
* :mod:`repro.obs.profiler` — opt-in wall-clock profiling of the kernel hot
  loop, kept strictly out of every deterministic artifact;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto) and
  compact text timelines.

The plane is **off by default**; with it enabled a run's trace stays
byte-identical (the plane only listens), and all derived artifacts — span
trees, snapshots, exported timelines — are deterministic across runs.
"""

from .export import (
    chrome_trace_events,
    chrome_trace_json,
    render_timeline,
    write_chrome_trace,
)
from .plane import ObservabilityPlane
from .profiler import KernelProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .spans import CausalEdge, Span, SpanTree, derive_spans

__all__ = [
    "CausalEdge",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "ObservabilityPlane",
    "Span",
    "SpanTree",
    "chrome_trace_events",
    "chrome_trace_json",
    "derive_spans",
    "render_timeline",
    "write_chrome_trace",
]
