"""Deterministic observability plane: spans, metrics, monitors, health.

The coordinated pieces (see ISSUEs 6 and 8 / ROADMAP items 2, 3 and 5):

* :mod:`repro.obs.spans` — causal span trees derived from kernel traces
  (transactions → quorum rounds, consensus applies/elections, reconfig
  windows, plus send→recv causal edges);
* :mod:`repro.obs.registry` / :mod:`repro.obs.plane` — a kernel metrics
  registry fed by cheap hooks in the simulation (mailbox depth, events and
  messages per kind, election/epoch/retry counts, probe RTT distributions),
  with per-metric label-cardinality capping;
* :mod:`repro.obs.monitor` — **streaming invariant monitors**: the offline
  safety checkers as O(1)-per-event online automata, alerting (or halting)
  at the first offending trace index;
* :mod:`repro.obs.health` — the **health/SLO plane**: virtual-clock latency
  SLOs, rolling timeout/error rates, per-replica health scores, and the
  deterministic end-of-run health report (text + JSON);
* :mod:`repro.obs.sampling` — the **sampling trace mode** helpers
  (:class:`~repro.ioa.TraceMode`): long runs keep counters/monitors exact
  while recording only a deterministic sample of action records;
* :mod:`repro.obs.profiler` — opt-in wall-clock profiling of the kernel hot
  loop, kept strictly out of every deterministic artifact;
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto) and
  compact text timelines.

The plane is **off by default**; with it enabled (monitors and health
included) a run's trace stays byte-identical — everything here listens,
nothing acts — and all derived artifacts are deterministic across runs.
"""

from .export import (
    chrome_trace_events,
    chrome_trace_json,
    render_timeline,
    write_chrome_trace,
)
from .health import HealthPlane, HealthView, SLOPolicy, derive_health
from .monitor import (
    InvariantViolation,
    InvariantViolationError,
    LeaseSafetyMonitor,
    MonitorSuite,
    OnlineMonitor,
    default_monitors,
    joint_quorums_intersect,
    offline_lease_violations,
    watch_trace,
)
from .plane import ObservabilityPlane
from .profiler import KernelProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sampling import TraceMode, sampling_stats
from .spans import CausalEdge, Span, SpanTree, derive_spans

__all__ = [
    "CausalEdge",
    "Counter",
    "Gauge",
    "HealthPlane",
    "HealthView",
    "Histogram",
    "InvariantViolation",
    "InvariantViolationError",
    "KernelProfiler",
    "LeaseSafetyMonitor",
    "MetricsRegistry",
    "MonitorSuite",
    "ObservabilityPlane",
    "OnlineMonitor",
    "SLOPolicy",
    "Span",
    "SpanTree",
    "TraceMode",
    "chrome_trace_events",
    "chrome_trace_json",
    "default_monitors",
    "derive_health",
    "derive_spans",
    "joint_quorums_intersect",
    "offline_lease_violations",
    "render_timeline",
    "sampling_stats",
    "watch_trace",
]
