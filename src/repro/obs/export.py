"""Exporters: Chrome trace-event JSON (Perfetto) and a compact text timeline.

The Chrome trace-event format is the JSON array flavour documented by the
Catapult project and understood by ``ui.perfetto.dev`` and ``chrome://
tracing``: complete events (``ph: "X"``) for spans, flow events (``"s"`` /
``"f"``) for the causal send→recv edges, and thread-name metadata so each
automaton renders as its own lane.  Timestamps are **trace indices** (the
kernel's deterministic discrete clock), not wall-clock microseconds — two
runs of the same configuration export byte-identical files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .spans import SpanTree


def chrome_trace_events(tree: SpanTree) -> Dict[str, Any]:
    """Render a span tree as a Chrome trace-event JSON payload."""
    lanes: Dict[str, int] = {}

    def lane(actor: str) -> int:
        if actor not in lanes:
            lanes[actor] = len(lanes)
        return lanes[actor]

    events: List[Dict[str, Any]] = []
    for span in tree.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": 0,
                "tid": lane(span.actor),
                "ts": span.start,
                # Perfetto drops dur=0 slices; a point span gets unit width.
                "dur": max(span.duration, 1),
                "args": dict(span.attrs, span_id=span.span_id),
            }
        )
    for number, edge in enumerate(tree.edges):
        flow = {
            "ph": "s",
            "id": number,  # edge position, not msg_id: stable across runs
            "name": edge.msg_type,
            "cat": "msg",
            "pid": 0,
            "tid": lane(edge.src),
            "ts": edge.send_index,
        }
        events.append(flow)
        events.append(
            dict(flow, ph="f", bp="e", tid=lane(edge.dst), ts=edge.recv_index)
        )
    # Thread-name metadata makes each automaton a labelled lane.
    for actor, tid in lanes.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": actor},
            }
        )
    events.sort(key=lambda e: (e.get("ts", -1), e["ph"], e["tid"], e["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "trace-index",
            "spans": len(tree.spans),
            "causal_edges": len(tree.edges),
            "undelivered_messages": tree.undelivered,
        },
    }


def chrome_trace_json(tree: SpanTree) -> str:
    """The Chrome trace-event payload serialized deterministically."""
    return json.dumps(chrome_trace_events(tree), indent=1, sort_keys=True)


def write_chrome_trace(tree: SpanTree, path: Union[str, Path]) -> Path:
    """Write the Chrome trace-event JSON to ``path`` (returns the path)."""
    out = Path(path)
    out.write_text(chrome_trace_json(tree) + "\n", encoding="utf-8")
    return out


def render_timeline(tree: SpanTree, max_spans: int = 200) -> str:
    """Compact indented text timeline of the span forest."""
    lines: List[str] = [
        f"timeline: {len(tree.spans)} spans, {len(tree.edges)} causal edges, "
        f"{tree.undelivered} undelivered"
    ]
    emitted = 0

    def walk(span, depth: int) -> None:
        nonlocal emitted
        if emitted >= max_spans:
            return
        emitted += 1
        extra = ", ".join(f"{k}={v}" for k, v in span.attrs)
        suffix = f"  ({extra})" if extra else ""
        lines.append(
            f"{'  ' * depth}[{span.start:5d} → {span.end:5d}] "
            f"{span.kind:<9s} {span.name} @ {span.actor}{suffix}"
        )
        for child in tree.children(span):
            walk(child, depth + 1)

    for root in tree.roots():
        walk(root, 0)
    if emitted >= max_spans and len(tree.spans) > max_spans:
        lines.append(f"... ({len(tree.spans) - max_spans} more spans)")
    return "\n".join(lines)
