"""The health/SLO subsystem: latency SLOs, rolling rates, replica health.

Everything here is derived on the **virtual clock** — transaction latency
between INVOKE and RESPOND, rolling timeout/error-rate windows, per-replica
staleness — so a health report is as deterministic as the trace it was fed
from.  The plane is a pure listener fed by the same observer hook as the
metrics registry (:meth:`ObservabilityPlane.on_action`); it appends no
actions and never touches scheduler or RNG state.

Three faces:

* :class:`HealthPlane` — the observer-fed accumulator (enable with
  ``ObservabilityPlane(health=True)`` or a custom :class:`SLOPolicy`);
* :class:`HealthView` — the query API (``replica_health``, ``suspects``,
  SLO attainment, rolling rates) plus the deterministic end-of-run report
  exporter (dict → JSON, and a text rendering).  This is the detector input
  :class:`~repro.consensus.controller.ReconfigController` can optionally
  consume (``ControllerPolicy.use_health``, default-off and golden-pinned);
* :func:`derive_health` — the post-mortem form: replay a finished run's
  retained trace through a fresh plane.  Its clock is reconstructed from
  the vtime stamps internal actions carry (falling back to trace indices),
  so online and post-mortem numbers need not be equal — but each is
  individually deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..ioa.actions import Action, ActionKind
from .registry import Histogram


@dataclass(frozen=True)
class SLOPolicy:
    """The health plane's thresholds, all in virtual-time steps.

    ``read_latency``/``write_latency`` are the per-kind transaction latency
    SLOs; ``window`` is the rolling-rate bucket width and ``history`` how
    many buckets the rolling rates retain; ``stale_after`` is the staleness
    horizon at which a replica's health score reaches zero.
    """

    read_latency: int = 60
    write_latency: int = 90
    window: int = 64
    history: int = 8
    stale_after: int = 200

    def __post_init__(self) -> None:
        if self.read_latency < 1 or self.write_latency < 1:
            raise ValueError("latency SLOs must be >= 1 virtual-time step")
        if self.window < 1 or self.history < 1:
            raise ValueError("rolling window/history must be >= 1")
        if self.stale_after < 1:
            raise ValueError("stale_after must be >= 1")

    def latency_slo(self, txn_kind: str) -> int:
        return self.read_latency if txn_kind == "read" else self.write_latency

    def describe(self) -> str:
        return (
            f"slo(read<={self.read_latency}, write<={self.write_latency}, "
            f"window={self.window}x{self.history}, stale_after={self.stale_after})"
        )


class HealthPlane:
    """Observer-fed health accumulator for one run (or one trace replay)."""

    def __init__(self, slo: Optional[SLOPolicy] = None) -> None:
        self.slo = slo if slo is not None else SLOPolicy()
        self.simulation: Optional[Any] = None
        #: txn id -> (kind, invoke vtime) while in flight
        self._inflight: Dict[str, Tuple[str, int]] = {}
        #: per-kind latency distributions plus SLO verdict counts
        self._latency: Dict[str, Histogram] = {}
        self._slo_ok: Dict[str, int] = {}
        self._slo_breach: Dict[str, int] = {}
        #: actor -> vtime of its most recent observed action
        self._last_active: Dict[str, int] = {}
        #: replica -> ctl-probe round-trips (virtual-time steps)
        self._probe_rtt: Dict[str, Histogram] = {}
        #: rolling (bucket_id, counts) windows, newest last
        self._buckets: Deque[Tuple[int, Dict[str, int]]] = deque()
        self._totals: Dict[str, int] = {
            "events": 0,
            "timeouts": 0,
            "errors": 0,
            "stalls": 0,
        }
        #: replay clock for detached (post-mortem) feeding
        self._clock = 0

    # -- wiring ----------------------------------------------------------
    def on_attach(self, simulation: Any) -> None:
        self.simulation = simulation

    def now(self) -> int:
        if self.simulation is not None:
            return self.simulation.now()
        return self._clock

    # -- the per-event hook ---------------------------------------------
    def on_action(self, action: Action) -> None:
        if self.simulation is None:
            # Post-mortem replay: reconstruct the clock from the vtime
            # stamps internal actions carry, falling back to the stamped
            # trace index (monotone, deterministic).
            vtime = action.get("vtime")
            if isinstance(vtime, int) and vtime > self._clock:
                self._clock = vtime
            if action.index > self._clock:
                self._clock = action.index
        now = self.now()
        self._bump("events", now)
        self._last_active[action.actor] = now
        kind = action.kind
        if kind is ActionKind.INVOKE:
            txn = action.get("txn")
            if txn is not None:
                self._inflight[str(txn)] = (str(action.get("txn_kind", "txn")), now)
        elif kind is ActionKind.RESPOND:
            txn = action.get("txn")
            started = self._inflight.pop(str(txn), None) if txn is not None else None
            if started is not None:
                txn_kind, invoked_at = started
                latency = max(0, now - invoked_at)
                self._latency.setdefault(txn_kind, Histogram()).observe(latency)
                if latency <= self.slo.latency_slo(txn_kind):
                    self._slo_ok[txn_kind] = self._slo_ok.get(txn_kind, 0) + 1
                else:
                    self._slo_breach[txn_kind] = self._slo_breach.get(txn_kind, 0) + 1
        elif kind is ActionKind.RECV and action.message is not None:
            message = action.message
            if message.msg_type == "epoch-mismatch":
                self._bump("errors", now)
            elif message.msg_type == "ctl-ack":
                sent = message.get("sent")
                if isinstance(sent, int):
                    self._probe_rtt.setdefault(message.src, Histogram()).observe(
                        max(0, now - sent)
                    )
        elif kind is ActionKind.INTERNAL and action.get("timeout"):
            self._bump("timeouts", now)

    def note_stall(self, now: int) -> None:
        """A scheduler found no ripe event and had to fast-forward the clock
        (the chaos scheduler reports these) — a liveness health signal."""
        self._bump("stalls", now)

    # -- rolling windows --------------------------------------------------
    def _bump(self, what: str, now: int) -> None:
        self._totals[what] = self._totals.get(what, 0) + 1
        bucket_id = now // self.slo.window
        buckets = self._buckets
        if not buckets or buckets[-1][0] != bucket_id:
            buckets.append((bucket_id, {}))
            while len(buckets) > self.slo.history:
                buckets.popleft()
        counts = buckets[-1][1]
        counts[what] = counts.get(what, 0) + 1

    def _window_counts(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for _bucket_id, counts in self._buckets:
            for what, count in counts.items():
                merged[what] = merged.get(what, 0) + count
        return merged

    # -- scores -----------------------------------------------------------
    def replica_health(self, name: str, now: Optional[int] = None) -> float:
        """Staleness-derived health in ``[0, 1]``: 1 = active this instant,
        0 = silent for ``stale_after`` or longer.  An actor never observed
        scores 1.0 — absence of evidence is not evidence of failure."""
        last = self._last_active.get(name)
        if last is None:
            return 1.0
        age = max(0, (self.now() if now is None else now) - last)
        return round(max(0.0, 1.0 - age / self.slo.stale_after), 4)


class HealthView:
    """Query API + deterministic report exporter over a :class:`HealthPlane`."""

    def __init__(self, plane: HealthPlane) -> None:
        self._plane = plane

    # -- detector inputs -------------------------------------------------
    def replica_health(self, name: str, now: Optional[int] = None) -> float:
        return self._plane.replica_health(name, now=now)

    def suspects(self, threshold: float = 0.25) -> Tuple[str, ...]:
        """Actors whose health score is at or below ``threshold``, sorted."""
        plane = self._plane
        now = plane.now()
        return tuple(
            sorted(
                name
                for name in plane._last_active
                if plane.replica_health(name, now=now) <= threshold
            )
        )

    def slo_attainment(self, txn_kind: str) -> Optional[float]:
        """Fraction of ``txn_kind`` transactions inside their SLO (``None``
        before any completed)."""
        ok = self._plane._slo_ok.get(txn_kind, 0)
        breach = self._plane._slo_breach.get(txn_kind, 0)
        total = ok + breach
        return round(ok / total, 4) if total else None

    def _window_rate(self, what: str) -> float:
        counts = self._plane._window_counts()
        events = counts.get("events", 0)
        return round(counts.get(what, 0) / events, 4) if events else 0.0

    def timeout_rate(self) -> float:
        """Timeouts per observed event over the rolling window."""
        return self._window_rate("timeouts")

    def error_rate(self) -> float:
        """Protocol errors (epoch-mismatch replies) per observed event over
        the rolling window."""
        return self._window_rate("errors")

    def probe_rtt(self, replica: str) -> Dict[str, float]:
        histogram = self._plane._probe_rtt.get(replica)
        return histogram.summary() if histogram is not None else {"count": 0}

    # -- the end-of-run report -------------------------------------------
    def report(self) -> Dict[str, Any]:
        """A plain, JSON-able, deterministically ordered health report."""
        plane = self._plane
        now = plane.now()
        kinds = sorted(
            set(plane._latency) | set(plane._slo_ok) | set(plane._slo_breach)
        )
        slo: Dict[str, Any] = {}
        for kind in kinds:
            histogram = plane._latency.get(kind)
            slo[kind] = {
                "slo": plane.slo.latency_slo(kind),
                "attainment": self.slo_attainment(kind),
                "ok": plane._slo_ok.get(kind, 0),
                "breach": plane._slo_breach.get(kind, 0),
                "latency": histogram.summary() if histogram is not None else {"count": 0},
            }
        replicas = {
            name: {
                "health": plane.replica_health(name, now=now),
                "last_active": plane._last_active[name],
                "probe_rtt": self.probe_rtt(name),
            }
            for name in sorted(plane._last_active)
        }
        return {
            "vtime": now,
            "policy": plane.slo.describe(),
            "slo": slo,
            "rolling": {
                "window": plane.slo.window,
                "history": plane.slo.history,
                "timeout_rate": self.timeout_rate(),
                "error_rate": self.error_rate(),
                "counts": dict(sorted(plane._window_counts().items())),
            },
            "totals": dict(sorted(plane._totals.items())),
            "suspects": list(self.suspects()),
            "incomplete_txns": sorted(plane._inflight),
        }

    def render(self) -> str:
        """Human-readable multi-line rendering of :meth:`report`."""
        report = self.report()
        lines = [f"health @ vtime {report['vtime']} [{report['policy']}]"]
        for kind, row in report["slo"].items():
            attainment = row["attainment"]
            shown = f"{attainment:.2%}" if attainment is not None else "n/a"
            latency = row["latency"]
            if latency["count"]:
                detail = (
                    f"p50={latency['p50']:g} p95={latency['p95']:g} "
                    f"max={latency['max']:g}"
                )
            else:
                detail = "no samples"
            lines.append(
                f"  {kind}: {shown} in SLO (<= {row['slo']}), "
                f"{row['ok']} ok / {row['breach']} breach, {detail}"
            )
        rolling = report["rolling"]
        lines.append(
            f"  rolling({rolling['window']}x{rolling['history']}): "
            f"timeout_rate={rolling['timeout_rate']:.4f} "
            f"error_rate={rolling['error_rate']:.4f}"
        )
        totals = report["totals"]
        lines.append(
            "  totals: "
            + " ".join(f"{k}={v}" for k, v in totals.items())
        )
        if report["suspects"]:
            lines.append(f"  suspects: {', '.join(report['suspects'])}")
        if report["incomplete_txns"]:
            lines.append(f"  incomplete: {', '.join(report['incomplete_txns'])}")
        return "\n".join(lines)


def derive_health(simulation: Any, slo: Optional[SLOPolicy] = None) -> HealthView:
    """Post-mortem health: replay a finished run's retained trace through a
    fresh detached plane (clock reconstructed from vtime stamps / indices)."""
    plane = HealthPlane(slo=slo)
    for action in simulation.trace:
        plane.on_action(action)
    return HealthView(plane)
