"""Streaming invariant monitors: the offline safety checkers, made online.

The post-mortem checkers in ``tests/invariants.py`` discover a safety
violation only after the run ends — at event 400 of a 50k-event chaos run,
49.6k more events execute before anyone notices.  This module re-implements
the same invariants as *incremental automata* fed by the trace observer
hook (``Trace.set_observer`` → :meth:`ObservabilityPlane.on_action` →
:meth:`MonitorSuite.on_action`), each maintaining O(1)-per-event state:

* **election safety** — at most one leader per term, from the
  ``consensus="became-leader"`` internal actions;
* **log matching / state-machine safety** — every applied ``(index, term,
  request)`` triple must agree across members, from ``consensus="apply"``;
* **quorum intersection across epochs** — every ``joint-begin`` the run
  enters is checked against the build's quorum policy the moment the joint
  configuration opens (the same exhaustive minimal-subset check the offline
  checker runs, shared via :func:`joint_quorums_intersect`);
* **at-most-one-config-in-flight** — ``joint-begin``/``commit`` markers
  (storage and consensus alike) must strictly alternate;
* **lease safety** — no locally-served read outside its leader's proven
  lease window, no two overlapping windows across members, no election
  completing inside a live foreign lease (from the ``lease-*`` and
  ``local-read`` internal actions of :mod:`repro.consensus.lease`).

A broken rule produces a structured :class:`InvariantViolation` carrying the
global trace index, the automaton, and a bounded causal suffix of the most
recent actions.  With ``halt_on_violation`` the suite raises
:class:`InvariantViolationError` from inside the observer — the exception
propagates out of ``Trace.append`` and out of ``Simulation.step``, halting a
chaos run at the first offending event instead of thousands later.

The suite is a pure listener: it never appends actions, never touches the
scheduler or RNG, so a monitored run's trace stays byte-identical (pinned by
the golden-signature tests).  It also keeps its own running event count, so
alerts carry true global indices even under a ``sampled`` trace mode where
dropped records are never stamped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import combinations
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..ioa.actions import Action, ActionKind


def joint_quorums_intersect(old, new, policy) -> bool:
    """Exhaustive check that every read quorum of ``C_old,new`` intersects
    every write quorum of ``C_old`` and of ``C_new`` (minimal subsets
    suffice: any larger quorum contains a minimal one).

    Shared by the offline checker (``tests/invariants.py``) and the online
    :class:`QuorumIntersectionMonitor`, so "online/offline parity" for this
    rule holds by construction.
    """
    r_old, r_new = policy.read_quorum(len(old)), policy.read_quorum(len(new))
    w_old, w_new = policy.write_quorum(len(old)), policy.write_quorum(len(new))
    read_quorums = [
        set(ro) | set(rn)
        for ro in combinations(old, r_old)
        for rn in combinations(new, r_new)
    ]
    write_quorums = [set(w) for w in combinations(old, w_old)]
    write_quorums += [set(w) for w in combinations(new, w_new)]
    return all(rq & wq for rq in read_quorums for wq in write_quorums)


@dataclass(frozen=True)
class InvariantViolation:
    """One broken safety rule, caught the moment it entered the trace."""

    monitor: str
    trace_index: int
    actor: str
    message: str
    #: human-readable describes of the last few actions before (and
    #: including) the offending one — the bounded causal suffix.
    suffix: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"[{self.monitor}] violated at trace index {self.trace_index} "
            f"(actor {self.actor}): {self.message}"
        ]
        if self.suffix:
            lines.append("  causal suffix (newest last):")
            lines.extend(f"    {line}" for line in self.suffix)
        return "\n".join(lines)


class InvariantViolationError(AssertionError):
    """Raised by ``halt_on_violation`` suites; carries the violation."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(violation.describe())
        self.violation = violation


class OnlineMonitor:
    """One incremental invariant automaton.

    Subclasses implement :meth:`observe`, returning ``None`` while the rule
    holds and a violation message the moment it breaks.  State must be
    O(1)-updatable per event; the suite handles alert packaging.
    """

    name = "abstract"

    def observe(self, action: Action, index: int) -> Optional[str]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class ElectionSafetyMonitor(OnlineMonitor):
    """At most one leader per term (dict term → first elected member)."""

    name = "election-safety"

    def __init__(self) -> None:
        self._leader_of_term: Dict[Any, str] = {}

    def observe(self, action: Action, index: int) -> Optional[str]:
        if action.kind is not ActionKind.INTERNAL:
            return None
        if action.get("consensus") != "became-leader":
            return None
        term = action.get("term")
        member = str(action.get("member", action.actor))
        holder = self._leader_of_term.get(term)
        if holder is None:
            self._leader_of_term[term] = member
            return None
        if holder != member:
            return (
                f"term {term} elected both {holder!r} and {member!r} "
                "(election safety requires at most one leader per term)"
            )
        return None


class LogMatchingMonitor(OnlineMonitor):
    """Applied entries agree across members, position by position.

    This is the streaming face of both offline log checkers (log matching
    and state-machine safety): members apply committed entries in log order,
    so the ``(term, request)`` sequence applied *at each log index* — a
    batched entry unpacks to several sub-requests at one index — must be a
    prefix-consistent match across members.  The first member to reach a
    position defines the canonical entry; every later member is compared
    against it.  State: one canon list per log index plus one position
    counter per (member, index) — O(1) per event.
    """

    name = "log-matching"

    def __init__(self) -> None:
        self._canon: Dict[Any, List[Tuple[Any, Any]]] = {}
        self._position: Dict[Tuple[str, Any], int] = {}

    def observe(self, action: Action, index: int) -> Optional[str]:
        if action.kind is not ActionKind.INTERNAL:
            return None
        if action.get("consensus") != "apply":
            return None
        log_index = action.get("index")
        entry = (action.get("term"), action.get("request"))
        member = str(action.get("member", action.actor))
        key = (member, log_index)
        position = self._position.get(key, 0)
        self._position[key] = position + 1
        canon = self._canon.setdefault(log_index, [])
        if position >= len(canon):
            canon.append(entry)
            return None
        expected = self._canon[log_index][position]
        if expected != entry:
            return (
                f"log index {log_index} (sub-entry {position}) applied as "
                f"term={expected[0]} request={expected[1]!r} by an earlier "
                f"member but as term={entry[0]} request={entry[1]!r} at "
                f"{member}"
            )
        return None


def _split_group(value: Any) -> Tuple[str, ...]:
    """The reconfig driver's internal actions carry groups comma-joined."""
    if not value:
        return ()
    return tuple(str(value).split(","))


class QuorumIntersectionMonitor(OnlineMonitor):
    """Every joint configuration keeps read/write quorum intersection.

    Checked at the ``joint-begin`` (and ``cns-joint-begin``) marker — the
    instant the joint configuration opens — against the quorum policy the
    system was built with (:meth:`MonitorSuite.set_quorum_policy`, wired by
    ``Protocol.build``).  Without a policy the monitor stays silent: a
    standalone plane has no way to know the quorum rule.
    """

    name = "quorum-intersection"

    def __init__(self) -> None:
        self._policy: Optional[Any] = None

    def set_quorum_policy(self, policy: Any) -> None:
        self._policy = policy

    def observe(self, action: Action, index: int) -> Optional[str]:
        if action.kind is not ActionKind.INTERNAL or self._policy is None:
            return None
        what = action.get("reconfig")
        if what not in ("joint-begin", "cns-joint-begin"):
            return None
        old = _split_group(action.get("old"))
        new = _split_group(action.get("new"))
        if not old or not new:
            return None
        if not joint_quorums_intersect(old, new, self._policy):
            return (
                f"joint config {old} -> {new} (epoch {action.get('epoch')}) "
                f"has a read quorum missing a write quorum under "
                f"{self._policy.describe()}"
            )
        return None


class ConfigInFlightMonitor(OnlineMonitor):
    """At most one configuration change in flight: ``joint-begin`` and
    ``commit`` markers (storage *and* consensus — the directory serializes
    them globally) must strictly alternate."""

    name = "config-in-flight"

    def __init__(self) -> None:
        self._in_flight = False

    def observe(self, action: Action, index: int) -> Optional[str]:
        if action.kind is not ActionKind.INTERNAL:
            return None
        what = action.get("reconfig")
        if what in ("joint-begin", "cns-joint-begin"):
            if self._in_flight:
                return (
                    f"{what} at epoch {action.get('epoch')} while a "
                    "configuration change was still in flight"
                )
            self._in_flight = True
        elif what in ("commit", "cns-commit"):
            if not self._in_flight:
                return f"{what} at epoch {action.get('epoch')} without a joint-begin"
            self._in_flight = False
        return None


class LeaseSafetyMonitor(OnlineMonitor):
    """No stale read across a lease/election boundary (O(1) per event).

    Three rules over the lease internal actions
    (:mod:`repro.consensus.lease`):

    * a ``local-read`` must fall inside its server's *announced* lease
      window — same member, same term, vtime strictly before the proven
      expiry (``lease-acquired``/``lease-renewed`` announce windows);
    * a newly announced window must not overlap — as a time interval —
      the latest-expiring window of a *different* member (the holder
      itself may extend or re-acquire, and a proof that arrives late, for
      a window already wholly in the past, is stale but harmless: no read
      can be served in it);
    * an election must not complete while another member's window is live
      (``became-leader`` during a live foreign lease is exactly the
      boundary a stale read could cross).

    State: the current window per member plus the running latest-expiring
    window — no per-read or per-term growth.
    """

    name = "lease-safety"

    def __init__(self) -> None:
        #: member -> (term, start, until) of its newest announced window
        self._windows: Dict[str, Tuple[Any, int, int]] = {}
        #: the latest-expiring window seen so far: (member, start, until)
        self._max_member: Optional[str] = None
        self._max_start = 0
        self._max_until = 0

    def _announce(self, member: str, start: int, until: int) -> None:
        if until > self._max_until:
            self._max_member = member
            self._max_start = start
            self._max_until = until

    def observe(self, action: Action, index: int) -> Optional[str]:
        if action.kind is not ActionKind.INTERNAL:
            return None
        kind = action.get("consensus")
        if kind == "local-read":
            member = str(action.get("member", action.actor))
            term = action.get("term")
            vtime = int(action.get("vtime", 0))
            window = self._windows.get(member)
            if window is None:
                return (
                    f"{member} served {action.get('request')!r} locally at "
                    f"vtime {vtime} without ever announcing a lease window"
                )
            w_term, w_start, w_until = window
            if w_term != term:
                return (
                    f"{member} served {action.get('request')!r} locally in "
                    f"term {term} under a window proven in term {w_term}"
                )
            if vtime >= w_until:
                return (
                    f"{member} served {action.get('request')!r} locally at "
                    f"vtime {vtime}, outside its proven lease window "
                    f"[{w_start}, {w_until})"
                )
            return None
        if kind in ("lease-acquired", "lease-renewed"):
            member = str(action.get("member", action.actor))
            start = int(action.get("start", 0))
            until = int(action.get("until", 0))
            if (
                self._max_member is not None
                and self._max_member != member
                and start < self._max_until
                and self._max_start < until
            ):
                other, o_start, o_until = self._max_member, self._max_start, self._max_until
                self._windows[member] = (action.get("term"), start, until)
                self._announce(member, start, until)
                return (
                    f"{member}'s lease window [{start}, {until}) overlaps "
                    f"{other!r}'s window [{o_start}, {o_until}) — "
                    "two lease holders could serve diverging reads"
                )
            self._windows[member] = (action.get("term"), start, until)
            self._announce(member, start, until)
            return None
        if kind == "became-leader":
            member = str(action.get("member", action.actor))
            vtime = int(action.get("vtime", 0))
            if (
                self._max_member is not None
                and self._max_member != member
                and vtime < self._max_until
            ):
                return (
                    f"{member} won an election at vtime {vtime} while "
                    f"{self._max_member!r}'s lease window was still live "
                    f"(until {self._max_until}) — elections must wait out "
                    "the old lease"
                )
            return None
        return None


def offline_lease_violations(actions: Sequence[Any]) -> List[Tuple[int, str]]:
    """Post-mortem lease-safety check: replay a trace through a fresh
    :class:`LeaseSafetyMonitor` and collect ``(trace_index, message)`` pairs.

    This *is* the online monitor run offline — online/offline parity for the
    lease invariant holds by construction, the same way
    :func:`joint_quorums_intersect` is shared by the quorum checkers.
    """
    monitor = LeaseSafetyMonitor()
    violations: List[Tuple[int, str]] = []
    for index, action in enumerate(actions):
        stamped = getattr(action, "index", -1)
        at = stamped if stamped >= 0 else index
        message = monitor.observe(action, at)
        if message is not None:
            violations.append((at, message))
    return violations


def default_monitors() -> Tuple[OnlineMonitor, ...]:
    """Fresh instances of all five streaming invariant automata."""
    return (
        ElectionSafetyMonitor(),
        LogMatchingMonitor(),
        QuorumIntersectionMonitor(),
        ConfigInFlightMonitor(),
        LeaseSafetyMonitor(),
    )


class MonitorSuite:
    """The streaming monitors of one run, plus alert plumbing.

    ``halt_on_violation`` raises :class:`InvariantViolationError` from the
    observer at the first broken rule (for chaos runs that should stop at
    the offending event); otherwise alerts accumulate in :attr:`alerts` for
    end-of-run assertions.  ``suffix_window`` bounds the causal suffix
    attached to each alert.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[OnlineMonitor]] = None,
        halt_on_violation: bool = False,
        suffix_window: int = 16,
    ) -> None:
        self.monitors: Tuple[OnlineMonitor, ...] = (
            tuple(monitors) if monitors is not None else default_monitors()
        )
        self.halt_on_violation = halt_on_violation
        self.alerts: List[InvariantViolation] = []
        self._suffix: Deque[Action] = deque(maxlen=max(1, suffix_window))
        #: running count of *observed* actions == the global trace index of
        #: the next one; kept locally because a sampled trace never stamps
        #: the records it drops.
        self._seen = 0

    # -- wiring ----------------------------------------------------------
    def set_quorum_policy(self, policy: Any) -> None:
        for monitor in self.monitors:
            setter = getattr(monitor, "set_quorum_policy", None)
            if setter is not None:
                setter(policy)

    # -- the per-event hook ---------------------------------------------
    def on_action(self, action: Action) -> None:
        index = action.index if action.index >= 0 else self._seen
        self._seen += 1
        self._suffix.append(action)
        for monitor in self.monitors:
            message = monitor.observe(action, index)
            if message is None:
                continue
            violation = InvariantViolation(
                monitor=monitor.name,
                trace_index=index,
                actor=action.actor,
                message=message,
                suffix=tuple(a.describe() for a in self._suffix),
            )
            self.alerts.append(violation)
            if self.halt_on_violation:
                raise InvariantViolationError(violation)

    # -- reading ---------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.alerts

    def assert_ok(self) -> None:
        """Raise on any accumulated alert (end-of-run form of the gate)."""
        if self.alerts:
            raise InvariantViolationError(self.alerts[0])

    def describe(self) -> str:
        if not self.alerts:
            return (
                f"monitors ok: {', '.join(m.name for m in self.monitors)} "
                f"({self._seen} events observed)"
            )
        return "\n".join(v.describe() for v in self.alerts)


def watch_trace(trace: Any, suite: Optional[MonitorSuite] = None) -> MonitorSuite:
    """Attach a suite directly to a trace (no plane needed) and replay what
    the trace already holds, so late attachment still sees a full picture.

    Note the replay sees only *retained* records — attach before running
    (or use :class:`~repro.obs.ObservabilityPlane`, which attaches at build
    time) for exact monitoring under a sampling trace mode.
    """
    suite = suite if suite is not None else MonitorSuite()
    for action in trace:
        suite.on_action(action)
    trace.set_observer(suite.on_action)
    return suite
