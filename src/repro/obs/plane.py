"""The observability plane: registry + profiler wired onto one simulation.

``ObservabilityPlane`` is the single object the build surface threads
through (``Protocol.build(obs=...)`` / ``ExperimentConfig(observe=True)``).
It is **off by default and inert by construction**: the plane appends no
actions, sends no messages, arms no timers and never touches the scheduler
or the RNG, so a run with the plane enabled produces a trace byte-identical
to a run without it (pinned by the golden-signature tests).  All it does is
*listen*: a trace observer updates the metrics registry on every appended
action, and the kernel calls two mailbox hooks on enqueue/dequeue.

Everything in the registry is derived from simulation-visible values
(virtual clock, payload stamps, action kinds) — wall-clock time only exists
inside the optional :class:`KernelProfiler`, whose report is kept strictly
out of snapshots, span trees and exports.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..ioa.actions import Action, ActionKind
from .health import HealthPlane, HealthView, SLOPolicy
from .monitor import MonitorSuite
from .profiler import KernelProfiler
from .registry import MetricsRegistry


class ObservabilityPlane:
    """Deterministic metrics (plus optional wall-clock profiling) for one run.

    ``monitors`` attaches the streaming invariant monitors
    (:mod:`repro.obs.monitor`): ``True`` for the default suite, or a
    pre-configured :class:`MonitorSuite` (e.g. with ``halt_on_violation``).
    ``health`` attaches the health/SLO plane (:mod:`repro.obs.health`):
    ``True`` for default thresholds, an :class:`SLOPolicy` for custom ones,
    or a pre-built :class:`HealthPlane`.  Both are pure listeners fed from
    the same per-action hook, so every golden byte-identity guarantee of the
    plane extends to them.
    """

    def __init__(
        self,
        profile: bool = False,
        monitors: Union[None, bool, MonitorSuite] = None,
        health: Union[None, bool, SLOPolicy, HealthPlane] = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.profiler: Optional[KernelProfiler] = KernelProfiler() if profile else None
        if monitors is True:
            monitors = MonitorSuite()
        self.monitors: Optional[MonitorSuite] = monitors or None
        if health is True:
            health = HealthPlane()
        elif isinstance(health, SLOPolicy):
            health = HealthPlane(slo=health)
        self.health: Optional[HealthPlane] = health or None
        self.simulation: Optional[Any] = None

    @property
    def health_view(self) -> Optional[HealthView]:
        """The query API over :attr:`health` (``None`` when health is off)."""
        return HealthView(self.health) if self.health is not None else None

    # -- kernel wiring ---------------------------------------------------
    def on_attach(self, simulation: Any) -> None:
        if self.simulation is not None and self.simulation is not simulation:
            raise ValueError(
                "an ObservabilityPlane instance observes exactly one simulation; "
                "build a fresh plane per run"
            )
        self.simulation = simulation
        simulation.trace.set_observer(self.on_action)
        if self.health is not None:
            self.health.on_attach(simulation)
        if self.profiler is not None:
            self.profiler.install(simulation)

    def on_enqueue(self, delivery: Any) -> None:
        """A message entered the kernel's pending-delivery set."""
        gauge = self.registry.gauge("kernel.mailbox_depth", automaton=delivery.message.dst)
        gauge.inc()

    def on_dequeue(self, message: Any) -> None:
        """A pending delivery left the set (delivered, extracted or dropped
        with a retired automaton)."""
        self.registry.gauge("kernel.mailbox_depth", automaton=message.dst).dec()

    # -- the trace observer ----------------------------------------------
    def on_action(self, action: Action) -> None:
        registry = self.registry
        registry.counter("kernel.events", kind=action.kind.value).inc()
        message = action.message
        if action.kind is ActionKind.SEND and message is not None:
            registry.counter("kernel.messages_sent", type=message.msg_type).inc()
            simulation = self.simulation
            if simulation is not None:
                registry.counter(
                    "kernel.messages_channel",
                    channel=simulation.topology.channel_class(message.src, message.dst),
                ).inc()
        elif action.kind is ActionKind.RECV and message is not None:
            if message.msg_type == "ctl-ack":
                registry.counter("controller.acks").inc()
                sent = message.get("sent")
                if isinstance(sent, int) and self.simulation is not None:
                    registry.histogram("controller.probe_rtt").observe(
                        max(0, self.simulation.now() - sent)
                    )
        elif action.kind is ActionKind.INTERNAL and action.info:
            self._on_internal(dict(action.info))
        if self.health is not None:
            self.health.on_action(action)
        # Monitors run last so a halt_on_violation raise (which aborts the
        # kernel step mid-append) never loses the action from metrics/health.
        if self.monitors is not None:
            self.monitors.on_action(action)

    def _on_internal(self, info: dict) -> None:
        registry = self.registry
        if info.get("timeout"):
            registry.counter("kernel.timeouts_fired").inc()
        consensus = info.get("consensus")
        if consensus is not None:
            registry.counter("consensus.events", kind=str(consensus)).inc()
            term = info.get("term")
            if term is not None:
                gauge = registry.gauge("consensus.max_term")
                if int(term) > int(gauge.value or 0):
                    gauge.set(int(term))
            if consensus == "became-leader":
                registry.histogram("consensus.leader_elected_vtime").observe(
                    int(info.get("vtime", 0))
                )
            elif consensus == "apply" and "commit_latency" in info:
                registry.histogram("consensus.commit_latency").observe(
                    int(info["commit_latency"])
                )
                if info.get("read"):
                    registry.counter("consensus.read_applies").inc()
            elif consensus == "local-read" and "read_latency" in info:
                registry.histogram("consensus.lease_read_latency").observe(
                    int(info["read_latency"])
                )
        reconfig = info.get("reconfig")
        if isinstance(reconfig, str):  # timers carry reconfig=<request index>
            registry.counter("reconfig.events", kind=reconfig).inc()
        controller = info.get("controller")
        if controller is not None:
            registry.counter("controller.events", kind=str(controller)).inc()
            vtime = info.get("vtime")
            if controller == "tick":
                registry.counter("controller.probes").inc(int(info.get("probes", 0)))
            elif controller == "replica-dead" and vtime is not None:
                gauge = registry.gauge("controller.first_dead_vtime")
                if registry.counter_value("controller.events", kind="replica-dead") == 1:
                    gauge.set(int(vtime))
            elif controller == "healed" and vtime is not None:
                registry.gauge("controller.last_heal_vtime").set(int(vtime))

    # -- rendering --------------------------------------------------------
    def describe(self) -> str:
        lines = [self.registry.describe()]
        if self.monitors is not None:
            lines.append(self.monitors.describe())
        if self.health is not None:
            lines.append(HealthView(self.health).render())
        if self.profiler is not None:
            steps = self.simulation.steps_taken if self.simulation is not None else 0
            lines.append(self.profiler.report(steps=steps))
        return "\n".join(lines)
