"""Sampling trace mode: the obs-side face of :class:`~repro.ioa.TraceMode`.

The mode itself lives in the kernel (``repro.ioa.trace``) because the trace
owns retention; this module re-exports it next to the rest of the
observability surface and adds the small read-side helpers the benches and
reports use.  The contract that makes sampling safe for observability:

* the trace **observer sees every appended action** in every mode, so the
  metrics registry and the streaming invariant monitors stay exact;
* ``INVOKE``/``RESPOND``/``INTERNAL``/``START`` are always retained — the
  kernel reads invoke/respond indices back out of ``append``, and spans,
  reconfig markers and consensus markers all live on those kinds;
* the sample is drawn by a dedicated ``random.Random(seed)`` inside the
  trace, in append order — the kernel's scheduling RNG is untouched, so the
  *executed* run is byte-identical in every mode and the same seed yields a
  byte-identical sample.
"""

from __future__ import annotations

from typing import Any, Dict

from ..ioa.trace import TraceMode

__all__ = ["TraceMode", "sampling_stats"]


def sampling_stats(trace: Any) -> Dict[str, Any]:
    """Deterministic retention accounting for one trace.

    ``retained``/``dropped`` partition ``total_appended`` under ``sampled``;
    under ``ring`` the drop is implicit (``total_appended - retained``), and
    in full mode both always agree.
    """
    total = trace.total_appended
    retained = len(trace)
    return {
        "mode": trace.mode.describe(),
        "total_appended": total,
        "retained": retained,
        "sampled_out": trace.sampled_out,
        "retention": round(retained / total, 4) if total else 1.0,
    }
