"""Opt-in wall-clock profiling of the kernel hot loop.

The profiler times the three stages of :meth:`Simulation.step` — assembling
the pending-event set (``poll``), the scheduler's pick (``choose``) and
executing the chosen event (``dispatch``) — plus every ``trace_append``
(installed as an instance-level wrapper around the trace's retained-record
path, so the bucket also covers the metrics observer riding on retained
appends; records dropped by a sampling trace mode bypass it).

Wall-clock numbers are **measurement of the simulator, not of the simulated
system**: they never appear in traces, metric snapshots, span trees or any
exported artifact the determinism tests compare.  The report is a separate,
explicitly wall-clock surface for ROADMAP item 2's "profile the kernel hot
path" work and for ``benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Tuple


class KernelProfiler:
    """Accumulates (count, seconds) per named bucket."""

    def __init__(self) -> None:
        self._buckets: Dict[str, List[float]] = {}

    def add(self, bucket: str, seconds: float) -> None:
        entry = self._buckets.get(bucket)
        if entry is None:
            entry = self._buckets[bucket] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds

    def install(self, simulation: Any) -> None:
        """Wrap the trace's retained-record path with a timing shim.

        The shim goes on ``Trace._store`` — the stamp-and-keep step — rather
        than on ``append``: under a sampling trace mode, dropped records
        never reach ``_store``, so the bucket measures the record-keeping a
        run actually performed (and its count stays ``len(trace)`` in every
        mode)."""
        trace = simulation.trace
        original = trace._store

        def timed_store(action, _original=original, _profiler=self):
            started = perf_counter()
            try:
                return _original(action)
            finally:
                _profiler.add("trace_append", perf_counter() - started)

        trace._store = timed_store

    # -- reading ---------------------------------------------------------
    def buckets(self) -> Tuple[str, ...]:
        return tuple(sorted(self._buckets))

    def seconds(self, bucket: str) -> float:
        entry = self._buckets.get(bucket)
        return entry[1] if entry is not None else 0.0

    def count(self, bucket: str) -> int:
        entry = self._buckets.get(bucket)
        return int(entry[0]) if entry is not None else 0

    def total_seconds(self) -> float:
        return sum(entry[1] for entry in self._buckets.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": int(entry[0]), "seconds": entry[1]}
            for name, entry in sorted(self._buckets.items())
        }

    def report(self, steps: int = 0) -> str:
        """Human-readable wall-clock breakdown (never part of sim results)."""
        lines = ["kernel profile (wall clock):"]
        total = self.total_seconds()
        for name in self.buckets():
            entry = self._buckets[name]
            share = (entry[1] / total * 100.0) if total else 0.0
            mean_us = (entry[1] / entry[0] * 1e6) if entry[0] else 0.0
            lines.append(
                f"  {name:<13s} {entry[1] * 1e3:9.2f} ms  "
                f"({share:5.1f}%)  n={int(entry[0]):<8d} mean={mean_us:.1f}us"
            )
        if steps and total:
            lines.append(f"  ~{steps / total:,.0f} events/sec over {steps} steps")
        return "\n".join(lines)
