"""Stable storage for consensus members: the ``StableStore`` interface.

Raft's safety argument assumes a member's term, vote and log survive
crashes.  The simulator's crash-with-amnesia hook (``forget()``) deliberately
violates that assumption — which is honest about the hazard (the double-vote
tests pin it) but forbids amnesiac members from ever rejoining safely.  A
:class:`StableStore` restores the assumption: a
:class:`~repro.consensus.coordinator.ReplicatedCoordinator` with a store
attached writes term/vote/log/commit *through* to it before acting, and
``forget()`` recovers from it instead of starting blank.

Two backends implement the interface:

* :class:`SimStableStore` (here) — plain in-memory state that survives
  ``forget()`` because it lives *outside* the automaton's volatile state.
  Deterministic and trace-invisible: attaching it changes no messages, no
  timers, no scheduling.
* :class:`~repro.persist.filestore.FileStableStore` — an append-only
  journal on disk with hash-chain integrity, for long real-clock runs and
  restart-from-disk recovery across builds.

The write API mirrors what the coordinator persists (Raft figure 2's
"persistent state" plus the snapshot):

* ``save_meta(term, voted_for)`` — election state, written before any vote
  or candidacy takes effect;
* ``log_append(index, entry)`` / ``log_truncate(from_index)`` — the log,
  written through on every append/merge;
* ``save_commit(index)`` — the commit cursor (an optimisation: recovery
  could re-learn it from the leader, persisting it lets a recovered member
  replay its applied state immediately);
* ``save_snapshot(snapshot)`` — a checkpoint of the applied state machine;
  entries at or below ``snapshot["index"]`` are discarded from the store
  (log compaction).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple


class StableStore:
    """Interface + bookkeeping shared by every stable-storage backend."""

    backend = "abstract"

    def __init__(self) -> None:
        #: write counters (observability / benchmarks; no behaviour hangs
        #: off them)
        self.meta_saves = 0
        self.appends = 0
        self.truncations = 0
        self.commit_saves = 0
        self.snapshots = 0

    # -- election state -------------------------------------------------
    def save_meta(self, term: int, voted_for: Optional[str]) -> None:
        raise NotImplementedError

    def load_meta(self) -> Optional[Tuple[int, Optional[str]]]:
        raise NotImplementedError

    # -- log ------------------------------------------------------------
    def log_append(self, index: int, entry: Any) -> None:
        raise NotImplementedError

    def log_truncate(self, from_index: int) -> None:
        raise NotImplementedError

    def load_entries(self) -> Tuple[Tuple[int, Any], ...]:
        """The stored ``(index, entry)`` suffix, ascending by index."""
        raise NotImplementedError

    # -- commit cursor --------------------------------------------------
    def save_commit(self, index: int) -> None:
        raise NotImplementedError

    def load_commit(self) -> int:
        raise NotImplementedError

    # -- checkpoint -----------------------------------------------------
    def save_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Persist a checkpoint and discard entries <= ``snapshot['index']``."""
        raise NotImplementedError

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    # -- introspection --------------------------------------------------
    def is_empty(self) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}()"


class SimStableStore(StableStore):
    """In-simulation stable storage: survives ``forget()``, changes nothing.

    The store is attached to the member from *outside* its volatile state
    (the build plumbing holds it in a
    :class:`~repro.persist.plane.PersistencePlane`), so a crash-with-amnesia
    wipes the automaton but not the store — exactly the distinction between
    RAM and disk that Raft's persistence rules draw.  Values are kept as the
    in-sim objects themselves (``LogEntry`` and friends are immutable);
    snapshot payloads are shallow-copied on the way in and out so neither
    side aliases the other's mutable reply cache.
    """

    backend = "sim"

    def __init__(self) -> None:
        super().__init__()
        self._meta: Optional[Tuple[int, Optional[str]]] = None
        self._entries: Dict[int, Any] = {}
        self._commit = 0
        self._snapshot: Optional[Dict[str, Any]] = None

    # -- election state -------------------------------------------------
    def save_meta(self, term: int, voted_for: Optional[str]) -> None:
        meta = (int(term), voted_for)
        if meta == self._meta:
            return
        self._meta = meta
        self.meta_saves += 1

    def load_meta(self) -> Optional[Tuple[int, Optional[str]]]:
        return self._meta

    # -- log ------------------------------------------------------------
    def log_append(self, index: int, entry: Any) -> None:
        self._entries[int(index)] = entry
        self.appends += 1

    def log_truncate(self, from_index: int) -> None:
        from_index = int(from_index)
        for index in [i for i in self._entries if i >= from_index]:
            del self._entries[index]
        self.truncations += 1

    def load_entries(self) -> Tuple[Tuple[int, Any], ...]:
        return tuple(sorted(self._entries.items()))

    # -- commit cursor --------------------------------------------------
    def save_commit(self, index: int) -> None:
        if int(index) > self._commit:
            self._commit = int(index)
            self.commit_saves += 1

    def load_commit(self) -> int:
        return self._commit

    # -- checkpoint -----------------------------------------------------
    def _copy_snapshot(self, snapshot: Mapping[str, Any]) -> Dict[str, Any]:
        copied = dict(snapshot)
        copied["replies"] = dict(copied.get("replies", {}))
        return copied

    def save_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        self._snapshot = self._copy_snapshot(snapshot)
        through = int(self._snapshot.get("index", 0))
        for index in [i for i in self._entries if i <= through]:
            del self._entries[index]
        self.snapshots += 1

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        if self._snapshot is None:
            return None
        return self._copy_snapshot(self._snapshot)

    # -- introspection --------------------------------------------------
    def is_empty(self) -> bool:
        return (
            self._meta is None
            and not self._entries
            and self._commit == 0
            and self._snapshot is None
        )

    def describe(self) -> str:
        parts = [f"entries={len(self._entries)}", f"commit={self._commit}"]
        if self._meta is not None:
            parts.insert(0, f"term={self._meta[0]}")
        if self._snapshot is not None:
            parts.append(f"snapshot@{self._snapshot.get('index', 0)}")
        return f"SimStableStore({', '.join(parts)})"
