"""``repro.persist`` — stable storage for consensus members.

See :mod:`repro.persist.store` for the interface and the in-sim backend,
:mod:`repro.persist.filestore` for the hash-chained on-disk journal, and
:mod:`repro.persist.plane` for the build-time plumbing
(``BuildConfig(persistence=...)``).
"""

from .filestore import FileStableStore, IntegrityError, decode_value, encode_value
from .plane import PersistencePlane, PersistencePolicy
from .store import SimStableStore, StableStore

__all__ = [
    "FileStableStore",
    "IntegrityError",
    "PersistencePlane",
    "PersistencePolicy",
    "SimStableStore",
    "StableStore",
    "decode_value",
    "encode_value",
]
