"""The persistence plane: policy + per-member store bookkeeping.

``BuildConfig(persistence=...)`` accepts either a
:class:`PersistencePolicy` (the declarative knob benchmark sweeps use) or a
ready-made :class:`PersistencePlane`.  The plane owns one
:class:`~repro.persist.store.StableStore` per consensus member — created
lazily by name, so members spawned mid-run by a reconfiguration get stores
exactly like construction-time members — and is the handle tests use to
model *restart-from-storage*: build a second system with the same plane (or
a fresh plane over the same file root) and every member recovers from what
the first run persisted.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from .store import SimStableStore, StableStore

_BACKENDS = ("sim", "file")


@dataclass(frozen=True)
class PersistencePolicy:
    """Declarative description of a member's durable storage.

    ``backend`` picks the store (``"sim"`` survives ``forget()`` inside one
    simulation; ``"file"`` is an on-disk journal under ``root`` that also
    survives process restarts).  ``compact_every`` enables checkpointing:
    whenever a member's applied-but-uncompacted prefix reaches that many
    entries, it snapshots the state machine and compacts the log.  ``None``
    keeps the full log (the seed behaviour with durability added).
    """

    backend: str = "sim"
    root: Optional[str] = None
    compact_every: Optional[int] = None
    fsync: bool = False

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"unknown persistence backend {self.backend!r}; valid backends: "
                + ", ".join(repr(b) for b in _BACKENDS)
            )
        if self.backend == "file" and not self.root:
            raise ValueError("persistence backend 'file' needs a root directory")
        if self.compact_every is not None and int(self.compact_every) < 1:
            raise ValueError(f"compact_every must be >= 1, got {self.compact_every}")

    def describe(self) -> str:
        parts = [self.backend]
        if self.compact_every is not None:
            parts.append(f"compact_every={self.compact_every}")
        if self.fsync:
            parts.append("fsync")
        return f"persist({', '.join(parts)})"


class PersistencePlane:
    """One stable store per consensus member, created lazily by name."""

    def __init__(self, policy: Optional[PersistencePolicy] = None) -> None:
        self.policy = policy if policy is not None else PersistencePolicy()
        self._stores: Dict[str, StableStore] = {}

    @classmethod
    def of(cls, value) -> "PersistencePlane":
        """Normalise the ``persistence=`` build argument to a plane."""
        if isinstance(value, PersistencePlane):
            return value
        if isinstance(value, PersistencePolicy):
            return cls(value)
        raise ValueError(
            "persistence must be a PersistencePolicy or PersistencePlane, "
            f"got {type(value).__name__}"
        )

    def store_for(self, member: str) -> StableStore:
        store = self._stores.get(member)
        if store is None:
            if self.policy.backend == "file":
                from .filestore import FileStableStore

                store = FileStableStore(
                    Path(self.policy.root) / f"{member}.wal", fsync=self.policy.fsync
                )
            else:
                store = SimStableStore()
            self._stores[member] = store
        return store

    def stores(self) -> Dict[str, StableStore]:
        """The stores handed out so far (member name -> store)."""
        return dict(self._stores)

    def describe(self) -> str:
        return f"PersistencePlane({self.policy.describe()}, members={len(self._stores)})"
