"""File-backed stable storage: an append-only journal with hash-chain integrity.

Each write becomes one JSON line ``{"h": ..., "p": ..., "r": record}`` where
``h = sha256(p + canonical_json(record))`` and ``p`` is the previous line's
``h`` (the genesis record links to a fixed seed).  The chain makes silent
corruption impossible to miss: flipping a bit anywhere re-hashes that line,
which breaks its own digest *and* unlinks every later line.

Failure handling is deliberately asymmetric, matching what each failure
means on a real disk:

* a **torn tail** — the final line is incomplete or unparseable, the classic
  crash-mid-write artifact — is recovered from: the store silently drops the
  partial record and resumes from the last intact one (``recovered_tail`` is
  set so tests and operators can see it happened);
* **anything else** — an unparseable line with valid records after it, a
  digest mismatch, a broken link — raises :class:`IntegrityError`.  Data
  that fails its checksum is never partially trusted.

Compaction rewrites the journal: ``save_snapshot`` drops the covered entries
and atomically replaces the file (temp file + ``os.replace``) with a fresh
chain containing just the snapshot, the surviving suffix and the current
meta/commit records — this is what bounds journal size on long runs
(``compaction_ratio`` in the persistence benchmark).

In-sim values (``LogEntry``, ``Key``, nested tuples) round-trip through a
small tagged-JSON codec; plain scalars pass through untouched.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..consensus.log import LogEntry
from ..txn.objects import Key
from .store import SimStableStore, StableStore

#: link target of the first record in a journal
GENESIS = "repro-persist-v1"


class IntegrityError(Exception):
    """The journal's hash chain does not verify: corruption, not a torn tail."""


# ----------------------------------------------------------------------
# Tagged-JSON codec for in-sim values
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """JSON-encodable form of an in-sim value (tuples/Key/LogEntry tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Key):
        return {"~": "key", "v": [value.z, value.writer]}
    if isinstance(value, LogEntry):
        return {
            "~": "entry",
            "v": [
                value.term,
                value.request_id,
                value.msg_type,
                encode_value(value.payload),
                value.client,
                value.proposed_at,
            ],
        }
    if isinstance(value, tuple):
        return {"~": "tuple", "v": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"~": "list", "v": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"stable storage cannot encode dict key {key!r}")
        return {"~": "dict", "v": [[key, encode_value(item)] for key, item in value.items()]}
    raise TypeError(f"stable storage cannot encode {type(value).__name__}: {value!r}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if not isinstance(value, dict):
        return value
    tag = value.get("~")
    if tag == "key":
        z, writer = value["v"]
        return Key(z=int(z), writer=writer)
    if tag == "entry":
        term, request_id, msg_type, payload, client, proposed_at = value["v"]
        return LogEntry(
            term=int(term),
            request_id=request_id,
            msg_type=msg_type,
            payload=decode_value(payload),
            client=client,
            proposed_at=int(proposed_at),
        )
    if tag == "tuple":
        return tuple(decode_value(item) for item in value["v"])
    if tag == "list":
        return [decode_value(item) for item in value["v"]]
    if tag == "dict":
        return {key: decode_value(item) for key, item in value["v"]}
    raise IntegrityError(f"journal record carries unknown value tag {tag!r}")


def _canonical(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _chain_hash(prev: str, record: Mapping[str, Any]) -> str:
    return hashlib.sha256((prev + _canonical(record)).encode("utf-8")).hexdigest()


class FileStableStore(StableStore):
    """Append-only hash-chained journal backend for :class:`StableStore`.

    State queries are served from an in-memory :class:`SimStableStore`
    mirror that is rebuilt from the journal on open and updated on every
    write — the file is the durability layer, the mirror is the read path.
    """

    backend = "file"

    def __init__(self, path: Any, fsync: bool = False) -> None:
        super().__init__()
        self.path = Path(path)
        self.fsync = bool(fsync)
        #: set when opening dropped a torn final record
        self.recovered_tail = False
        #: bytes before/after the last compacting rewrite (benchmark hook)
        self.last_rewrite: Optional[Tuple[int, int]] = None
        self._mirror = SimStableStore()
        self._tip = GENESIS
        self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Journal I/O
    # ------------------------------------------------------------------
    def _load(self) -> None:
        raw_lines = self.path.read_bytes().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        records: List[Dict[str, Any]] = []
        tip = GENESIS
        for position, raw in enumerate(raw_lines):
            try:
                line = json.loads(raw.decode("utf-8"))
                if not isinstance(line, dict) or "h" not in line or "r" not in line:
                    raise ValueError("not a journal line")
            except (ValueError, UnicodeDecodeError):
                if position == len(raw_lines) - 1:
                    # Torn tail: the crash-mid-write artifact.  Drop the
                    # partial record and trim the file to the intact prefix.
                    self.recovered_tail = True
                    self._rewrite_raw(raw_lines[:position])
                    break
                raise IntegrityError(
                    f"{self.path.name}: journal line {position + 1} is unreadable but "
                    f"{len(raw_lines) - position - 1} intact line(s) follow — "
                    "mid-chain corruption, refusing to recover"
                ) from None
            if line.get("p") != tip or _chain_hash(tip, line["r"]) != line["h"]:
                raise IntegrityError(
                    f"{self.path.name}: hash chain breaks at journal line {position + 1} "
                    "— the record does not match its digest, refusing to recover"
                )
            tip = line["h"]
            records.append(line["r"])
        self._tip = tip
        for record in records:
            self._replay(record)

    def _replay(self, record: Mapping[str, Any]) -> None:
        kind = record.get("k")
        if kind == "meta":
            self._mirror.save_meta(int(record["t"]), record["v"])
        elif kind == "entry":
            self._mirror.log_append(int(record["i"]), decode_value(record["e"]))
        elif kind == "trunc":
            self._mirror.log_truncate(int(record["i"]))
        elif kind == "commit":
            self._mirror.save_commit(int(record["i"]))
        elif kind == "snap":
            self._mirror.save_snapshot(decode_value(record["s"]))
        else:
            raise IntegrityError(f"{self.path.name}: unknown journal record kind {kind!r}")

    def _append_record(self, record: Mapping[str, Any]) -> None:
        line = {"h": _chain_hash(self._tip, record), "p": self._tip, "r": record}
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._tip = line["h"]

    def _rewrite_raw(self, raw_lines: List[bytes]) -> None:
        """Atomically replace the journal with the given raw lines."""
        self._close_handle()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        payload = b"".join(raw + b"\n" for raw in raw_lines)
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def _rewrite_compacted(self) -> None:
        """Rewrite the journal as a fresh chain holding just current state."""
        before = self.path.stat().st_size if self.path.exists() else 0
        records: List[Dict[str, Any]] = []
        snapshot = self._mirror.load_snapshot()
        if snapshot is not None:
            records.append({"k": "snap", "s": encode_value(snapshot)})
        meta = self._mirror.load_meta()
        if meta is not None:
            records.append({"k": "meta", "t": meta[0], "v": meta[1]})
        for index, entry in self._mirror.load_entries():
            records.append({"k": "entry", "i": index, "e": encode_value(entry)})
        commit = self._mirror.load_commit()
        if commit:
            records.append({"k": "commit", "i": commit})
        tip = GENESIS
        raw_lines: List[bytes] = []
        for record in records:
            line = {"h": _chain_hash(tip, record), "p": tip, "r": record}
            raw_lines.append(json.dumps(line, sort_keys=True, separators=(",", ":")).encode("utf-8"))
            tip = line["h"]
        self._rewrite_raw(raw_lines)
        self._tip = tip
        self.last_rewrite = (before, self.path.stat().st_size)

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        self._close_handle()

    # ------------------------------------------------------------------
    # StableStore interface: write through to mirror + journal
    # ------------------------------------------------------------------
    def save_meta(self, term: int, voted_for: Optional[str]) -> None:
        if self._mirror.load_meta() == (int(term), voted_for):
            return  # idempotent re-save: no journal churn
        self._mirror.save_meta(term, voted_for)
        self._append_record({"k": "meta", "t": int(term), "v": voted_for})
        self.meta_saves += 1

    def load_meta(self) -> Optional[Tuple[int, Optional[str]]]:
        return self._mirror.load_meta()

    def log_append(self, index: int, entry: Any) -> None:
        self._mirror.log_append(index, entry)
        self._append_record({"k": "entry", "i": int(index), "e": encode_value(entry)})
        self.appends += 1

    def log_truncate(self, from_index: int) -> None:
        self._mirror.log_truncate(from_index)
        self._append_record({"k": "trunc", "i": int(from_index)})
        self.truncations += 1

    def load_entries(self) -> Tuple[Tuple[int, Any], ...]:
        return self._mirror.load_entries()

    def save_commit(self, index: int) -> None:
        if int(index) <= self._mirror.load_commit():
            return
        self._mirror.save_commit(index)
        self._append_record({"k": "commit", "i": int(index)})
        self.commit_saves += 1

    def load_commit(self) -> int:
        return self._mirror.load_commit()

    def save_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        self._mirror.save_snapshot(snapshot)
        self._rewrite_compacted()
        self.snapshots += 1

    def load_snapshot(self) -> Optional[Dict[str, Any]]:
        return self._mirror.load_snapshot()

    def is_empty(self) -> bool:
        return self._mirror.is_empty()

    def describe(self) -> str:
        return f"FileStableStore({self.path.name}: {self._mirror.describe()})"
