"""Exception hierarchy for the I/O-automata simulation substrate.

The simulation kernel is strict about model violations: the paper's results
depend on precise assumptions (reliable asynchronous channels, well-formed
clients, whether client-to-client communication is allowed), so any attempt
by a protocol to step outside the configured model raises one of the
exceptions defined here instead of silently proceeding.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.ioa`."""


class UnknownProcessError(SimulationError):
    """A message was addressed to a process that is not part of the system."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown process {name!r}")
        self.name = name


class DuplicateProcessError(SimulationError):
    """Two automata were registered under the same name."""

    def __init__(self, name: str) -> None:
        super().__init__(f"process name {name!r} already registered")
        self.name = name


class CommunicationNotAllowedError(SimulationError):
    """A send violated the configured communication topology.

    The main use is enforcing the *client-to-client communication disallowed*
    setting of the paper (Section 5.1): in that configuration a client that
    tries to send a message to another client triggers this error, which is
    exactly what distinguishes the impossible settings from the possible ones
    in Figure 1(a).
    """

    def __init__(self, src: str, dst: str, reason: str = "") -> None:
        msg = f"communication from {src!r} to {dst!r} is not allowed"
        if reason:
            msg += f": {reason}"
        super().__init__(msg)
        self.src = src
        self.dst = dst


class WellFormednessError(SimulationError):
    """A client violated well-formedness (overlapping transactions, etc.)."""


class SchedulerError(SimulationError):
    """A scheduler returned an invalid choice or an adversary script ran dry."""


class SessionError(SimulationError):
    """A protocol session (client generator) misbehaved.

    Examples: yielding an unknown effect object, awaiting zero messages,
    or completing a transaction twice.
    """


class LivenessError(SimulationError):
    """The simulation reached its step bound with incomplete transactions.

    Raised by helpers that require every invoked transaction to finish
    (the W property requires WRITE transactions to eventually complete,
    so executions produced for the checkers must be transaction-complete).
    """


class TraceError(SimulationError):
    """A trace-level operation received inconsistent arguments."""
