"""Actions and messages of the I/O-automata execution model.

The paper models the system with Lynch-style I/O automata: an execution is an
alternating sequence of states and actions, and the proofs only ever reason
about the *actions* (``send``, ``recv``, ``INV``, ``RESP`` and internal
steps) together with the automaton at which each action occurs.  We mirror
that: a simulation produces a :class:`~repro.ioa.trace.Trace`, which is a
sequence of :class:`Action` records, and every property checker and proof
replay consumes those records.

Design notes
------------

* ``Message`` is immutable.  Payloads are stored as a tuple of ``(key, value)``
  pairs so that messages are hashable and can be used in sets/dicts by the
  schedulers and adversaries; ``payload`` exposes them as a read-only mapping.
* ``Action`` carries the acting automaton (``actor``), the kind, the message
  (for ``send``/``recv``) and a free-form ``info`` mapping used to tag
  transaction identifiers, phases and protocol-specific annotations (for
  example the number of versions carried by a reply, used by the O-property
  checker).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple


class ActionKind(enum.Enum):
    """The kinds of actions that can appear in a trace.

    ``SEND``/``RECV`` are the channel actions of the paper's model,
    ``INVOKE``/``RESPOND`` are the external transaction boundary actions
    (``INV`` / ``RESP`` in the paper), ``INTERNAL`` covers local computation
    steps that protocols choose to record, and ``START`` marks automaton
    start-up steps.
    """

    SEND = "send"
    RECV = "recv"
    INVOKE = "invoke"
    RESPOND = "respond"
    INTERNAL = "internal"
    START = "start"

    def is_external(self) -> bool:
        """External actions are everything except ``INTERNAL``/``START``.

        This matches the I/O-automata notion used by Lemma 2 (commuting
        fragments): input and output actions are external; internal actions
        are not observable by other automata.
        """
        return self in (ActionKind.SEND, ActionKind.RECV, ActionKind.INVOKE, ActionKind.RESPOND)

    def is_input(self) -> bool:
        """Input actions of an automaton: message receipt and invocations."""
        return self in (ActionKind.RECV, ActionKind.INVOKE)

    def is_output(self) -> bool:
        """Output actions of an automaton: message send and responses."""
        return self in (ActionKind.SEND, ActionKind.RESPOND)


_message_counter = itertools.count()


def _freeze_payload(payload: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Freeze a payload mapping into a sorted tuple of items.

    Values are left untouched (they may be tuples, frozensets, numbers or
    strings); mutable values are tolerated but discouraged because they break
    hashability of the message.
    """
    if not payload:
        return ()
    # Keys are unique, so sorting the items never compares values.
    items = sorted(payload.items())
    for i, (key, value) in enumerate(items):
        if isinstance(value, (list, set, dict)):
            if isinstance(value, list):
                value = tuple(value)
            elif isinstance(value, set):
                value = frozenset(value)
            else:
                value = tuple(sorted(value.items()))
            items[i] = (key, value)
    return tuple(items)


@dataclass(frozen=True)
class Message:
    """A single message in flight between two automata.

    Attributes
    ----------
    msg_type:
        Protocol-level tag, e.g. ``"read-val"`` or ``"info-reader"``; the
        names used by the protocol implementations follow the pseudocode in
        the paper.
    src, dst:
        Names of the sending and receiving automata.
    items:
        Frozen payload as a tuple of ``(key, value)`` pairs.
    msg_id:
        Globally unique identifier assigned at construction; used by the
        kernel to match ``send`` and ``recv`` actions of the same message and
        by adversary scripts to refer to specific messages.
    """

    msg_type: str
    src: str
    dst: str
    items: Tuple[Tuple[str, Any], ...] = ()
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    @classmethod
    def make(cls, msg_type: str, src: str, dst: str, payload: Optional[Mapping[str, Any]] = None) -> "Message":
        """Construct a message, freezing ``payload``."""
        return cls(msg_type=msg_type, src=src, dst=dst, items=_freeze_payload(payload or {}))

    @property
    def payload(self) -> Mapping[str, Any]:
        """Read-only mapping view of the payload."""
        return MappingProxyType(dict(self.items))

    def get(self, key: str, default: Any = None) -> Any:
        """Return ``payload[key]`` or ``default``."""
        for item_key, value in self.items:
            if item_key == key:
                return value
        return default

    def with_payload(self, **updates: Any) -> "Message":
        """Return a copy with payload keys updated (new ``msg_id``)."""
        merged: Dict[str, Any] = dict(self.items)
        merged.update(updates)
        return Message.make(self.msg_type, self.src, self.dst, merged)

    def describe(self) -> str:
        """Human-readable one-line description used in reports and errors."""
        return f"{self.msg_type}[{self.src}->{self.dst}]#{self.msg_id}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class Action:
    """One step of an execution.

    ``index`` is the position of the action in the global trace (assigned by
    the trace when the action is appended), ``actor`` is the automaton at
    which the action occurs.  For ``SEND``/``RECV`` actions ``message`` holds
    the message; for ``INVOKE``/``RESPOND``/``INTERNAL`` actions the
    interesting data lives in ``info``.
    """

    kind: ActionKind
    actor: str
    message: Optional[Message] = None
    info: Tuple[Tuple[str, Any], ...] = ()
    index: int = -1

    @classmethod
    def make(
        cls,
        kind: ActionKind,
        actor: str,
        message: Optional[Message] = None,
        info: Optional[Mapping[str, Any]] = None,
        index: int = -1,
    ) -> "Action":
        return cls(kind=kind, actor=actor, message=message, info=_freeze_payload(info or {}), index=index)

    @property
    def info_map(self) -> Mapping[str, Any]:
        """Read-only mapping view of ``info``."""
        return MappingProxyType(dict(self.info))

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key`` first in ``info`` then in the message payload."""
        for info_key, value in self.info:
            if info_key == key:
                return value
        if self.message is not None:
            return self.message.get(key, default)
        return default

    def with_index(self, index: int) -> "Action":
        """Return a copy of the action positioned at ``index``."""
        return Action(kind=self.kind, actor=self.actor, message=self.message, info=self.info, index=index)

    def is_external(self) -> bool:
        return self.kind.is_external()

    def is_input(self) -> bool:
        return self.kind.is_input()

    def is_output(self) -> bool:
        return self.kind.is_output()

    def same_step(self, other: "Action") -> bool:
        """Equality ignoring the trace index.

        Two actions are the *same step* when they have the same kind, occur at
        the same automaton, involve the same message and carry the same info.
        This is the notion of sameness used when comparing projections of two
        different executions (indistinguishability, Lemma 3).
        """
        return (
            self.kind == other.kind
            and self.actor == other.actor
            and self.message == other.message
            and self.info == other.info
        )

    def describe(self) -> str:
        """Human-readable description, e.g. ``recv@s_x read-val[r1->s_x]#12``."""
        parts = [f"{self.kind.value}@{self.actor}"]
        if self.message is not None:
            parts.append(self.message.describe())
        info = dict(self.info)
        if info:
            parts.append(str(info))
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


def send_action(message: Message, info: Optional[Mapping[str, Any]] = None) -> Action:
    """Build the ``send`` action of ``message`` (occurring at the sender)."""
    return Action.make(ActionKind.SEND, message.src, message, info)


def recv_action(message: Message, info: Optional[Mapping[str, Any]] = None) -> Action:
    """Build the ``recv`` action of ``message`` (occurring at the receiver)."""
    return Action.make(ActionKind.RECV, message.dst, message, info)


def invoke_action(actor: str, info: Optional[Mapping[str, Any]] = None) -> Action:
    """Build an ``INV`` action at a client."""
    return Action.make(ActionKind.INVOKE, actor, None, info)


def respond_action(actor: str, info: Optional[Mapping[str, Any]] = None) -> Action:
    """Build a ``RESP`` action at a client."""
    return Action.make(ActionKind.RESPOND, actor, None, info)


def internal_action(actor: str, info: Optional[Mapping[str, Any]] = None) -> Action:
    """Build an internal action at an automaton."""
    return Action.make(ActionKind.INTERNAL, actor, None, info)


def actions_at(actions: Iterable[Action], actor: str) -> Tuple[Action, ...]:
    """Filter an iterable of actions down to those occurring at ``actor``."""
    return tuple(a for a in actions if a.actor == actor)
