"""Automaton base classes and the effect vocabulary for protocol sessions.

Two styles of automata live on top of the simulation kernel:

* **Reactive automata** (servers): subclasses of :class:`Automaton` that
  implement :meth:`Automaton.on_message`.  A reactive automaton that replies
  within the same handler activation is *non-blocking by construction*,
  which is exactly the paper's N property; a blocking protocol (e.g. the
  lock-based baseline) instead stashes the request and replies from a later
  handler activation, which the N-checker detects as an intervening input
  action.

* **Session automata** (clients): transaction logic is written as a Python
  generator that yields *effects* (:class:`Send`, :class:`Await`,
  :class:`Mark`) and finally returns the transaction result.  The kernel
  drives the generator, recording ``INV``/``RESP`` actions at the right
  places.  This keeps protocol code extremely close to the paper's
  pseudocode (phases such as ``write-value`` / ``info-reader`` become
  straight-line generator code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional, Sequence, Tuple

from .actions import Message
from .errors import SessionError


# ----------------------------------------------------------------------
# Effects yielded by client sessions
# ----------------------------------------------------------------------
@dataclass
class Send:
    """Send a message to another automaton and continue immediately.

    ``phase`` is a protocol-level label (e.g. ``"read-value"``); it is copied
    into the ``send`` action's info so that traces remain self-describing.
    """

    dst: str
    msg_type: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    phase: str = ""


@dataclass
class SendBatch:
    """Send several messages as one kernel *flight* and continue immediately.

    Without a fault plane the whole batch is delivered by a single scheduler
    event, and the replies each destination produces while the flight lands
    are grouped into one reply event per destination — a quorum round costs
    roughly two events instead of two per replica.  With a fault plane
    installed the batch degrades to ordinary per-message sends (latency and
    drop stamps are per-message).  Purely a performance knob: protocols only
    yield it when fan-out batching is enabled, and enabling it changes event
    counts, never results.
    """

    sends: Sequence[Send] = ()


@dataclass
class Await:
    """Suspend the session until ``count`` matching messages have arrived.

    ``matcher`` receives each delivered message; messages for which it
    returns ``True`` are collected.  The kernel resumes the generator with
    the list of matched messages (in delivery order) once ``count`` of them
    are available.  Awaiting counts as the end of a communication round for
    round-accounting purposes when ``counts_as_round`` is ``True``.

    ``until`` (optional) replaces the fixed ``count`` with a predicate over
    the collected messages: the session resumes as soon as it returns
    ``True``.  This is what quorum rounds are made of — e.g. "per object, at
    least R replies of which at least one is a hit" — where no single count
    expresses readiness.  Matching messages keep being collected until the
    predicate fires; ``count`` is ignored when ``until`` is set.
    """

    matcher: Callable[[Message], bool]
    count: int = 1
    description: str = ""
    counts_as_round: bool = True
    until: Optional[Callable[[List[Message]], bool]] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SessionError("Await.count must be >= 1")


@dataclass
class Mark:
    """Record an internal action at the client with the given info."""

    info: Mapping[str, Any] = field(default_factory=dict)


SessionEffect = Any  # Send | SendBatch | Await | Mark
SessionGenerator = Generator[SessionEffect, Any, Any]


def expect_type(msg_type: str, *, frm: Optional[str] = None) -> Callable[[Message], bool]:
    """Convenience matcher: message type (and optionally sender) equality."""

    def _match(message: Message) -> bool:
        if message.msg_type != msg_type:
            return False
        if frm is not None and message.src != frm:
            return False
        return True

    return _match


def expect_types(*msg_types: str) -> Callable[[Message], bool]:
    """Matcher accepting any of several message types."""
    allowed = frozenset(msg_types)

    def _match(message: Message) -> bool:
        return message.msg_type in allowed

    return _match


# ----------------------------------------------------------------------
# Automaton base classes
# ----------------------------------------------------------------------
class Automaton:
    """Base class for every process in the system.

    Subclasses override :meth:`on_start` and :meth:`on_message`.  The
    ``kind`` attribute ("server", "reader", "writer", "client") is used by
    the network topology to enforce the client-to-client communication
    setting and by the checkers to know which automata are servers.
    """

    kind: str = "process"

    def __init__(self, name: str) -> None:
        self.name = name

    # -- life-cycle hooks ------------------------------------------------
    def on_start(self, ctx: "Context") -> None:  # pragma: no cover - default no-op
        """Called once when the simulation starts."""

    def on_message(self, message: Message, ctx: "Context") -> None:  # pragma: no cover - default no-op
        """Called when a message addressed to this automaton is delivered."""

    def on_timeout(self, info: Mapping[str, Any], ctx: "Context") -> None:  # pragma: no cover - default no-op
        """Called when a timer this automaton armed via ``ctx.set_timeout``
        fires.  ``info`` is the keyword payload passed at arming time."""

    # -- introspection ---------------------------------------------------
    def is_server(self) -> bool:
        return self.kind == "server"

    def is_client(self) -> bool:
        return self.kind in ("reader", "writer", "client")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} kind={self.kind}>"


class ServerAutomaton(Automaton):
    """Convenience base class for servers."""

    kind = "server"


class ClientAutomaton(Automaton):
    """Base class for clients that run transactions as generator sessions.

    Subclasses implement :meth:`run_transaction`, a generator taking the
    transaction object and a :class:`Context`.  The kernel:

    1. records ``INVOKE`` at this client,
    2. drives the generator, executing each yielded effect,
    3. records ``RESPOND`` with the generator's return value as the result.

    Clients may also override :meth:`on_message` for protocol messages that
    arrive outside any running session (e.g. the reader of algorithm A
    receiving ``info-reader`` messages from writers at any time).
    Messages are first offered to the running session's pending ``Await``;
    messages the session does not match fall through to :meth:`on_message`.
    """

    kind = "client"

    #: fan-out batching knob (see :class:`SendBatch`): when set — via
    #: ``BuildConfig.fanout_batching`` — quorum-round helpers emit their
    #: request fan-outs as flights.  Off by default: the default event
    #: stream stays byte-identical to the unbatched kernel.
    batch_fanout: bool = False

    def run_transaction(self, txn: Any, ctx: "Context") -> SessionGenerator:
        raise NotImplementedError

    def unmatched_goes_to_handler(self) -> bool:
        """Whether unmatched messages are passed to :meth:`on_message`.

        Default ``True``; protocols can override to drop stray messages.
        """
        return True


class ReaderAutomaton(ClientAutomaton):
    kind = "reader"


class WriterAutomaton(ClientAutomaton):
    kind = "writer"


# ----------------------------------------------------------------------
# Context object handed to automata by the kernel
# ----------------------------------------------------------------------
class Context:
    """Capability object through which automata interact with the kernel.

    Only the operations of the model are exposed: sending messages (subject
    to the topology), recording internal actions, reading the logical time
    (the current trace length) and annotating the currently-executing
    transaction with protocol metrics (rounds, versions, ...).
    """

    def __init__(self, kernel: Any, actor: str) -> None:
        self._kernel = kernel
        self._actor = actor

    @property
    def actor(self) -> str:
        return self._actor

    @property
    def now(self) -> int:
        """Current logical time = number of actions in the trace so far."""
        return len(self._kernel.trace)

    @property
    def vtime(self) -> int:
        """Virtual time: the fault plane's clock when one is installed,
        otherwise the kernel's step counter (fast-forwarded past idle gaps
        when timers are pending) — the clock timeouts are measured on."""
        return self._kernel.now()

    def set_timeout(self, delay: int, **info: Any):
        """Arm a timer for this automaton ``delay`` virtual-time steps from
        now; the kernel calls :meth:`Automaton.on_timeout` with ``info`` when
        it fires.  Timeouts never fire early, and fire eventually even if the
        system would otherwise go idle."""
        return self._kernel.set_timeout(self._actor, delay, info)

    def send(
        self,
        dst: str,
        msg_type: str,
        payload: Optional[Mapping[str, Any]] = None,
        phase: str = "",
    ) -> Message:
        """Send a message from this automaton to ``dst``."""
        return self._kernel._send_from(self._actor, dst, msg_type, payload or {}, phase)

    def internal(self, **info: Any) -> None:
        """Record an internal action at this automaton."""
        self._kernel._record_internal(self._actor, info)

    def flight(self, per_destination: bool = False):
        """Context manager grouping the messages sent inside it into one
        kernel flight (see :class:`SendBatch`); a no-op under a fault plane.
        Reactive automata (servers, the consensus layer) use this for their
        fan-outs; session code yields :class:`SendBatch` instead."""
        return self._kernel.flight_scope(per_destination)

    def annotate_transaction(self, txn_id: Any, **fields: Any) -> None:
        """Attach protocol-reported metrics to a transaction record."""
        self._kernel._annotate_transaction(txn_id, fields)

    def random(self):
        """Deterministic per-simulation random source (seeded by the kernel)."""
        return self._kernel.rng

    # -- membership reconfiguration (the admin surface) -----------------
    @property
    def topology(self):
        """The live topology (reconfig drivers update groups through it)."""
        return self._kernel.topology

    def has_automaton(self, name: str) -> bool:
        """Whether ``name`` is currently registered on the kernel (a
        rejoining member may still exist if its retirement drain is
        pending)."""
        return name in self._kernel._automata

    def spawn(self, automaton: "Automaton") -> "Automaton":
        """Register a new automaton mid-run (dynamic membership growth);
        its START action is recorded at the point of joining."""
        return self._kernel.add_automaton(automaton)

    def retire(self, name: str, force: bool = False) -> bool:
        """Remove an automaton mid-run (dynamic membership shrink); see
        :meth:`~repro.ioa.simulation.Simulation.remove_automaton`."""
        return self._kernel.remove_automaton(name, force=force)


@dataclass
class SessionState:
    """Book-keeping for one in-flight client transaction session."""

    txn: Any
    txn_id: Any
    client: str
    generator: SessionGenerator
    pending_await: Optional[Await] = None
    collected: List[Message] = field(default_factory=list)
    rounds: int = 0
    sends: int = 0
    finished: bool = False
    result: Any = None

    def matches(self, message: Message) -> bool:
        if self.pending_await is None:
            return False
        return bool(self.pending_await.matcher(message))

    def ready(self) -> bool:
        if self.pending_await is None:
            return False
        if self.pending_await.until is not None:
            return bool(self.pending_await.until(self.collected))
        return len(self.collected) >= self.pending_await.count
