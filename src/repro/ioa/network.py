"""Communication topology and network conditions: who may talk to whom, and how.

The paper's results hinge on the communication topology among processes:

* clients always talk to servers and servers reply to clients;
* servers may talk to each other (algorithms B and C route reads through a
  coordinator server);
* **client-to-client (C2C) communication** is the pivotal switch: Figure 1(a)
  shows SNOW is possible in the MWSR setting *only* when C2C is allowed
  (algorithm A has writers send ``info-reader`` messages directly to the
  reader), and impossible when it is disallowed.

:class:`Topology` encodes these rules; the simulation kernel consults it on
every send and raises :class:`~repro.ioa.errors.CommunicationNotAllowedError`
on a violation, so running algorithm A in a no-C2C configuration fails loudly
rather than silently producing a meaningless result.

On top of the *static* rules, :class:`FaultPlane` is the optional *dynamic*
network-conditions interface: a hook object the kernel consults on every send,
before every step and when the system goes idle.  With no plane installed the
kernel keeps the paper's reliable-channel semantics byte-for-byte; installing
one (see :mod:`repro.faults`) lets experiments add latency distributions,
drops, duplication, link partitions and server crash/recover schedules without
touching any protocol code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from .automaton import Automaton
from .errors import CommunicationNotAllowedError, UnknownProcessError


@dataclass
class Topology:
    """Communication rules over a set of named automata.

    Parameters
    ----------
    allow_client_to_client:
        The C2C switch of the paper.  When ``False`` any client→client send
        raises :class:`CommunicationNotAllowedError`.
    allow_server_to_server:
        Whether servers may exchange messages (needed by coordinator-based
        protocols if the coordinator is a separate server; enabled by
        default).
    extra_forbidden:
        Additional directed pairs ``(src, dst)`` that are forbidden, for
        fault-injection style experiments.
    """

    allow_client_to_client: bool = True
    allow_server_to_server: bool = True
    extra_forbidden: FrozenSet[Tuple[str, str]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        self._kinds: Dict[str, str] = {}
        self._replica_groups: Dict[str, Tuple[str, ...]] = {}
        self._consensus_group: Tuple[str, ...] = ()
        #: kinds of unregistered automata: introspection over already-
        #: delivered messages (:meth:`kind_of`) keeps working after a
        #: retirement, while new sends to the name still fail loudly
        self._removed_kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def register(self, automaton: Automaton) -> None:
        """Record the kind of a named automaton (called by the kernel)."""
        self._kinds[automaton.name] = automaton.kind
        self._removed_kinds.pop(automaton.name, None)

    def unregister(self, name: str) -> None:
        """Forget a retired automaton (the reconfiguration layer's removal).

        Any later send to or from the name raises
        :class:`~repro.ioa.errors.UnknownProcessError` — a retired server is
        gone, not silent.  The name is also dropped from any replica group or
        consensus group it appeared in, keeping :meth:`describe` honest.
        :meth:`kind_of` keeps answering from a tombstone, so sessions that
        collected replies from the server *before* its retirement can still
        account rounds for them.
        """
        if name not in self._kinds:
            raise UnknownProcessError(name)
        self._removed_kinds[name] = self._kinds[name]
        del self._kinds[name]
        self._replica_groups = {
            obj: tuple(s for s in group if s != name)
            for obj, group in self._replica_groups.items()
        }
        self._consensus_group = tuple(m for m in self._consensus_group if m != name)

    def update_replica_group(self, object_id: str, group: Tuple[str, ...]) -> None:
        """Re-point one object's replica group (a committed reconfiguration)."""
        self._replica_groups[object_id] = tuple(group)

    def set_replica_groups(self, groups: Mapping[str, Tuple[str, ...]]) -> None:
        """Record the object → replica-group placement of the built system.

        Clients reach every replica the way they reached the single copy
        (client↔server channels) and replicas of a group may gossip over the
        ordinary server↔server channels, so no *rules* change — but the
        topology knows the grouping, which keeps ``describe()`` honest and
        lets tools ask which servers co-hold an object.
        """
        self._replica_groups = {obj: tuple(group) for obj, group in groups.items()}

    def set_consensus_group(self, group: Iterable[str]) -> None:
        """Record the replicated-coordinator group of the built system.

        Empty (the default) means the coordinator — if the protocol has one —
        is a single designated storage server, exactly the seed's setting.
        The SNOW checkers consult this to treat the group as *one logical
        metadata server* (see :mod:`repro.core.snow`).
        """
        self._consensus_group = tuple(group)

    def consensus_group(self) -> Tuple[str, ...]:
        """The replicated-coordinator members (empty when unreplicated)."""
        return self._consensus_group

    def replica_group(self, object_id: str) -> Tuple[str, ...]:
        """The replica group registered for ``object_id`` (empty if unknown)."""
        return self._replica_groups.get(object_id, ())

    def replicas_of(self, server: str) -> Tuple[str, ...]:
        """The peer replicas co-holding ``server``'s object (including it)."""
        for group in self._replica_groups.values():
            if server in group:
                return group
        return (server,) if server in self._kinds else ()

    def kind_of(self, name: str) -> str:
        try:
            return self._kinds[name]
        except KeyError:
            try:
                return self._removed_kinds[name]
            except KeyError:
                raise UnknownProcessError(name) from None

    def is_client(self, name: str) -> bool:
        return self.kind_of(name) in ("reader", "writer", "client")

    def is_server(self, name: str) -> bool:
        return self.kind_of(name) == "server"

    def channel_class(self, src: str, dst: str) -> str:
        """Coarse channel label (``c2s``/``s2c``/``s2s``/``c2c``) for the
        observability plane's per-channel message counters.  Unknown names
        (a retired automaton whose tombstone also expired) fall back to the
        server side, which keeps the hook total-function cheap."""
        try:
            src_client = self.is_client(src)
        except Exception:
            src_client = False
        try:
            dst_client = self.is_client(dst)
        except Exception:
            dst_client = False
        if src_client:
            return "c2c" if dst_client else "c2s"
        return "s2c" if dst_client else "s2s"

    # ------------------------------------------------------------------
    def check_send(self, src: str, dst: str) -> None:
        """Raise if a send from ``src`` to ``dst`` violates the topology."""
        if src not in self._kinds:
            raise UnknownProcessError(src)
        if dst not in self._kinds:
            raise UnknownProcessError(dst)
        if (src, dst) in self.extra_forbidden:
            raise CommunicationNotAllowedError(src, dst, "explicitly forbidden pair")
        if src == dst:
            raise CommunicationNotAllowedError(src, dst, "self-sends are not modelled")
        src_client = self.is_client(src)
        dst_client = self.is_client(dst)
        if src_client and dst_client and not self.allow_client_to_client:
            raise CommunicationNotAllowedError(
                src, dst, "client-to-client communication is disallowed in this setting"
            )
        if (not src_client) and (not dst_client) and not self.allow_server_to_server:
            raise CommunicationNotAllowedError(
                src, dst, "server-to-server communication is disallowed in this setting"
            )

    def allows(self, src: str, dst: str) -> bool:
        """Boolean form of :meth:`check_send`."""
        try:
            self.check_send(src, dst)
        except CommunicationNotAllowedError:
            return False
        return True

    # ------------------------------------------------------------------
    def describe(self) -> str:
        clients = sorted(n for n in self._kinds if self.is_client(n))
        servers = sorted(n for n in self._kinds if self.is_server(n))
        base = (
            f"Topology(clients={clients}, servers={servers}, "
            f"c2c={'allowed' if self.allow_client_to_client else 'disallowed'}"
        )
        if self._replica_groups and any(len(g) > 1 for g in self._replica_groups.values()):
            groups = "; ".join(
                f"{obj}→[{','.join(group)}]" for obj, group in self._replica_groups.items()
            )
            base += f", replicas: {groups}"
        if self._consensus_group:
            base += f", consensus: [{','.join(self._consensus_group)}]"
        return base + ")"


class FaultPlane:
    """Optional network-conditions hook consulted by the simulation kernel.

    The kernel calls these methods **only when a plane is installed**; the
    default (``fault_plane=None``) path is untouched, which is what guarantees
    that fault-free runs remain identical to the paper's reliable model.

    The base class implements the reliable semantics, so a subclass overrides
    only the aspects it perturbs.  The contract:

    * :meth:`on_send` — called instead of the kernel's own delivery enqueue;
      the plane decides how many copies of ``message`` become pending (0 = the
      message is lost or held) and with what ``ready_at`` stamp, by calling
      ``kernel.enqueue_delivery``.
    * :meth:`before_step` — called at the top of every kernel step; the plane
      may move messages between its internal holding areas and the kernel's
      pending set (crash onsets, partition heals, retransmission timers).
    * :meth:`on_idle` — called when no pending events remain; returning
      ``True`` means the plane injected new work (e.g. released a held
      message by advancing its virtual clock) and the kernel should re-poll.
    * :meth:`suppress_delivery` — called for each delivery about to execute;
      returning ``True`` consumes the scheduler step without activating the
      destination automaton (used for at-most-once dedup of duplicated or
      retransmitted copies, so protocols keep exactly-once processing).
    * :meth:`now` / :meth:`advance_to` — the plane's virtual clock, measured
      in kernel steps; schedulers may fast-forward it when every pending
      event carries a future ``ready_at``.
    """

    def on_attach(self, kernel: Any) -> None:
        """Called once when the plane is installed on a kernel."""

    def on_send(self, message: Any, kernel: Any) -> None:
        """Reliable default: exactly one immediately-deliverable copy."""
        kernel.enqueue_delivery(message)

    def before_step(self, kernel: Any) -> None:
        """Called at the top of every kernel step."""

    def on_idle(self, kernel: Any) -> bool:
        """Called when no events are pending; ``True`` = new work injected."""
        return False

    def suppress_delivery(self, message: Any, kernel: Any) -> bool:
        """``True`` = swallow this delivery (duplicate copy); default never."""
        return False

    def suppress_timeout(self, timeout: Any, kernel: Any) -> bool:
        """``True`` = swallow this timeout firing (e.g. its owner is
        crashed; the plane may ``kernel.reschedule_timeout`` it to fire at
        recovery instead); default never."""
        return False

    def on_remove(self, name: str, kernel: Any) -> None:
        """Called when the kernel retires an automaton mid-run; the plane
        drops any transport state it holds for the name (held mail, crash
        tracking).  Default: nothing held, nothing to do."""

    def now(self, kernel: Any) -> int:
        """The plane's virtual clock (in kernel steps)."""
        return int(kernel.steps_taken)

    def advance_to(self, step: int) -> None:
        """Fast-forward the virtual clock (no-op for the reliable plane)."""

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class SystemSetting:
    """A named point in the design space of Figure 1(a).

    ``num_readers`` / ``num_writers`` give the client population,
    ``num_servers`` the number of shards, and ``c2c`` whether client-to-client
    communication is allowed.  The feasibility analysis enumerates these.
    """

    name: str
    num_readers: int
    num_writers: int
    num_servers: int
    c2c: bool

    @property
    def num_clients(self) -> int:
        return self.num_readers + self.num_writers

    def is_mwsr(self) -> bool:
        """Multi-writer single-reader (the setting of algorithm A)."""
        return self.num_readers == 1

    def is_swmr(self) -> bool:
        """Single-writer multi-reader (the setting of the original theorem)."""
        return self.num_writers == 1 and self.num_readers >= 2

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_writers} writer(s), {self.num_readers} reader(s), "
            f"{self.num_servers} server(s), C2C {'allowed' if self.c2c else 'disallowed'}"
        )


def standard_settings() -> Tuple[SystemSetting, ...]:
    """The settings enumerated by Figure 1(a), plus the classic 3-client one.

    * ``two-clients``: one writer, one reader (the open question of the
      original paper, closed in Section 5).
    * ``mwsr``: multiple writers, single reader.
    * ``three-clients``: one writer, two readers (the original SNOW setting).

    Each appears with C2C allowed and disallowed.
    """
    settings = []
    for c2c in (True, False):
        suffix = "c2c" if c2c else "no-c2c"
        settings.append(SystemSetting(f"two-clients-{suffix}", 1, 1, 2, c2c))
        settings.append(SystemSetting(f"mwsr-{suffix}", 1, 3, 2, c2c))
        settings.append(SystemSetting(f"three-clients-{suffix}", 2, 1, 2, c2c))
    return tuple(settings)
