"""Schedulers: the adversary that controls asynchrony.

In the paper, every impossibility argument is carried by "the network" (an
adversary) choosing when to deliver which message and when to let which
automaton take a step.  In the simulator the same power is embodied by a
:class:`Scheduler`: at every step the kernel offers the set of *pending
events* (deliverable messages plus enabled transaction invocations) and the
scheduler picks one.

Provided policies:

* :class:`FIFOScheduler` — deliver in enqueue order (a synchronous-looking,
  "nice" network).
* :class:`RandomScheduler` — seeded uniform choice; used to fuzz protocols
  over many schedules.
* :class:`PriorityScheduler` — pick by an arbitrary key function.
* :class:`AdversarialScheduler` — a rule-driven adversary built from
  :class:`DelayRule` objects ("hold messages matching *this* until *that*
  has happened"), which is how the constructions of Figures 3–5 are driven.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from .actions import Message
from .errors import SchedulerError


@dataclass(frozen=True)
class PendingDelivery:
    """A sent-but-not-yet-delivered message.

    ``ready_at`` is a virtual-time stamp (in kernel steps) assigned by an
    installed fault plane's latency model; ``0`` (the default, and always the
    value on the reliable path) means "deliverable immediately".  Only
    latency-aware schedulers such as the chaos scheduler consult it.

    ``flight`` groups deliveries batched by fan-out batching (see
    ``Simulation.flight_scope``): choosing any member delivers the whole
    flight in one kernel event.  ``0`` — the default, and always the value
    unless a protocol explicitly opted into batching — means unbatched.
    """

    message: Message
    enqueued_at: int
    ready_at: int = 0
    flight: int = 0

    def describe(self) -> str:
        when = f", ready @{self.ready_at}" if self.ready_at else ""
        grouped = f", flight #{self.flight}" if self.flight else ""
        return f"deliver {self.message.describe()} (enqueued @{self.enqueued_at}{when}{grouped})"


@dataclass(frozen=True)
class PendingInvocation:
    """An external transaction invocation waiting to be issued to a client."""

    client: str
    txn: Any
    txn_id: Any
    enqueued_at: int

    def describe(self) -> str:
        return f"invoke {self.txn_id} at {self.client} (enqueued @{self.enqueued_at})"


@dataclass(frozen=True)
class PendingTimeout:
    """A timer armed by an automaton via ``Context.set_timeout``.

    ``ready_at`` is the virtual-time step at which the timer may fire; the
    kernel only offers a timeout to the scheduler once it is ripe (the fault
    plane's clock — or, without one, the step counter, fast-forwarded at
    idle), so under any scheduler a timeout models "this fires only after the
    delay has elapsed, and certainly once the system would otherwise sit
    still".  Timeouts are what drive the consensus layer's leader elections;
    systems that arm none behave byte-for-byte as before this type existed.
    """

    owner: str
    info: Mapping[str, Any]
    enqueued_at: int
    ready_at: int

    def describe(self) -> str:
        return f"timeout at {self.owner} (ready @{self.ready_at})"


PendingEvent = Union[PendingDelivery, PendingInvocation, PendingTimeout]


class Scheduler:
    """Base scheduler interface."""

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        """Return the index (into ``pending``) of the event to execute next."""
        raise NotImplementedError

    def reset(self) -> None:
        """Hook called when a simulation starts (schedulers may keep state)."""

    # ------------------------------------------------------------------
    @staticmethod
    def validate_choice(choice: int, pending: Sequence[PendingEvent]) -> int:
        if not pending:
            raise SchedulerError("choose() called with no pending events")
        if not (0 <= choice < len(pending)):
            raise SchedulerError(f"scheduler chose index {choice} out of {len(pending)} pending events")
        return choice


class FIFOScheduler(Scheduler):
    """Always execute the oldest pending event (by enqueue order).

    Messages are delivered in the order they were sent and transactions are
    invoked in the order they were submitted — the "nice", synchronous-looking
    network.  Enqueue order is the ``enqueued_at`` stamp, not list position,
    so queued transaction invocations and in-flight messages interleave by
    age rather than by kind.
    """

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        if not pending:
            raise SchedulerError("choose() called with no pending events")
        # Hot path: a plain loop beats min()-with-lambda, and enqueue stamps
        # are globally unique so first-index-wins tie-breaking never triggers.
        oldest = 0
        oldest_at = pending[0].enqueued_at
        for index in range(1, len(pending)):
            at = pending[index].enqueued_at
            if at < oldest_at:
                oldest, oldest_at = index, at
        return oldest


class LIFOScheduler(Scheduler):
    """Always execute the newest pending event (a pathological but legal network)."""

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        if not pending:
            raise SchedulerError("choose() called with no pending events")
        newest = 0
        newest_at = pending[0].enqueued_at
        for index in range(1, len(pending)):
            at = pending[index].enqueued_at
            if at >= newest_at:
                newest, newest_at = index, at
        return newest


class RandomScheduler(Scheduler):
    """Seeded uniform random choice among pending events.

    Determinism matters: the same seed always produces the same execution,
    so failures found by the fuzzing harness are replayable.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        return self.validate_choice(self._rng.randrange(len(pending)), pending)


class PriorityScheduler(Scheduler):
    """Choose the pending event minimising ``key(event)`` (ties: oldest first)."""

    def __init__(self, key: Callable[[PendingEvent], Any]) -> None:
        self._key = key

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        best = min(range(len(pending)), key=lambda i: (self._key(pending[i]), i))
        return self.validate_choice(best, pending)


# ----------------------------------------------------------------------
# Rule-driven adversary
# ----------------------------------------------------------------------
@dataclass
class DelayRule:
    """Hold back pending events matching ``holds`` until ``until`` is true.

    ``holds`` receives the pending event; ``until`` receives the kernel
    (giving access to the trace, transaction records and automaton state),
    so rules can express schedules such as *"do not deliver the read request
    to server B until the first write has been applied there"* — precisely
    the constructions used in Figures 3–5 of the paper.

    ``name`` is used in error messages and reports; ``one_shot`` rules are
    dropped after they release (their ``until`` became true once).
    """

    name: str
    holds: Callable[[PendingEvent], bool]
    until: Callable[[Any], bool]
    one_shot: bool = False
    released: bool = field(default=False, init=False)

    def active(self, kernel: Any) -> bool:
        if self.released:
            return False
        if self.until(kernel):
            if self.one_shot:
                self.released = True
            return False
        return True


class AdversarialScheduler(Scheduler):
    """A scheduler that applies :class:`DelayRule` filters over a base policy.

    At each step the rules are evaluated; any pending event held by an active
    rule is excluded, and the base policy (FIFO by default) picks among the
    rest.  If *every* pending event is held, behaviour depends on
    ``release_when_stuck``:

    * ``True`` (default): the oldest event is released anyway — the network
      is reliable, so no message can be delayed forever; this mirrors the
      paper's model where the adversary can reorder but not drop messages.
    * ``False``: a :class:`SchedulerError` is raised, which is useful in
      tests that want to assert a construction never wedges.
    """

    def __init__(
        self,
        rules: Optional[Sequence[DelayRule]] = None,
        base: Optional[Scheduler] = None,
        release_when_stuck: bool = True,
    ) -> None:
        self.rules: List[DelayRule] = list(rules or [])
        self.base = base or FIFOScheduler()
        self.release_when_stuck = release_when_stuck

    def add_rule(self, rule: DelayRule) -> None:
        self.rules.append(rule)

    def reset(self) -> None:
        for rule in self.rules:
            rule.released = False
        self.base.reset()

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        if not pending:
            raise SchedulerError("choose() called with no pending events")
        active_rules = [rule for rule in self.rules if rule.active(kernel)]
        eligible = [
            i for i, event in enumerate(pending) if not any(rule.holds(event) for rule in active_rules)
        ]
        if not eligible:
            if self.release_when_stuck:
                return 0
            held_by = ", ".join(rule.name for rule in active_rules)
            raise SchedulerError(f"all {len(pending)} pending events are held (rules: {held_by})")
        sub = [pending[i] for i in eligible]
        picked = self.base.choose(sub, kernel)
        return eligible[picked]


# ----------------------------------------------------------------------
# Rule helpers
# ----------------------------------------------------------------------
def holds_message(
    msg_type: Optional[str] = None,
    src: Optional[str] = None,
    dst: Optional[str] = None,
    predicate: Optional[Callable[[Message], bool]] = None,
) -> Callable[[PendingEvent], bool]:
    """Build a ``holds`` predicate matching deliveries by type/src/dst."""

    def _holds(event: PendingEvent) -> bool:
        if not isinstance(event, PendingDelivery):
            return False
        message = event.message
        if msg_type is not None and message.msg_type != msg_type:
            return False
        if src is not None and message.src != src:
            return False
        if dst is not None and message.dst != dst:
            return False
        if predicate is not None and not predicate(message):
            return False
        return True

    return _holds


def holds_invocation(client: Optional[str] = None, txn_id: Optional[Any] = None) -> Callable[[PendingEvent], bool]:
    """Build a ``holds`` predicate matching invocation events."""

    def _holds(event: PendingEvent) -> bool:
        if not isinstance(event, PendingInvocation):
            return False
        if client is not None and event.client != client:
            return False
        if txn_id is not None and event.txn_id != txn_id:
            return False
        return True

    return _holds


def until_transaction_done(txn_id: Any) -> Callable[[Any], bool]:
    """``until`` predicate: transaction ``txn_id`` has responded."""

    def _until(kernel: Any) -> bool:
        record = kernel.transaction_record(txn_id)
        return record is not None and record.respond_index is not None

    return _until


def until_message_delivered(
    msg_type: str, src: Optional[str] = None, dst: Optional[str] = None
) -> Callable[[Any], bool]:
    """``until`` predicate: some message of this shape has been received."""

    def _until(kernel: Any) -> bool:
        from .actions import ActionKind

        for action in kernel.trace:
            if action.kind != ActionKind.RECV or action.message is None:
                continue
            message = action.message
            if message.msg_type != msg_type:
                continue
            if src is not None and message.src != src:
                continue
            if dst is not None and message.dst != dst:
                continue
            return True
        return False

    return _until


def never(kernel: Any) -> bool:
    """``until`` predicate that never fires (pure reordering pressure)."""
    return False
