"""Execution traces, projections, fragments and indistinguishability.

The proofs in the paper manipulate *executions* of a composed I/O automaton:
they project executions onto individual automata, cut out *execution
fragments* (maximal runs of actions at one automaton, e.g. the non-blocking
fragments ``F_{i,j}``), check *indistinguishability* of two executions at an
automaton (Lemma 3), and *commute* adjacent fragments that occur at distinct
automata (Lemma 2).  This module provides those operations over the concrete
traces produced by the simulation kernel, so that the proof replays in
:mod:`repro.proofs` and the property checkers in :mod:`repro.core` share one
vocabulary with the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .actions import Action, ActionKind, Message
from .errors import TraceError


class Trace:
    """An ordered sequence of :class:`~repro.ioa.actions.Action` records.

    The trace owns index assignment: appending an action stamps it with its
    position.  Traces support list-like read access, projection onto an
    automaton, slicing into fragments and a handful of queries used by the
    SNOW property checkers.
    """

    def __init__(self, actions: Optional[Iterable[Action]] = None) -> None:
        self._actions: List[Action] = []
        #: optional append observer (the observability plane's metrics hook);
        #: called with each stored action, after it has been stamped.
        self._observer: Optional[Callable[[Action], None]] = None
        if actions is not None:
            for action in actions:
                self.append(action)

    def set_observer(self, observer: Optional[Callable[[Action], None]]) -> None:
        """Install (or clear) the append observer.  Observers must only
        *read*: appending from inside an observer would corrupt indices."""
        self._observer = observer

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def append(self, action: Action) -> Action:
        """Append ``action``, re-stamping its index; returns the stored copy.

        Freshly built actions (index ``-1``, never shared) are stamped in
        place instead of copied — the kernel appends one per trace action, so
        the copy was pure overhead.  Actions that already carry an index
        (fragment replays, trace copies) still get a fresh stamped copy.
        """
        index = len(self._actions)
        if action.index == -1:
            object.__setattr__(action, "index", index)
            stamped = action
        else:
            stamped = action.with_index(index)
        self._actions.append(stamped)
        if self._observer is not None:
            self._observer(stamped)
        return stamped

    def extend(self, actions: Iterable[Action]) -> None:
        for action in actions:
            self.append(action)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __getitem__(self, index):
        return self._actions[index]

    @property
    def actions(self) -> Tuple[Action, ...]:
        return tuple(self._actions)

    # ------------------------------------------------------------------
    # Projections and filters
    # ------------------------------------------------------------------
    def project(self, actor: str) -> Tuple[Action, ...]:
        """Projection ``trace|actor``: the subsequence of actions at ``actor``."""
        return tuple(a for a in self._actions if a.actor == actor)

    def external(self) -> Tuple[Action, ...]:
        """The subsequence of external actions (the *trace* in I/O-automata terms)."""
        return tuple(a for a in self._actions if a.is_external())

    def filter(self, predicate: Callable[[Action], bool]) -> Tuple[Action, ...]:
        return tuple(a for a in self._actions if predicate(a))

    def of_kind(self, kind: ActionKind) -> Tuple[Action, ...]:
        return tuple(a for a in self._actions if a.kind == kind)

    def actors(self) -> Tuple[str, ...]:
        """All automata that take at least one action, in order of appearance."""
        seen: Dict[str, None] = {}
        for action in self._actions:
            seen.setdefault(action.actor, None)
        return tuple(seen)

    def signature(self) -> Tuple[Tuple[Any, ...], ...]:
        """A canonical, ``msg_id``-free projection of the whole trace.

        Message ids come from a process-global counter, so two *separate*
        simulations of the same system never produce equal :class:`Action`
        records even when they took exactly the same steps.  The signature
        keeps everything observable about each action except the ids —
        ``(kind, actor, msg_type, src, dst, payload, info)`` — which makes
        cross-run determinism and golden-trace assertions possible
        (e.g. "a run with ``FaultPlan.none()`` equals a run with no fault
        plane at all").
        """
        rows = []
        for action in self._actions:
            message = action.message
            rows.append(
                (
                    action.kind.value,
                    action.actor,
                    message.msg_type if message is not None else None,
                    message.src if message is not None else None,
                    message.dst if message is not None else None,
                    message.items if message is not None else None,
                    action.info,
                )
            )
        return tuple(rows)

    # ------------------------------------------------------------------
    # Queries used by the property checkers
    # ------------------------------------------------------------------
    def find(self, predicate: Callable[[Action], bool], start: int = 0) -> Optional[Action]:
        """First action at or after ``start`` satisfying ``predicate``.

        Iterates by index instead of slicing: the property checkers call
        this in inner loops, and ``self._actions[start:]`` copied the whole
        tail of the trace on every call.
        """
        actions = self._actions
        for position in range(max(start, 0), len(actions)):
            action = actions[position]
            if predicate(action):
                return action
        return None

    def find_send(self, message: Message) -> Optional[Action]:
        """The ``send`` action of ``message`` (matched by ``msg_id``)."""
        return self.find(
            lambda a: a.kind == ActionKind.SEND and a.message is not None and a.message.msg_id == message.msg_id
        )

    def find_recv(self, message: Message) -> Optional[Action]:
        """The ``recv`` action of ``message`` (matched by ``msg_id``)."""
        return self.find(
            lambda a: a.kind == ActionKind.RECV and a.message is not None and a.message.msg_id == message.msg_id
        )

    def between(self, start_index: int, end_index: int) -> Tuple[Action, ...]:
        """Actions strictly between two trace indices.

        ``append`` stamps each action with its list position, so the window
        is a direct slice — O(window) instead of the full-trace scan this
        used to be.
        """
        if start_index > end_index:
            raise TraceError(f"between({start_index}, {end_index}): start after end")
        low = max(start_index + 1, 0)
        high = max(end_index, low)
        return tuple(self._actions[low:high])

    def prefix(self, action: Action) -> "Trace":
        """``prefix(trace, a)``: the finite prefix ending with ``a`` (inclusive).

        Mirrors the paper's ``prefix(α, a)`` notation.
        """
        if action.index < 0 or action.index >= len(self._actions):
            raise TraceError("action is not part of this trace")
        if not self._actions[action.index].same_step(action):
            raise TraceError("action does not match the trace at its index")
        return Trace(self._actions[: action.index + 1])

    def suffix_after(self, action: Action) -> Tuple[Action, ...]:
        """All actions strictly after ``action``.

        A plain slice: the returned tuple is a copy by contract, and list
        slicing materialises the tail at memcpy speed (an ``islice`` variant
        measured ~100x slower — it must *iterate* to ``index`` first).
        """
        return tuple(self._actions[action.index + 1 :])

    # ------------------------------------------------------------------
    # Indistinguishability (Lemma 3 vocabulary)
    # ------------------------------------------------------------------
    def indistinguishable_at(self, other: "Trace", actor: str) -> bool:
        """``self ~_actor other``: identical projections at ``actor``.

        Two executions are indistinguishable at an automaton when the
        automaton goes through the same sequence of steps in both; with our
        action records this is projection equality modulo trace indices.
        """
        mine = self.project(actor)
        theirs = other.project(actor)
        if len(mine) != len(theirs):
            return False
        return all(a.same_step(b) for a, b in zip(mine, theirs))

    # ------------------------------------------------------------------
    # Well-formedness of the channel layer
    # ------------------------------------------------------------------
    def validate_channels(self) -> None:
        """Check that every ``recv`` is preceded by a matching ``send``.

        Reliable asynchronous channels deliver every message at most once and
        never invent messages; this validates exactly that over the trace and
        is used by the tests and by the commuting transformation to confirm
        that a transformed action sequence is still a plausible execution.
        """
        sent: Dict[int, int] = {}
        delivered: Dict[int, int] = {}
        for action in self._actions:
            if action.message is None:
                continue
            if action.kind == ActionKind.SEND:
                if action.message.msg_id in sent:
                    raise TraceError(f"message {action.message.describe()} sent twice")
                sent[action.message.msg_id] = action.index
            elif action.kind == ActionKind.RECV:
                mid = action.message.msg_id
                if mid not in sent:
                    raise TraceError(f"message {action.message.describe()} received before being sent")
                if mid in delivered:
                    raise TraceError(f"message {action.message.describe()} delivered twice")
                if sent[mid] >= action.index:
                    raise TraceError(f"message {action.message.describe()} received before its send action")
                delivered[mid] = action.index

    def undelivered_messages(self) -> Tuple[Message, ...]:
        """Messages that were sent but never received in this trace."""
        sent: Dict[int, Message] = {}
        for action in self._actions:
            if action.message is None:
                continue
            if action.kind == ActionKind.SEND:
                sent[action.message.msg_id] = action.message
            elif action.kind == ActionKind.RECV:
                sent.pop(action.message.msg_id, None)
        return tuple(sent.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (used by examples and reports)."""
        lines = []
        actions = self._actions if limit is None else self._actions[:limit]
        for action in actions:
            lines.append(f"{action.index:5d}  {action.describe()}")
        if limit is not None and len(self._actions) > limit:
            lines.append(f"  ... ({len(self._actions) - limit} more actions)")
        return "\n".join(lines)

    def copy(self) -> "Trace":
        return Trace(self._actions)


@dataclass(frozen=True)
class Fragment:
    """A contiguous slice of a trace, remembered with its origin indices.

    Fragments are the unit the proofs reason about: the invocation fragment
    ``I_i``, the non-blocking fragments ``F_{i,x}``/``F_{i,y}`` and the
    completion fragment ``E_i`` of a READ transaction are all fragments in
    this sense.  :mod:`repro.proofs.fragments` builds them from traces and
    implements the commuting lemma on them.
    """

    actions: Tuple[Action, ...]
    label: str = ""

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    @property
    def start_index(self) -> int:
        if not self.actions:
            raise TraceError(f"fragment {self.label!r} is empty")
        return self.actions[0].index

    @property
    def end_index(self) -> int:
        if not self.actions:
            raise TraceError(f"fragment {self.label!r} is empty")
        return self.actions[-1].index

    def actors(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for action in self.actions:
            seen.setdefault(action.actor, None)
        return tuple(seen)

    def single_actor(self) -> Optional[str]:
        """The unique automaton of this fragment, or ``None`` if mixed."""
        actors = self.actors()
        if len(actors) == 1:
            return actors[0]
        return None

    def has_input_actions(self) -> bool:
        return any(a.is_input() for a in self.actions)

    def has_external_actions(self) -> bool:
        return any(a.is_external() for a in self.actions)

    def kinds(self) -> Tuple[ActionKind, ...]:
        return tuple(a.kind for a in self.actions)

    def same_steps(self, other: "Fragment") -> bool:
        """Step-wise equality modulo indices (projection identity)."""
        if len(self.actions) != len(other.actions):
            return False
        return all(a.same_step(b) for a, b in zip(self.actions, other.actions))

    def relabel(self, label: str) -> "Fragment":
        return Fragment(actions=self.actions, label=label)

    def describe(self) -> str:
        actors = ",".join(self.actors())
        return f"Fragment({self.label or 'unnamed'}; {len(self.actions)} actions @ {actors})"


def concat_fragments(fragments: Sequence[Fragment]) -> Tuple[Action, ...]:
    """Concatenate fragments into a flat action sequence (indices untouched)."""
    out: List[Action] = []
    for fragment in fragments:
        out.extend(fragment.actions)
    return tuple(out)


def reindex(actions: Sequence[Action]) -> Tuple[Action, ...]:
    """Re-stamp a sequence of actions with consecutive indices from zero."""
    return tuple(action.with_index(i) for i, action in enumerate(actions))
