"""Execution traces, projections, fragments and indistinguishability.

The proofs in the paper manipulate *executions* of a composed I/O automaton:
they project executions onto individual automata, cut out *execution
fragments* (maximal runs of actions at one automaton, e.g. the non-blocking
fragments ``F_{i,j}``), check *indistinguishability* of two executions at an
automaton (Lemma 3), and *commute* adjacent fragments that occur at distinct
automata (Lemma 2).  This module provides those operations over the concrete
traces produced by the simulation kernel, so that the proof replays in
:mod:`repro.proofs` and the property checkers in :mod:`repro.core` share one
vocabulary with the simulator.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .actions import Action, ActionKind, Message
from .errors import TraceError


@dataclass(frozen=True)
class TraceMode:
    """How a :class:`Trace` retains action records.

    ``full`` (the default) keeps every action and is byte-identical to the
    pre-knob behaviour — every golden-pinned run records with it.  The other
    two modes exist for long throughput runs where the *record* is the cost
    (ROADMAP item 2: ``trace_append`` is the second-largest profiler bucket):

    * ``sampled(rate, seed)`` — ``SEND``/``RECV`` records are retained with
      probability ``rate`` by a dedicated deterministic RNG (same seed ⇒
      byte-identical sample); ``INVOKE``/``RESPOND``/``INTERNAL``/``START``
      are always retained, so transaction records, spans and reconfig/
      consensus markers survive intact;
    * ``ring(capacity)`` — every action is recorded but only the newest
      ``capacity`` records are kept (a flight recorder).

    In every mode the trace observer still sees **every** appended action, so
    metrics counters and the streaming invariant monitors stay exact; only
    the retained records change.  Retained actions always carry their true
    global index.
    """

    kind: str = "full"
    rate: float = 1.0
    seed: int = 0
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("full", "sampled", "ring"):
            raise ValueError(f"unknown trace mode {self.kind!r}")
        if self.kind == "sampled" and not (0.0 < self.rate <= 1.0):
            raise ValueError(f"sampled trace rate must be in (0, 1], got {self.rate}")
        if self.kind == "ring" and self.capacity < 1:
            raise ValueError(f"ring trace capacity must be >= 1, got {self.capacity}")

    @classmethod
    def full(cls) -> "TraceMode":
        return cls()

    @classmethod
    def sampled(cls, rate: float, seed: int = 0) -> "TraceMode":
        return cls(kind="sampled", rate=rate, seed=seed)

    @classmethod
    def ring(cls, capacity: int) -> "TraceMode":
        return cls(kind="ring", capacity=capacity)

    def describe(self) -> str:
        if self.kind == "sampled":
            return f"sampled(rate={self.rate}, seed={self.seed})"
        if self.kind == "ring":
            return f"ring(capacity={self.capacity})"
        return "full"


#: kinds eligible for dropping under ``sampled`` — the bulk of any trace.
#: Everything else is structural: the kernel reads the stamped index of
#: INVOKE/RESPOND back out of ``append``, and spans/monitors/reconfig
#: markers live on INTERNAL/START actions.
_SAMPLABLE_KINDS = (ActionKind.SEND, ActionKind.RECV)


class Trace:
    """An ordered sequence of :class:`~repro.ioa.actions.Action` records.

    The trace owns index assignment: appending an action stamps it with its
    position.  Traces support list-like read access, projection onto an
    automaton, slicing into fragments and a handful of queries used by the
    SNOW property checkers.

    ``mode`` selects the retention policy (see :class:`TraceMode`); the
    default ``full`` mode keeps every action, and all position-dependent
    queries (``between``, ``prefix``, …) rely on index == list position only
    in that mode — the non-full modes answer them by index scan or refuse
    loudly where a renumbered copy would lie.
    """

    def __init__(
        self,
        actions: Optional[Iterable[Action]] = None,
        mode: Optional[TraceMode] = None,
    ) -> None:
        self.mode: TraceMode = mode if mode is not None else TraceMode.full()
        if self.mode.kind == "ring":
            self._actions: List[Action] = deque(maxlen=self.mode.capacity)  # type: ignore[assignment]
        else:
            self._actions = []
        #: The sampler is a geometric-skip Bernoulli sampler: instead of one
        #: RNG draw per samplable action, one draw per *retained* sample
        #: yields the count of drops preceding it (inversion of the
        #: geometric CDF) — the drop path, taken for ~``1-rate`` of all
        #: send/recv records, is then a decrement-and-compare.  ``_skip`` is
        #: the drops left before the next keep; ``-1`` means "never drop"
        #: (full/ring modes, and ``rate == 1``), keeping the hot append path
        #: on one integer compare.
        self._sample_rng: Optional[random.Random] = None
        self._skip = -1
        if self.mode.kind == "sampled" and self.mode.rate < 1.0:
            self._sample_rng = random.Random(self.mode.seed)
            self._log_drop = math.log(1.0 - self.mode.rate)
            self._skip = self._draw_skip()
        #: total actions ever appended (== len(self) only in full mode)
        self._total = 0
        #: optional append observer (the observability plane's metrics hook);
        #: called with each appended action — including, under ``sampled``,
        #: the dropped ones (still carrying index ``-1``), so counters and
        #: streaming monitors stay exact in every mode.
        self._observer: Optional[Callable[[Action], None]] = None
        if actions is not None:
            for action in actions:
                self.append(action)

    def set_observer(self, observer: Optional[Callable[[Action], None]]) -> None:
        """Install (or clear) the append observer.  Observers must only
        *read*: appending from inside an observer would corrupt indices."""
        self._observer = observer

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def append(self, action: Action) -> Action:
        """Append ``action``, re-stamping its index; returns the stored copy.

        Freshly built actions (index ``-1``, never shared) are stamped in
        place instead of copied — the kernel appends one per trace action, so
        the copy was pure overhead.  Actions that already carry an index
        (fragment replays, trace copies) still get a fresh stamped copy.

        Under ``TraceMode.sampled`` a dropped ``SEND``/``RECV`` never reaches
        :meth:`_store` — it skips the stamp, the store *and* the profiler's
        ``trace_append`` bucket (that is the saving) — and is returned, and
        shown to the observer, still carrying index ``-1``.
        """
        skip = self._skip
        if skip >= 0 and action.kind in _SAMPLABLE_KINDS:
            if skip:
                self._skip = skip - 1
                self._total += 1
                if self._observer is not None:
                    self._observer(action)
                return action
            self._skip = self._draw_skip()
        return self._store(action)

    def _store(self, action: Action) -> Action:
        """The retained-record path: stamp, keep, notify.  This — not the
        sampling gate in :meth:`append` — is what the kernel profiler wraps
        as ``trace_append``, so the bucket measures record-keeping actually
        performed."""
        index = self._total
        self._total = index + 1
        if action.index == -1:
            object.__setattr__(action, "index", index)
            stamped = action
        else:
            stamped = action.with_index(index)
        self._actions.append(stamped)
        if self._observer is not None:
            self._observer(stamped)
        return stamped

    def extend(self, actions: Iterable[Action]) -> None:
        for action in actions:
            self.append(action)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self._actions)

    def __getitem__(self, index):
        if isinstance(index, slice) and isinstance(self._actions, deque):
            return list(self._actions)[index]  # deques do not slice
        return self._actions[index]

    @property
    def actions(self) -> Tuple[Action, ...]:
        return tuple(self._actions)

    @property
    def total_appended(self) -> int:
        """Actions ever appended — equals ``len(self)`` only in full mode."""
        return self._total

    def _draw_skip(self) -> int:
        """Geometric draw: samplable records to drop before the next keep
        (``floor(ln U / ln(1-rate))``, the inversion-method geometric)."""
        return int(math.log(1.0 - self._sample_rng.random()) / self._log_drop)

    @property
    def sampled_out(self) -> int:
        """SEND/RECV records dropped by the ``sampled`` mode's sampler."""
        if self.mode.kind != "sampled":
            return 0
        return self._total - len(self._actions)

    @property
    def last_index(self) -> int:
        """Global index of the newest retained action (``-1`` when empty).

        In full mode this is ``len(self) - 1``; the non-full modes need it
        because retained indices are sparse (sampled) or windowed (ring).
        """
        return self._actions[-1].index if self._actions else -1

    def is_full(self) -> bool:
        return self.mode.kind == "full"

    # ------------------------------------------------------------------
    # Projections and filters
    # ------------------------------------------------------------------
    def project(self, actor: str) -> Tuple[Action, ...]:
        """Projection ``trace|actor``: the subsequence of actions at ``actor``."""
        return tuple(a for a in self._actions if a.actor == actor)

    def external(self) -> Tuple[Action, ...]:
        """The subsequence of external actions (the *trace* in I/O-automata terms)."""
        return tuple(a for a in self._actions if a.is_external())

    def filter(self, predicate: Callable[[Action], bool]) -> Tuple[Action, ...]:
        return tuple(a for a in self._actions if predicate(a))

    def of_kind(self, kind: ActionKind) -> Tuple[Action, ...]:
        return tuple(a for a in self._actions if a.kind == kind)

    def actors(self) -> Tuple[str, ...]:
        """All automata that take at least one action, in order of appearance."""
        seen: Dict[str, None] = {}
        for action in self._actions:
            seen.setdefault(action.actor, None)
        return tuple(seen)

    def signature(self) -> Tuple[Tuple[Any, ...], ...]:
        """A canonical, ``msg_id``-free projection of the whole trace.

        Message ids come from a process-global counter, so two *separate*
        simulations of the same system never produce equal :class:`Action`
        records even when they took exactly the same steps.  The signature
        keeps everything observable about each action except the ids —
        ``(kind, actor, msg_type, src, dst, payload, info)`` — which makes
        cross-run determinism and golden-trace assertions possible
        (e.g. "a run with ``FaultPlan.none()`` equals a run with no fault
        plane at all").
        """
        rows = []
        for action in self._actions:
            message = action.message
            rows.append(
                (
                    action.kind.value,
                    action.actor,
                    message.msg_type if message is not None else None,
                    message.src if message is not None else None,
                    message.dst if message is not None else None,
                    message.items if message is not None else None,
                    action.info,
                )
            )
        return tuple(rows)

    # ------------------------------------------------------------------
    # Queries used by the property checkers
    # ------------------------------------------------------------------
    def find(self, predicate: Callable[[Action], bool], start: int = 0) -> Optional[Action]:
        """First action at or after ``start`` satisfying ``predicate``.

        Iterates by index instead of slicing: the property checkers call
        this in inner loops, and ``self._actions[start:]`` copied the whole
        tail of the trace on every call.  ``start`` is a *global* trace
        index; in the non-full modes (sparse/windowed retention) the scan
        compares against each action's stamped index instead of assuming
        index == position.
        """
        actions = self._actions
        if not self.is_full():
            start = max(start, 0)
            for action in actions:
                if action.index >= start and predicate(action):
                    return action
            return None
        for position in range(max(start, 0), len(actions)):
            action = actions[position]
            if predicate(action):
                return action
        return None

    def find_send(self, message: Message) -> Optional[Action]:
        """The ``send`` action of ``message`` (matched by ``msg_id``)."""
        return self.find(
            lambda a: a.kind == ActionKind.SEND and a.message is not None and a.message.msg_id == message.msg_id
        )

    def find_recv(self, message: Message) -> Optional[Action]:
        """The ``recv`` action of ``message`` (matched by ``msg_id``)."""
        return self.find(
            lambda a: a.kind == ActionKind.RECV and a.message is not None and a.message.msg_id == message.msg_id
        )

    def between(self, start_index: int, end_index: int) -> Tuple[Action, ...]:
        """Actions strictly between two trace indices.

        ``append`` stamps each action with its list position, so in full
        mode the window is a direct slice — O(window) instead of the
        full-trace scan this used to be.  Non-full modes (where retained
        indices are sparse or windowed) fall back to the index scan and
        return whatever was retained inside the window.
        """
        if start_index > end_index:
            raise TraceError(f"between({start_index}, {end_index}): start after end")
        if not self.is_full():
            return tuple(
                a for a in self._actions if start_index < a.index < end_index
            )
        low = max(start_index + 1, 0)
        high = max(end_index, low)
        return tuple(self._actions[low:high])

    def prefix(self, action: Action) -> "Trace":
        """``prefix(trace, a)``: the finite prefix ending with ``a`` (inclusive).

        Mirrors the paper's ``prefix(α, a)`` notation.
        """
        if not self.is_full():
            raise TraceError(
                f"prefix() needs a full-mode trace (this one is "
                f"{self.mode.describe()}); a renumbered partial prefix would "
                "not be the paper's prefix"
            )
        if action.index < 0 or action.index >= len(self._actions):
            raise TraceError("action is not part of this trace")
        if not self._actions[action.index].same_step(action):
            raise TraceError("action does not match the trace at its index")
        return Trace(self._actions[: action.index + 1])

    def suffix_after(self, action: Action) -> Tuple[Action, ...]:
        """All actions strictly after ``action``.

        A plain slice: the returned tuple is a copy by contract, and list
        slicing materialises the tail at memcpy speed (an ``islice`` variant
        measured ~100x slower — it must *iterate* to ``index`` first).
        Non-full modes scan by stamped index instead.
        """
        if not self.is_full():
            return tuple(a for a in self._actions if a.index > action.index)
        return tuple(self._actions[action.index + 1 :])

    # ------------------------------------------------------------------
    # Indistinguishability (Lemma 3 vocabulary)
    # ------------------------------------------------------------------
    def indistinguishable_at(self, other: "Trace", actor: str) -> bool:
        """``self ~_actor other``: identical projections at ``actor``.

        Two executions are indistinguishable at an automaton when the
        automaton goes through the same sequence of steps in both; with our
        action records this is projection equality modulo trace indices.
        """
        mine = self.project(actor)
        theirs = other.project(actor)
        if len(mine) != len(theirs):
            return False
        return all(a.same_step(b) for a, b in zip(mine, theirs))

    # ------------------------------------------------------------------
    # Well-formedness of the channel layer
    # ------------------------------------------------------------------
    def validate_channels(self) -> None:
        """Check that every ``recv`` is preceded by a matching ``send``.

        Reliable asynchronous channels deliver every message at most once and
        never invent messages; this validates exactly that over the trace and
        is used by the tests and by the commuting transformation to confirm
        that a transformed action sequence is still a plausible execution.
        """
        sent: Dict[int, int] = {}
        delivered: Dict[int, int] = {}
        for action in self._actions:
            if action.message is None:
                continue
            if action.kind == ActionKind.SEND:
                if action.message.msg_id in sent:
                    raise TraceError(f"message {action.message.describe()} sent twice")
                sent[action.message.msg_id] = action.index
            elif action.kind == ActionKind.RECV:
                mid = action.message.msg_id
                if mid not in sent:
                    raise TraceError(f"message {action.message.describe()} received before being sent")
                if mid in delivered:
                    raise TraceError(f"message {action.message.describe()} delivered twice")
                if sent[mid] >= action.index:
                    raise TraceError(f"message {action.message.describe()} received before its send action")
                delivered[mid] = action.index

    def undelivered_messages(self) -> Tuple[Message, ...]:
        """Messages that were sent but never received in this trace."""
        sent: Dict[int, Message] = {}
        for action in self._actions:
            if action.message is None:
                continue
            if action.kind == ActionKind.SEND:
                sent[action.message.msg_id] = action.message
            elif action.kind == ActionKind.RECV:
                sent.pop(action.message.msg_id, None)
        return tuple(sent.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self, limit: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (used by examples and reports)."""
        lines = []
        retained = list(self._actions) if isinstance(self._actions, deque) else self._actions
        actions = retained if limit is None else retained[:limit]
        for action in actions:
            lines.append(f"{action.index:5d}  {action.describe()}")
        if limit is not None and len(self._actions) > limit:
            lines.append(f"  ... ({len(self._actions) - limit} more actions)")
        return "\n".join(lines)

    def copy(self) -> "Trace":
        return Trace(self._actions)


@dataclass(frozen=True)
class Fragment:
    """A contiguous slice of a trace, remembered with its origin indices.

    Fragments are the unit the proofs reason about: the invocation fragment
    ``I_i``, the non-blocking fragments ``F_{i,x}``/``F_{i,y}`` and the
    completion fragment ``E_i`` of a READ transaction are all fragments in
    this sense.  :mod:`repro.proofs.fragments` builds them from traces and
    implements the commuting lemma on them.
    """

    actions: Tuple[Action, ...]
    label: str = ""

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    @property
    def start_index(self) -> int:
        if not self.actions:
            raise TraceError(f"fragment {self.label!r} is empty")
        return self.actions[0].index

    @property
    def end_index(self) -> int:
        if not self.actions:
            raise TraceError(f"fragment {self.label!r} is empty")
        return self.actions[-1].index

    def actors(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for action in self.actions:
            seen.setdefault(action.actor, None)
        return tuple(seen)

    def single_actor(self) -> Optional[str]:
        """The unique automaton of this fragment, or ``None`` if mixed."""
        actors = self.actors()
        if len(actors) == 1:
            return actors[0]
        return None

    def has_input_actions(self) -> bool:
        return any(a.is_input() for a in self.actions)

    def has_external_actions(self) -> bool:
        return any(a.is_external() for a in self.actions)

    def kinds(self) -> Tuple[ActionKind, ...]:
        return tuple(a.kind for a in self.actions)

    def same_steps(self, other: "Fragment") -> bool:
        """Step-wise equality modulo indices (projection identity)."""
        if len(self.actions) != len(other.actions):
            return False
        return all(a.same_step(b) for a, b in zip(self.actions, other.actions))

    def relabel(self, label: str) -> "Fragment":
        return Fragment(actions=self.actions, label=label)

    def describe(self) -> str:
        actors = ",".join(self.actors())
        return f"Fragment({self.label or 'unnamed'}; {len(self.actions)} actions @ {actors})"


def concat_fragments(fragments: Sequence[Fragment]) -> Tuple[Action, ...]:
    """Concatenate fragments into a flat action sequence (indices untouched)."""
    out: List[Action] = []
    for fragment in fragments:
        out.extend(fragment.actions)
    return tuple(out)


def reindex(actions: Sequence[Action]) -> Tuple[Action, ...]:
    """Re-stamp a sequence of actions with consecutive indices from zero."""
    return tuple(action.with_index(i) for i, action in enumerate(actions))
