"""The incrementally maintained event frontier of the simulation kernel.

Until PR 7 the kernel rebuilt the full ``pending_events()`` list from
scratch on every step and removed the chosen delivery with a linear
``list.remove`` — O(steps × in-flight events), quadratic exactly where
"millions of users" needs it linear.  :class:`EventFrontier` replaces the
rebuild with three indexed structures that are mutated as events are
created and consumed:

* **Deliveries** live in an insertion-ordered dict keyed by their globally
  unique ``enqueued_at`` stamp, giving O(1) removal while preserving the
  exact enqueue order the old list presented.  A side min-heap over the
  latency-stamped (``ready_at > 0``) deliveries plus a count of the
  immediately-deliverable ones makes the fault injector's "is anything
  ripe / what is the next arrival boundary" probes O(1) heap peeks instead
  of full scans.
* **Timeouts** live in an insertion-ordered dict (arming order) plus a
  ``(ready_at, seq)`` min-heap of armed-but-not-yet-ripe timers.  Because
  the virtual clock never moves backwards, ripeness is monotone: once ripe,
  a timer stays ripe, so ripe timers are popped off the heap exactly once
  into a seq-sorted list that reproduces the old "filter by arming order"
  presentation without rescanning.
* **Ready invocations** are maintained by the kernel's dependency-triggered
  readiness tracking (see ``Simulation._refresh_ready``) instead of being
  re-derived from every client queue each step; they are presented in
  client-registration order via a sorted ``(registration, client)`` list.

The frontier presents events to ``scheduler.choose`` in exactly the
canonical order the old rebuild produced — deliveries, ripe timeouts, ready
invocations — so every golden-signature, chaos-grid and determinism test
passes unchanged (``tests/ioa/test_frontier.py`` pins frontier == rebuild
under random interleavings of every mutating operation).

Flights
-------
A *flight* groups several pending deliveries so that one scheduler event
delivers them all (see ``Simulation.flight_scope`` and the ``SendBatch``
session effect).  The frontier only tracks membership — flight ids map to
the member stamps; delivery order and removal semantics are unchanged.
Flights exist only when a protocol explicitly opts into fan-out batching,
so the default event stream is byte-identical to the pre-frontier kernel.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Tuple

from .scheduler import PendingDelivery, PendingEvent, PendingInvocation, PendingTimeout


class EventFrontier:
    """Indexed pending-event set with O(1) removal and heap-peek boundaries."""

    __slots__ = (
        "_deliveries",
        "_immediate",
        "_delayed",
        "_flights",
        "_timeouts",
        "_timer_heap",
        "_ripe",
        "_ready",
        "_ready_order",
    )

    def __init__(self) -> None:
        #: enqueue stamp -> delivery, in enqueue order (dict insertion order).
        self._deliveries: Dict[int, PendingDelivery] = {}
        #: how many pending deliveries have ``ready_at == 0`` (always ripe).
        self._immediate: int = 0
        #: ``(ready_at, seq)`` min-heap over latency-stamped deliveries;
        #: entries whose seq has left ``_deliveries`` are discarded lazily
        #: (stamps are never reused, so staleness is unambiguous).
        self._delayed: List[Tuple[int, int]] = []
        #: flight id -> enqueue stamps of the deliveries batched into it.
        self._flights: Dict[int, List[int]] = {}
        #: enqueue stamp -> timeout, in arming order.
        self._timeouts: Dict[int, PendingTimeout] = {}
        #: ``(ready_at, seq)`` min-heap over armed-but-not-yet-ripe timers.
        self._timer_heap: List[Tuple[int, int]] = []
        #: stamps of ripe unfired timers, ascending (= arming order).  The
        #: virtual clock is non-decreasing, so this only ever grows via
        #: :meth:`_ripen` and shrinks when a timer fires or its owner retires.
        self._ripe: List[int] = []
        #: client name -> its ready invocation event.
        self._ready: Dict[str, PendingInvocation] = {}
        #: ``(registration order, client)`` ascending — presentation order.
        self._ready_order: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # Deliveries
    # ------------------------------------------------------------------
    def add_delivery(self, delivery: PendingDelivery) -> None:
        seq = delivery.enqueued_at
        self._deliveries[seq] = delivery
        if delivery.ready_at:
            heapq.heappush(self._delayed, (delivery.ready_at, seq))
        else:
            self._immediate += 1
        if delivery.flight:
            self._flights.setdefault(delivery.flight, []).append(seq)

    def remove_delivery(self, delivery: PendingDelivery) -> None:
        self._discard_delivery(delivery)
        if delivery.flight:
            members = self._flights.get(delivery.flight)
            if members is not None:
                try:
                    members.remove(delivery.enqueued_at)
                except ValueError:
                    pass
                if not members:
                    del self._flights[delivery.flight]

    def _discard_delivery(self, delivery: PendingDelivery) -> None:
        del self._deliveries[delivery.enqueued_at]
        if not delivery.ready_at:
            self._immediate -= 1

    def deliveries(self) -> Iterable[PendingDelivery]:
        """The pending deliveries, in enqueue order."""
        return self._deliveries.values()

    def delivery_count(self) -> int:
        return len(self._deliveries)

    def next_delivery_ready(self) -> Optional[int]:
        """Earliest ``ready_at`` among pending deliveries (``0`` = ripe now)."""
        if self._immediate:
            return 0
        heap = self._delayed
        alive = self._deliveries
        while heap and heap[0][1] not in alive:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def has_ripe_delivery(self, now: int) -> bool:
        ready = self.next_delivery_ready()
        return ready is not None and ready <= now

    # -- flights -------------------------------------------------------
    def reflight(self, delivery: PendingDelivery, flight: int) -> PendingDelivery:
        """Stamp an in-frontier delivery with a flight id, in place.

        The enqueue stamp (and hence presentation order) is unchanged; only
        the dict value is replaced, so observability hooks — keyed on the
        message, which is shared — are unaffected.
        """
        seq = delivery.enqueued_at
        current = self._deliveries.get(seq)
        if current is None or current.flight:
            return delivery
        stamped = replace(current, flight=flight)
        self._deliveries[seq] = stamped
        self._flights.setdefault(flight, []).append(seq)
        return stamped

    def take_flight(self, flight: int) -> List[PendingDelivery]:
        """Pop the remaining deliveries of ``flight``, in enqueue order."""
        members = self._flights.pop(flight, None)
        if not members:
            return []
        taken: List[PendingDelivery] = []
        for seq in sorted(members):
            delivery = self._deliveries.get(seq)
            if delivery is None:
                continue
            self._discard_delivery(delivery)
            taken.append(delivery)
        return taken

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def add_timeout(self, timeout: PendingTimeout) -> None:
        seq = timeout.enqueued_at
        self._timeouts[seq] = timeout
        heapq.heappush(self._timer_heap, (timeout.ready_at, seq))

    def remove_timeout(self, timeout: PendingTimeout) -> None:
        """Remove a fired (hence ripe) timeout."""
        del self._timeouts[timeout.enqueued_at]
        try:
            self._ripe.remove(timeout.enqueued_at)
        except ValueError:
            pass

    def remove_timeouts_for_owner(self, owner: str) -> None:
        dead = [seq for seq, t in self._timeouts.items() if t.owner == owner]
        if not dead:
            return
        for seq in dead:
            del self._timeouts[seq]
        dead_set = set(dead)
        self._ripe = [seq for seq in self._ripe if seq not in dead_set]
        # heap entries for dead stamps are discarded lazily on peek/ripen

    def timeouts(self) -> Iterable[PendingTimeout]:
        """The armed-but-unfired timers, in arming order."""
        return self._timeouts.values()

    def has_timeouts(self) -> bool:
        return bool(self._timeouts)

    def _ripen(self, now: int) -> None:
        heap = self._timer_heap
        alive = self._timeouts
        while heap and heap[0][0] <= now:
            _, seq = heapq.heappop(heap)
            if seq in alive:
                insort(self._ripe, seq)

    def ripe_timeouts(self, now: int) -> List[PendingTimeout]:
        """The timers ripe at ``now``, in arming order."""
        self._ripen(now)
        alive = self._timeouts
        return [alive[seq] for seq in self._ripe]

    def has_ripe_timeout(self, now: int) -> bool:
        self._ripen(now)
        return bool(self._ripe)

    def next_timeout_ready(self) -> Optional[int]:
        """Earliest ``ready_at`` among armed timers (ripe or not)."""
        candidates: List[int] = []
        alive = self._timeouts
        if self._ripe:
            candidates.append(min(alive[seq].ready_at for seq in self._ripe))
        heap = self._timer_heap
        while heap and heap[0][1] not in alive:
            heapq.heappop(heap)
        if heap:
            candidates.append(heap[0][0])
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # Ready invocations
    # ------------------------------------------------------------------
    def set_ready(self, order: int, invocation: PendingInvocation) -> None:
        client = invocation.client
        if client not in self._ready:
            insort(self._ready_order, (order, client))
        self._ready[client] = invocation

    def clear_ready(self, order: int, client: str) -> None:
        if self._ready.pop(client, None) is not None:
            self._ready_order.remove((order, client))

    def has_ready_invocation(self) -> bool:
        return bool(self._ready)

    # ------------------------------------------------------------------
    # The frontier
    # ------------------------------------------------------------------
    def events(self, now_fn) -> List[PendingEvent]:
        """The choosable events, in the canonical order: deliveries in
        enqueue order, ripe timeouts in arming order, ready invocations in
        client-registration order.  ``now_fn`` is only consulted when timers
        are armed (ripening needs the virtual clock)."""
        events: List[PendingEvent] = list(self._deliveries.values())
        if self._timeouts:
            self._ripen(now_fn())
            if self._ripe:
                alive = self._timeouts
                events.extend(alive[seq] for seq in self._ripe)
        if self._ready_order:
            ready = self._ready
            events.extend(ready[client] for _, client in self._ready_order)
        return events
