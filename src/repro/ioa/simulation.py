"""The deterministic discrete-event simulation kernel.

This is the substrate on which every protocol in the repository runs.  It
plays the role of the composed I/O automaton of the paper: it owns the set of
automata, the reliable asynchronous channels, the external invocation events
and the global execution trace.  Asynchrony is embodied by the pluggable
:class:`~repro.ioa.scheduler.Scheduler`, which at each step picks one pending
event (a message delivery or a transaction invocation) to execute.

Guarantees provided (matching the paper's model, Section 2):

* **Reliable channels** — every sent message is eventually deliverable and is
  delivered at most once, uncorrupted.  The kernel never drops messages; a
  run ends only when no pending events remain or the step bound is hit.
* **Asynchrony** — the scheduler may interleave deliveries and invocations in
  any order; per-channel FIFO is *not* assumed (the paper does not assume
  it either).
* **Well-formed clients** — a client has at most one outstanding transaction;
  queued transactions are only offered for invocation once the previous one
  has responded and any explicit ``after`` dependencies have completed.
* **Determinism** — given the same automata, workload, scheduler and seed the
  produced trace is identical, which makes every experiment and every failure
  replayable.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from contextlib import contextmanager
from time import perf_counter
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .actions import (
    Action,
    ActionKind,
    Message,
    internal_action,
    invoke_action,
    recv_action,
    respond_action,
    send_action,
)
from .automaton import (
    Automaton,
    Await,
    ClientAutomaton,
    Context,
    Mark,
    Send,
    SendBatch,
    SessionState,
)
from .errors import (
    DuplicateProcessError,
    LivenessError,
    SessionError,
    SimulationError,
    UnknownProcessError,
    WellFormednessError,
)
from .frontier import EventFrontier
from .network import FaultPlane, Topology
from .scheduler import (
    FIFOScheduler,
    PendingDelivery,
    PendingEvent,
    PendingInvocation,
    PendingTimeout,
    Scheduler,
)
from .trace import Trace, TraceMode


@dataclass
class TransactionRecord:
    """Everything the kernel knows about one submitted transaction."""

    txn_id: Any
    txn: Any
    client: str
    submitted_at: int = 0
    invoke_index: Optional[int] = None
    respond_index: Optional[int] = None
    result: Any = None
    rounds: int = 0
    messages_sent: int = 0
    annotations: Dict[str, Any] = field(default_factory=dict)
    #: virtual-clock stamps (kernel steps + fault-plane time jumps); only
    #: populated when a fault plane is installed.  Trace-index latency is
    #: blind to virtual-time delays (a latency model adds no trace actions),
    #: so "latency under fault" must be measured on this clock instead.
    invoke_vtime: Optional[int] = None
    respond_vtime: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.respond_index is not None

    @property
    def invoked(self) -> bool:
        return self.invoke_index is not None

    def latency_steps(self) -> Optional[int]:
        """Number of trace steps between invocation and response."""
        if self.invoke_index is None or self.respond_index is None:
            return None
        return self.respond_index - self.invoke_index

    def latency_virtual(self) -> Optional[int]:
        """Virtual-time latency (only measured under a fault plane)."""
        if self.invoke_vtime is None or self.respond_vtime is None:
            return None
        return self.respond_vtime - self.invoke_vtime

    def describe(self) -> str:
        status = "complete" if self.complete else ("running" if self.invoked else "queued")
        return f"{self.txn_id} @ {self.client}: {status}, rounds={self.rounds}, result={self.result!r}"


@dataclass
class _QueuedTransaction:
    txn: Any
    txn_id: Any
    after: Tuple[Any, ...] = ()


class Simulation:
    """The composed system: automata + channels + scheduler + trace."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        scheduler: Optional[Scheduler] = None,
        seed: int = 0,
        max_steps: int = 200_000,
        fault_plane: Optional[FaultPlane] = None,
        obs: Optional[Any] = None,
        trace_mode: Optional[TraceMode] = None,
    ) -> None:
        self.topology = topology if topology is not None else Topology()
        self.scheduler = scheduler if scheduler is not None else FIFOScheduler()
        self.max_steps = max_steps
        self.rng = random.Random(seed)
        #: ``trace_mode`` selects record retention (see
        #: :class:`~repro.ioa.trace.TraceMode`); ``None``/``full`` keeps
        #: every action and is byte-identical to the pre-knob kernel.  The
        #: sampler's RNG lives inside the trace — kernel scheduling state
        #: (``self.rng``) is untouched, so the *executed* run is identical
        #: in every mode; only what gets recorded changes.
        self.trace = Trace(mode=trace_mode)
        self.fault_plane = fault_plane
        if fault_plane is not None:
            fault_plane.on_attach(self)
        #: optional observability plane (see :mod:`repro.obs`): a passive
        #: listener — trace observer plus mailbox hooks — that appends no
        #: actions and never touches scheduler or RNG state, so the trace is
        #: identical with or without it.  ``None`` skips every hook.
        self.obs = obs
        self._profiler = None
        if obs is not None:
            obs.on_attach(self)
            self._profiler = getattr(obs, "profiler", None)

        self._automata: Dict[str, Automaton] = {}
        self._contexts: Dict[str, Context] = {}
        #: the incrementally maintained pending-event index (deliveries,
        #: timers, ready invocations) — see :mod:`repro.ioa.frontier`.
        self._frontier = EventFrontier()
        #: idle-advanced clock for timer ripeness when no fault plane is
        #: installed (see :meth:`now`); never moves backwards.
        self._timeout_clock = 0
        self._client_queues: Dict[str, Deque[_QueuedTransaction]] = {}
        #: client -> registration index; ready invocations are presented in
        #: this order (= the old per-step iteration over ``_client_queues``).
        self._client_order: Dict[str, int] = {}
        self._client_order_counter = itertools.count(1)
        #: dependency-triggered invocation readiness: the current queue
        #: head's ``after`` deps per client, and the reverse index mapping a
        #: dep txn id to the clients whose head waits on it.  Heads are
        #: re-evaluated only when a trigger fires (txn completion, head
        #: change, a dep id materialising as a record) — never per step.
        self._head_deps: Dict[str, Tuple[Any, ...]] = {}
        self._dep_waiters: Dict[Any, Set[str]] = {}
        self._sessions: Dict[str, SessionState] = {}
        self._records: Dict[Any, TransactionRecord] = {}
        self._txn_order: List[Any] = []
        self._txn_counter = itertools.count(1)
        self._enqueue_counter = itertools.count(1)
        #: fan-out batching (flights): open collectors capturing deliveries
        #: enqueued inside a ``flight_scope``; ids come from the counter.
        self._flight_counter = itertools.count(1)
        self._flight_collectors: List[List[PendingDelivery]] = []
        self._steps_taken = 0
        self._started = False

    # ------------------------------------------------------------------
    # System construction
    # ------------------------------------------------------------------
    def add_automaton(self, automaton: Automaton) -> Automaton:
        """Register an automaton — before the run, or dynamically mid-run.

        Mid-run registration (the reconfiguration layer spawning a fresh
        replica or consensus member) records the START action at the point
        of joining and runs ``on_start`` immediately, so late automata get
        the same life-cycle as founding ones.
        """
        if automaton.name in self._automata:
            raise DuplicateProcessError(automaton.name)
        self._automata[automaton.name] = automaton
        self.topology.register(automaton)
        self._contexts[automaton.name] = Context(self, automaton.name)
        if isinstance(automaton, ClientAutomaton):
            self._client_queues[automaton.name] = deque()
            self._client_order[automaton.name] = next(self._client_order_counter)
        if self._started:
            self.trace.append(Action.make(ActionKind.START, automaton.name))
            automaton.on_start(self._contexts[automaton.name])
        return automaton

    def remove_automaton(self, name: str, force: bool = False) -> bool:
        """Retire an automaton mid-run (the reconfiguration removal path).

        Returns ``False`` — removing nothing — while pending deliveries
        still involve the automaton (either direction: a message *from* a
        retired process must die with it too, or its receiver would reply to
        a ghost), unless ``force`` is set (then they are dropped with the
        automaton; the reconfig driver only forces after a drain window).
        Timers owned by the automaton die with it, and the fault plane is
        told to drop any transport state it holds for the name.  Clients
        with queued or in-flight transactions cannot be removed — that
        would orphan their records.
        """
        automaton = self.automaton(name)
        if isinstance(automaton, ClientAutomaton):
            if name in self._sessions or self._client_queues.get(name):
                raise SimulationError(
                    f"cannot retire client {name!r} with queued or in-flight transactions"
                )
        in_flight = [
            d for d in self._frontier.deliveries()
            if d.message.dst == name or d.message.src == name
        ]
        if in_flight and not force:
            return False
        if in_flight:
            for delivery in in_flight:
                self._frontier.remove_delivery(delivery)
            if self.obs is not None:
                for delivery in in_flight:
                    self.obs.on_dequeue(delivery.message)
        self._frontier.remove_timeouts_for_owner(name)
        if self.fault_plane is not None:
            self.fault_plane.on_remove(name, self)
        self.trace.append(internal_action(name, {"lifecycle": "retired"}))
        del self._automata[name]
        del self._contexts[name]
        if self._client_queues.pop(name, None) is not None:
            order = self._client_order.pop(name, None)
            if order is not None:
                self._frontier.clear_ready(order, name)
            self._unwatch_deps(name)
        self.topology.unregister(name)
        return True

    def add_automata(self, automata: Iterable[Automaton]) -> None:
        for automaton in automata:
            self.add_automaton(automaton)

    def automaton(self, name: str) -> Automaton:
        try:
            return self._automata[name]
        except KeyError:
            raise UnknownProcessError(name) from None

    def automata(self) -> Tuple[Automaton, ...]:
        return tuple(self._automata.values())

    def servers(self) -> Tuple[str, ...]:
        return tuple(name for name, a in self._automata.items() if a.is_server())

    def clients(self) -> Tuple[str, ...]:
        return tuple(name for name, a in self._automata.items() if a.is_client())

    # ------------------------------------------------------------------
    # Workload submission
    # ------------------------------------------------------------------
    def submit(self, client: str, txn: Any, txn_id: Any = None, after: Sequence[Any] = ()) -> Any:
        """Queue ``txn`` for invocation at ``client``.

        ``after`` lists transaction ids that must have *responded* before this
        transaction may be invoked — this is how experiments express the
        real-time orderings the paper's constructions rely on ("R1 begins
        after W completes").  Within one client, queued transactions are
        invoked in submission order (well-formedness).
        """
        if client not in self._client_queues:
            raise UnknownProcessError(client)
        if txn_id is None:
            txn_id = getattr(txn, "txn_id", None)
        if txn_id is None:
            txn_id = f"T{next(self._txn_counter)}"
        if txn_id in self._records:
            raise WellFormednessError(f"transaction id {txn_id!r} submitted twice")
        record = TransactionRecord(txn_id=txn_id, txn=txn, client=client, submitted_at=next(self._enqueue_counter))
        self._records[txn_id] = record
        self._txn_order.append(txn_id)
        queue = self._client_queues[client]
        queue.append(_QueuedTransaction(txn=txn, txn_id=txn_id, after=tuple(after)))
        if len(queue) == 1:
            self._watch_head(client)
        # A head waiting on this (previously unknown, hence trivially
        # satisfied) txn id must be re-blocked now that the dep is a real,
        # incomplete record.
        waiters = self._dep_waiters.get(txn_id)
        if waiters:
            for waiter in tuple(waiters):
                self._refresh_ready(waiter)
        return txn_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def transaction_record(self, txn_id: Any) -> Optional[TransactionRecord]:
        return self._records.get(txn_id)

    def transaction_records(self) -> Tuple[TransactionRecord, ...]:
        return tuple(self._records[t] for t in self._txn_order)

    def incomplete_transactions(self) -> Tuple[TransactionRecord, ...]:
        return tuple(r for r in self.transaction_records() if not r.complete)

    @property
    def steps_taken(self) -> int:
        return self._steps_taken

    def pending_deliveries(self) -> Tuple[PendingDelivery, ...]:
        """The in-flight messages (read-only view, enqueue order)."""
        return tuple(self._frontier.deliveries())

    def pending_timeouts(self) -> Tuple[PendingTimeout, ...]:
        """The armed-but-unfired timers (read-only view, arming order)."""
        return tuple(self._frontier.timeouts())

    def now(self) -> int:
        """The virtual clock timeouts are measured on.

        With a fault plane installed this is the plane's clock; without one
        it is the step counter, fast-forwarded at idle so pending timers
        still fire eventually (the asynchronous-model reading: a timeout is
        long compared to message delay, but finite).
        """
        if self.fault_plane is not None:
            return self.fault_plane.now(self)
        return max(self._steps_taken, self._timeout_clock)

    def has_pending_invocations(self) -> bool:
        """Whether any client invocation is currently enabled.

        O(1): the frontier's ready set is maintained by the dependency
        triggers (txn completion, head change, submit), not re-derived here.
        """
        return self._frontier.has_ready_invocation()

    def has_ripe_delivery(self, now: Optional[int] = None) -> bool:
        """Whether some pending delivery is deliverable at ``now`` (fault
        planes probe this instead of scanning :meth:`pending_deliveries`)."""
        return self._frontier.has_ripe_delivery(self.now() if now is None else now)

    def has_ripe_timeout(self, now: Optional[int] = None) -> bool:
        """Whether some armed timer is ripe at ``now``."""
        return self._frontier.has_ripe_timeout(self.now() if now is None else now)

    def next_delivery_boundary(self) -> Optional[int]:
        """Earliest ``ready_at`` among pending deliveries (``0`` = ripe now,
        ``None`` = none pending) — a heap peek, for fault-plane time jumps."""
        return self._frontier.next_delivery_ready()

    def next_timeout_boundary(self) -> Optional[int]:
        """Earliest ``ready_at`` among armed timers (``None`` = none armed)."""
        return self._frontier.next_timeout_ready()

    def extract_deliveries(self, predicate) -> List[PendingDelivery]:
        """Remove and return the pending deliveries matching ``predicate``.

        Used by fault planes to pull in-flight messages back out of the
        network (e.g. when their destination server crashes).  The reliable
        kernel never calls this itself.  Single pass: the predicate is
        evaluated once per delivery, and removal is O(1) per match.
        """
        taken = [d for d in self._frontier.deliveries() if predicate(d)]
        for delivery in taken:
            self._frontier.remove_delivery(delivery)
        if taken and self.obs is not None:
            for delivery in taken:
                self.obs.on_dequeue(delivery.message)
        return taken

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Record start actions and call ``on_start`` hooks (idempotent)."""
        if self._started:
            return
        self._started = True
        self.scheduler.reset()
        for name, automaton in self._automata.items():
            self.trace.append(Action.make(ActionKind.START, name))
            automaton.on_start(self._contexts[name])

    def pending_events(self) -> List[PendingEvent]:
        """The events the scheduler may choose from right now.

        Presented in the canonical order — deliveries in enqueue order, ripe
        timeouts in arming order, ready invocations in client-registration
        order — exactly as the pre-frontier per-step rebuild produced them.
        """
        return self._frontier.events(self.now)

    def step(self) -> bool:
        """Execute one scheduler-chosen event.  Returns ``False`` if idle."""
        self.start()
        profiler = self._profiler
        stamp = perf_counter() if profiler is not None else 0.0
        if self.fault_plane is not None:
            self.fault_plane.before_step(self)
        pending = self.pending_events()
        if not pending and self.fault_plane is not None and self.fault_plane.on_idle(self):
            pending = self.pending_events()
        if not pending and self.fault_plane is None and self._frontier.has_timeouts():
            # Idle but timers are armed: fast-forward to the earliest one
            # (with a fault plane installed, on_idle above does this jump
            # boundary-by-boundary so faults stay ordered with timers).
            earliest = self._frontier.next_timeout_ready()
            if earliest is not None:
                self._timeout_clock = max(self._timeout_clock, earliest)
                pending = self.pending_events()
        if profiler is not None:
            profiler.add("poll", perf_counter() - stamp)
        if not pending:
            return False
        if self._steps_taken >= self.max_steps:
            raise LivenessError(
                f"simulation exceeded max_steps={self.max_steps} with {len(pending)} pending events"
            )
        if profiler is not None:
            stamp = perf_counter()
        choice = self.scheduler.choose(pending, self)
        if profiler is not None:
            now = perf_counter()
            profiler.add("choose", now - stamp)
            stamp = now
        event = pending[choice]
        self._steps_taken += 1
        if isinstance(event, PendingDelivery):
            self._frontier.remove_delivery(event)
            if self.obs is not None:
                self.obs.on_dequeue(event.message)
            if event.flight:
                self._deliver_flight(event)
            else:
                self._deliver(event.message)
        elif isinstance(event, PendingTimeout):
            self._frontier.remove_timeout(event)
            self._fire_timeout(event)
        elif isinstance(event, PendingInvocation):
            queue = self._client_queues[event.client]
            if not queue or queue[0].txn_id != event.txn_id:
                raise SimulationError("scheduler chose a stale invocation event")
            queue.popleft()
            self._invoke(event.client, event.txn, event.txn_id)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown pending event {event!r}")
        if profiler is not None:
            profiler.add("dispatch", perf_counter() - stamp)
        return True

    def run(self, max_new_steps: Optional[int] = None) -> Trace:
        """Run until idle (or until ``max_new_steps`` more events executed).

        Without a budget the loop only stops when the system is idle or the
        kernel's ``max_steps`` guard trips (raising :class:`LivenessError`).
        """
        executed = 0
        while max_new_steps is None or executed < max_new_steps:
            if not self.step():
                break
            executed += 1
        return self.trace

    def run_to_completion(self) -> Trace:
        """Run until idle; raise :class:`LivenessError` if transactions remain."""
        self.run()
        incomplete = self.incomplete_transactions()
        if incomplete:
            names = ", ".join(str(r.txn_id) for r in incomplete)
            raise LivenessError(f"simulation went idle with incomplete transactions: {names}")
        return self.trace

    # ------------------------------------------------------------------
    # Internal machinery: sends, deliveries, sessions
    # ------------------------------------------------------------------
    def enqueue_delivery(self, message: Message, ready_at: int = 0) -> PendingDelivery:
        """Make ``message`` a pending delivery (the fault plane calls this).

        ``ready_at`` is the virtual-time stamp honoured by latency-aware
        schedulers; the reliable path always uses ``0``.
        """
        delivery = PendingDelivery(
            message=message, enqueued_at=next(self._enqueue_counter), ready_at=ready_at
        )
        self._frontier.add_delivery(delivery)
        if self._flight_collectors:
            self._flight_collectors[-1].append(delivery)
        if self.obs is not None:
            self.obs.on_enqueue(delivery)
        return delivery

    @contextmanager
    def flight_scope(self, per_destination: bool = False):
        """Batch the deliveries enqueued inside into kernel *flights*.

        A flight is delivered by a single scheduler event (see
        :meth:`_deliver_flight`), cutting per-message event overhead for
        quorum fan-out.  ``per_destination`` groups by recipient (one flight
        per destination — the fan-in shape) instead of one flight overall.
        Under a fault plane this is a no-op: latency/drop stamps are
        per-message, so joint delivery would reorder faults — batching
        silently degrades to ordinary per-message events.  Scopes nest;
        each delivery joins only the innermost open scope.
        """
        if self.fault_plane is not None:
            yield
            return
        collector: List[PendingDelivery] = []
        self._flight_collectors.append(collector)
        try:
            yield
        finally:
            self._flight_collectors.pop()
            self._assign_flights(collector, per_destination)

    def _assign_flights(self, collected: List[PendingDelivery], per_destination: bool) -> None:
        fresh = [d for d in collected if d.flight == 0]
        if per_destination:
            groups: Dict[str, List[PendingDelivery]] = {}
            for delivery in fresh:
                groups.setdefault(delivery.message.dst, []).append(delivery)
            batches: Iterable[List[PendingDelivery]] = groups.values()
        else:
            batches = [fresh]
        for batch in batches:
            if len(batch) < 2:
                continue  # a singleton gains nothing from a flight
            flight = next(self._flight_counter)
            for delivery in batch:
                self._frontier.reflight(delivery, flight)

    def _deliver_flight(self, event: PendingDelivery) -> None:
        """Deliver a whole flight in one kernel event.

        The chosen delivery lands first, then its remaining flight siblings
        in enqueue order.  Replies enqueued while the flight lands are
        themselves grouped per destination into fresh flights, so a quorum
        round's fan-in also costs one event per replica set.
        """
        siblings = self._frontier.take_flight(event.flight)
        with self.flight_scope(per_destination=True):
            self._deliver(event.message)
            for delivery in siblings:
                if self.obs is not None:
                    self.obs.on_dequeue(delivery.message)
                self._deliver(delivery.message)

    def set_timeout(self, owner: str, delay: int, info: Mapping[str, Any]) -> PendingTimeout:
        """Arm a timer for ``owner`` to fire ``delay`` virtual-time steps from
        now (used through ``Context.set_timeout``)."""
        if owner not in self._automata:
            raise UnknownProcessError(owner)
        timeout = PendingTimeout(
            owner=owner,
            info=dict(info),
            enqueued_at=next(self._enqueue_counter),
            ready_at=self.now() + max(1, int(delay)),
        )
        self._frontier.add_timeout(timeout)
        return timeout

    def reschedule_timeout(self, timeout: PendingTimeout, ready_at: int) -> PendingTimeout:
        """Re-arm a (suppressed) timeout at a later virtual time — fault
        planes use this to defer a crashed owner's timer to its recovery."""
        later = PendingTimeout(
            owner=timeout.owner,
            info=timeout.info,
            enqueued_at=next(self._enqueue_counter),
            ready_at=max(int(ready_at), timeout.ready_at),
        )
        self._frontier.add_timeout(later)
        return later

    def _fire_timeout(self, timeout: PendingTimeout) -> None:
        if self.fault_plane is not None and self.fault_plane.suppress_timeout(timeout, self):
            return
        self.trace.append(internal_action(timeout.owner, {"timeout": True, **dict(timeout.info)}))
        self.automaton(timeout.owner).on_timeout(dict(timeout.info), self._contexts[timeout.owner])

    def _send_from(
        self, src: str, dst: str, msg_type: str, payload: Mapping[str, Any], phase: str = ""
    ) -> Message:
        self.topology.check_send(src, dst)
        message = Message.make(msg_type, src, dst, payload)
        info = {"phase": phase} if phase else None
        self.trace.append(send_action(message, info))
        if self.fault_plane is None:
            self.enqueue_delivery(message)
        else:
            self.fault_plane.on_send(message, self)
        session = self._sessions.get(src)
        if session is not None:
            session.sends += 1
            record = self._records.get(session.txn_id)
            if record is not None:
                record.messages_sent += 1
        return message

    def _record_internal(self, actor: str, info: Mapping[str, Any]) -> None:
        self.trace.append(internal_action(actor, info))

    def annotate_transaction(self, txn_id: Any, fields: Mapping[str, Any]) -> None:
        """Attach metadata to a transaction record (public form used by
        automaton contexts and fault planes).  ``_accumulate: True`` in
        ``fields`` adds numeric values onto existing keys instead of
        overwriting."""
        self._annotate_transaction(txn_id, fields)

    def _annotate_transaction(self, txn_id: Any, fields: Mapping[str, Any]) -> None:
        record = self._records.get(txn_id)
        if record is None:
            return
        fields = dict(fields)
        accumulate = bool(fields.pop("_accumulate", False))
        for key, value in fields.items():
            if (
                accumulate
                and key in record.annotations
                and isinstance(record.annotations[key], (int, float))
                and isinstance(value, (int, float))
            ):
                record.annotations[key] += value
            else:
                record.annotations[key] = value

    def _deliver(self, message: Message) -> None:
        dst = message.dst
        if self.fault_plane is not None and self.fault_plane.suppress_delivery(message, self):
            # A duplicated (or redundantly retransmitted) copy: the delivery
            # consumed a scheduler step but the automaton keeps at-most-once
            # processing, and no trace action is recorded so that the SNOW
            # checkers see exactly the protocol-level exchange.
            return
        automaton = self.automaton(dst)
        session = self._sessions.get(dst)
        info: Dict[str, Any] = {}
        if session is not None and session.matches(message):
            info["session"] = str(session.txn_id)
            self.trace.append(recv_action(message, info))
            session.collected.append(message)
            if session.ready():
                self._resume_session(session)
            return
        self.trace.append(recv_action(message, info or None))
        ctx = self._contexts[dst]
        if isinstance(automaton, ClientAutomaton) and not automaton.unmatched_goes_to_handler():
            return
        automaton.on_message(message, ctx)

    # -- dependency-triggered invocation readiness ----------------------
    def _watch_head(self, client: str) -> None:
        """Re-point dependency tracking at ``client``'s current queue head
        and re-evaluate its readiness.  Called whenever the head changes."""
        self._unwatch_deps(client)
        queue = self._client_queues.get(client)
        if queue:
            head = queue[0]
            if head.after:
                self._head_deps[client] = head.after
                for dep in head.after:
                    self._dep_waiters.setdefault(dep, set()).add(client)
        self._refresh_ready(client)

    def _unwatch_deps(self, client: str) -> None:
        old = self._head_deps.pop(client, None)
        if old:
            for dep in old:
                waiters = self._dep_waiters.get(dep)
                if waiters is not None:
                    waiters.discard(client)
                    if not waiters:
                        del self._dep_waiters[dep]

    def _refresh_ready(self, client: str) -> None:
        """Recompute whether ``client``'s queue head is invocable and update
        the frontier's ready set accordingly."""
        order = self._client_order.get(client)
        if order is None:
            return
        queue = self._client_queues.get(client)
        if not queue or client in self._sessions:
            self._frontier.clear_ready(order, client)
            return
        head = queue[0]
        records = self._records
        if all(records[dep].complete for dep in head.after if dep in records):
            self._frontier.set_ready(
                order,
                PendingInvocation(
                    client=client,
                    txn=head.txn,
                    txn_id=head.txn_id,
                    enqueued_at=records[head.txn_id].submitted_at,
                ),
            )
        else:
            self._frontier.clear_ready(order, client)

    def _invoke(self, client: str, txn: Any, txn_id: Any) -> None:
        automaton = self.automaton(client)
        if not isinstance(automaton, ClientAutomaton):
            raise WellFormednessError(f"{client!r} is not a client automaton; cannot invoke transactions on it")
        if client in self._sessions:
            raise WellFormednessError(f"client {client!r} already has an outstanding transaction")
        record = self._records[txn_id]
        action = self.trace.append(
            invoke_action(client, {"txn": str(txn_id), "txn_kind": getattr(txn, "kind", "txn")})
        )
        record.invoke_index = action.index
        if self.fault_plane is not None:
            record.invoke_vtime = self.fault_plane.now(self)
        ctx = self._contexts[client]
        generator = automaton.run_transaction(txn, ctx)
        session = SessionState(txn=txn, txn_id=txn_id, client=client, generator=generator)
        self._sessions[client] = session
        # The invoked txn left the queue: watch the next head (it cannot be
        # ready while this session runs — one outstanding txn per client).
        self._watch_head(client)
        self._advance_session(session, None)

    def _resume_session(self, session: SessionState) -> None:
        pending = session.pending_await
        collected = list(session.collected)
        session.pending_await = None
        session.collected = []
        if pending is not None and pending.counts_as_round:
            if any(self.topology.is_server(m.src) for m in collected):
                session.rounds += 1
                record = self._records.get(session.txn_id)
                if record is not None:
                    record.rounds = session.rounds
        self._advance_session(session, collected)

    def _advance_session(self, session: SessionState, send_value: Any) -> None:
        generator = session.generator
        try:
            while True:
                # ``send(None)`` starts a fresh generator; subsequent resumes
                # pass the list of messages collected by the pending Await.
                effect = generator.send(send_value)
                send_value = None
                if isinstance(effect, Send):
                    self._send_from(session.client, effect.dst, effect.msg_type, effect.payload, effect.phase)
                    continue
                if isinstance(effect, SendBatch):
                    with self.flight_scope():
                        for send in effect.sends:
                            self._send_from(
                                session.client, send.dst, send.msg_type, send.payload, send.phase
                            )
                    continue
                if isinstance(effect, Mark):
                    self._record_internal(session.client, dict(effect.info))
                    continue
                if isinstance(effect, Await):
                    session.pending_await = effect
                    return
                raise SessionError(
                    f"session for {session.txn_id!r} yielded unsupported effect {effect!r}"
                )
        except StopIteration as stop:
            self._finish_session(session, stop.value)

    def _finish_session(self, session: SessionState, result: Any) -> None:
        if session.finished:
            raise SessionError(f"transaction {session.txn_id!r} completed twice")
        session.finished = True
        session.result = result
        record = self._records[session.txn_id]
        action = self.trace.append(
            respond_action(session.client, {"txn": str(session.txn_id), "result": _freeze_result(result)})
        )
        record.respond_index = action.index
        record.result = result
        record.rounds = session.rounds
        if self.fault_plane is not None:
            record.respond_vtime = self.fault_plane.now(self)
        self._sessions.pop(session.client, None)
        # Completion triggers: wake the heads waiting on this txn (the dep
        # is complete for good, so the reverse-index entry can be dropped)
        # and re-evaluate this client's own next head.
        waiters = self._dep_waiters.pop(session.txn_id, None)
        if waiters:
            for waiter in tuple(waiters):
                self._refresh_ready(waiter)
        self._refresh_ready(session.client)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"Simulation: {len(self._automata)} automata, {len(self.trace)} actions, "
            f"{len(self._records)} transactions ({len(self.incomplete_transactions())} incomplete)",
            self.topology.describe(),
        ]
        for record in self.transaction_records():
            lines.append("  " + record.describe())
        return "\n".join(lines)


def _freeze_result(result: Any) -> Any:
    """Make transaction results safe to embed in immutable action info."""
    if isinstance(result, dict):
        return tuple(sorted(result.items()))
    if isinstance(result, list):
        return tuple(result)
    return result
