"""The fault injector: a :class:`~repro.ioa.network.FaultPlane` implementation.

The injector sits between every ``send`` and the kernel's pending-delivery
set and enforces the active :class:`~repro.faults.plan.FaultPlan`:

* messages crossing an active partition, or addressed to a crashed server,
  are *held* in the injector's transport buffer and released when the
  partition heals / the server recovers (never, if the fault is permanent);
* messages may be dropped (and scheduled for retransmission under the plan's
  retry policy) or duplicated;
* surviving copies are stamped with a sampled virtual-time latency
  (``PendingDelivery.ready_at``) that the chaos scheduler honours.

Two invariants keep the rest of the repository sound:

* **At-most-once processing** — every admitted copy of a message carries the
  original ``msg_id``; the first delivery registers it and later copies are
  suppressed (they consume a scheduler step but record no trace action and
  never reach the automaton), so protocols written for reliable channels
  need no dedup logic and the SNOW checkers see exactly the protocol-level
  exchange.
* **Determinism** — all randomness comes from one private RNG seeded from
  ``(plan.seed, injector seed)``; the same plan, seed and scheduler always
  produce the same execution, so every chaos failure is replayable.

The virtual clock is the kernel step counter, fast-forwarded when the system
would otherwise idle with timers outstanding (:meth:`FaultInjector.on_idle`)
— exactly like a discrete-event simulator jumping to the next timer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..ioa.actions import Message, internal_action
from ..ioa.errors import UnknownProcessError
from ..ioa.network import FaultPlane
from .plan import FaultPlan


@dataclass
class FaultStats:
    """Counters of everything the injector did to the network."""

    sent: int = 0
    delivered_copies: int = 0
    dropped: int = 0
    duplicated: int = 0
    duplicates_suppressed: int = 0
    retransmissions: int = 0
    held_by_partition: int = 0
    held_by_crash: int = 0
    abandoned: int = 0
    crashes: int = 0
    recoveries: int = 0

    def describe(self) -> str:
        return (
            f"faults: sent={self.sent} delivered={self.delivered_copies} dropped={self.dropped} "
            f"retransmitted={self.retransmissions} duplicated={self.duplicated} "
            f"(suppressed={self.duplicates_suppressed}) partition-held={self.held_by_partition} "
            f"crash-held={self.held_by_crash} abandoned={self.abandoned} "
            f"crashes={self.crashes} recoveries={self.recoveries}"
        )

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class _HeldMessage:
    """A message parked in the injector's transport buffer."""

    message: Message
    release_at: Optional[int]  # None = never (permanent partition / fail-stop)
    reason: str  # "partition" | "crash" | "retransmit"
    attempts: int = 1


class FaultInjector(FaultPlane):
    """Stateful enforcement of one :class:`FaultPlan` over one simulation."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self.stats = FaultStats()
        self._rng = random.Random(((plan.seed & 0xFFFFFFFF) << 17) ^ (seed & 0x1FFFF) ^ 0x5EED)
        self._held: List[_HeldMessage] = []
        self._delivered_ids: Set[int] = set()
        self._drop_streak: Dict[int, int] = {}  # msg_id -> consecutive drops
        self._virtual_now = 0
        self._crashed: Set[str] = set()
        self._crash_onset: Dict[str, int] = {}  # server -> when its current outage began
        self._removed: Set[str] = set()  # retired mid-run (reconfiguration)
        self._attached = False
        self._names_validated = False

    # ------------------------------------------------------------------
    # FaultPlane interface
    # ------------------------------------------------------------------
    def on_attach(self, kernel: Any) -> None:
        if self._attached:
            raise RuntimeError(
                "a FaultInjector is single-use: build a fresh one per simulation "
                "(its RNG and transport buffers are execution state)"
            )
        self._attached = True

    def now(self, kernel: Any) -> int:
        return max(int(kernel.steps_taken), self._virtual_now)

    def advance_to(self, step: int) -> None:
        self._virtual_now = max(self._virtual_now, int(step))

    def on_send(self, message: Message, kernel: Any) -> None:
        self.stats.sent += 1
        self._admit(message, kernel, attempts=1)

    def before_step(self, kernel: Any) -> None:
        if not self._names_validated:
            self._validate_plan_names(kernel)
            self._names_validated = True
        self._advance_through_boundaries(kernel)

    def _validate_plan_names(self, kernel: Any) -> None:
        """Fail loudly if the plan targets processes the system doesn't have.

        A crash schedule or partition naming a non-existent automaton would
        otherwise be a silent no-op (the fault "happens" but touches no
        traffic) — a misconfiguration that looks like a healthy run.  Checked
        on the first step because automata are registered after construction.
        """
        known = {automaton.name: automaton for automaton in kernel.automata()}
        for crash in self.plan.crashes:
            if crash.server not in known:
                raise UnknownProcessError(crash.server)
            if not crash.preserve_state and not hasattr(known[crash.server], "forget"):
                from ..ioa.errors import SimulationError

                raise SimulationError(
                    f"crash plan marks {crash.server!r} as crash-with-amnesia "
                    f"(preserve_state=False) but {type(known[crash.server]).__name__} "
                    "has no forget() hook to reset volatile state"
                )
        for partition in self.plan.partitions:
            for name in (*partition.left, *partition.right):
                if name not in known:
                    raise UnknownProcessError(name)

    def on_idle(self, kernel: Any) -> bool:
        return self._advance_through_boundaries(kernel)

    def _advance_through_boundaries(self, kernel: Any) -> bool:
        """Apply fault transitions in virtual-time order until work is ripe.

        Virtual time may only jump *boundary by boundary*: the next crash
        onset or recovery, the next transport timer (retransmit / partition
        heal), the next in-flight arrival — whichever comes first.  Jumping
        straight to a delivery's arrival stamp would let a message reach a
        server whose crash was scheduled earlier in virtual time.  Each
        boundary is applied (crash sweeps, recoveries, timer releases)
        before the clock moves past it; the loop returns once some pending
        event is ripe at the current clock, or goes quiescent (permanently
        held messages stay parked and their transactions count as
        unavailable).  Returns whether the kernel has pending events now.
        """
        while True:
            now = self.now(kernel)
            self._apply_crash_transitions(kernel, now)
            self._release_due(kernel, now)
            if (
                kernel.has_pending_invocations()
                or kernel.has_ripe_delivery(now)
                or kernel.has_ripe_timeout(now)
            ):
                return True
            # Nothing is ripe: every pending delivery / armed timer has
            # ready_at > now, so the earliest of each (heap peeks on the
            # kernel's frontier, not full scans) bounds the next jump.
            boundaries = []
            earliest = kernel.next_delivery_boundary()
            if earliest is not None:
                boundaries.append(earliest)
            earliest = kernel.next_timeout_boundary()
            if earliest is not None:
                boundaries.append(earliest)
            boundaries.extend(
                h.release_at for h in self._held if h.release_at is not None and h.release_at > now
            )
            for crash in self.plan.crashes:
                boundaries.extend(
                    t for t in (crash.at, crash.recover) if t is not None and t > now
                )
            if not boundaries:
                return False
            self.advance_to(min(boundaries))

    def suppress_delivery(self, message: Message, kernel: Any) -> bool:
        if message.msg_id in self._delivered_ids:
            self.stats.duplicates_suppressed += 1
            return True
        self._delivered_ids.add(message.msg_id)
        return False

    def suppress_timeout(self, timeout: Any, kernel: Any) -> bool:
        """A crashed owner's timer must not fire mid-outage.

        Fail-recover: the timer is deferred to the recovery boundary (the
        owner re-evaluates its timers with recovered state).  Fail-stop: the
        timer dies with the server.
        """
        release = self._crash_release(timeout.owner, self.now(kernel))
        if release is _NOT_BLOCKED:
            return False
        if release is not None:
            kernel.reschedule_timeout(timeout, release)
        return True

    def describe(self) -> str:
        return f"FaultInjector({self.plan.describe()}; {self.stats.describe()})"

    def on_remove(self, name: str, kernel: Any) -> None:
        """Drop all transport state for a retired automaton.

        Mail held for it — in either direction: parked messages *from* a
        retired process must die with it too, or their receivers would reply
        to a ghost — is discarded, and the name is excluded from future
        crash transitions so a crash event outliving the retirement neither
        sweeps nor "recovers" a ghost.
        """
        self._held = [
            h for h in self._held if h.message.dst != name and h.message.src != name
        ]
        self._crashed.discard(name)
        self._crash_onset.pop(name, None)
        self._removed.add(name)

    # ------------------------------------------------------------------
    # Admission pipeline
    # ------------------------------------------------------------------
    def _admit(self, message: Message, kernel: Any, attempts: int) -> None:
        """Run one delivery attempt of ``message`` through the fault pipeline."""
        now = self.now(kernel)

        release = self._partition_release(message.src, message.dst, now)
        if release is not _NOT_BLOCKED:
            self.stats.held_by_partition += 1
            self._held.append(_HeldMessage(message, release, "partition", attempts))
            return

        release = self._crash_release(message.dst, now)
        if release is not _NOT_BLOCKED:
            self.stats.held_by_crash += 1
            self._held.append(_HeldMessage(message, release, "crash", attempts))
            return

        if self._should_drop(message, now):
            self.stats.dropped += 1
            retry = self.plan.retry
            if retry is None or attempts >= retry.max_attempts:
                self._abandon(message, kernel)
            else:
                self._held.append(
                    _HeldMessage(message, now + retry.timeout_steps, "retransmit", attempts + 1)
                )
            return

        self._drop_streak.pop(message.msg_id, None)
        self._enqueue_copy(message, kernel, now)
        duplicates = self.plan.duplicates
        if duplicates is not None and self._rng.random() < duplicates.probability:
            self.stats.duplicated += 1
            self._enqueue_copy(message, kernel, now)

    def _enqueue_copy(self, message: Message, kernel: Any, now: int) -> None:
        delay = self.plan.latency.sample(self._rng) if self.plan.latency is not None else 0
        kernel.enqueue_delivery(message, ready_at=now + delay if delay else 0)
        self.stats.delivered_copies += 1

    def _should_drop(self, message: Message, now: int) -> bool:
        drops = self.plan.drops
        if drops is None or drops.probability <= 0.0:
            return False
        streak = self._drop_streak.get(message.msg_id, 0)
        if streak >= drops.max_consecutive:
            return False  # fair loss: this attempt is forced through
        if self._rng.random() < drops.probability:
            self._drop_streak[message.msg_id] = streak + 1
            return True
        return False

    def _abandon(self, message: Message, kernel: Any) -> None:
        self.stats.abandoned += 1
        txn = message.get("txn")
        if txn is not None:
            kernel.annotate_transaction(txn, {"abandoned_messages": 1, "_accumulate": True})

    # ------------------------------------------------------------------
    # Blocking conditions
    # ------------------------------------------------------------------
    def _partition_release(self, src: str, dst: str, now: int) -> Any:
        """Earliest step at which the link is open again, or ``_NOT_BLOCKED``.

        With several overlapping partition windows the message must outlive
        all of them, so the release time is the latest finite heal; any
        permanent blocking window means the message is held forever (None).
        """
        release: Any = _NOT_BLOCKED
        for partition in self.plan.partitions:
            if not partition.blocks(src, dst, now):
                continue
            if partition.heal is None:
                return None
            release = partition.heal if release is _NOT_BLOCKED else max(release, partition.heal)
        return release

    def _crash_release(self, dst: str, now: int) -> Any:
        """Latest recovery of ``dst`` if it is currently crashed."""
        release: Any = _NOT_BLOCKED
        for crash in self.plan.crashes:
            if crash.server != dst or not crash.crashed(now):
                continue
            if crash.recover is None:
                return None
            release = crash.recover if release is _NOT_BLOCKED else max(release, crash.recover)
        return release

    # ------------------------------------------------------------------
    # Timers and transitions
    # ------------------------------------------------------------------
    def _apply_crash_transitions(self, kernel: Any, now: int) -> None:
        """Track crash onsets/recoveries; sweep in-flight messages on onset.

        A crash takes effect at the step boundary: in-flight deliveries
        addressed to the newly-crashed server are pulled back out of the
        network into the transport buffer (held until recovery).  Transitions
        are recorded as internal actions so traces stay self-describing.
        """
        currently = {
            c.server for c in self.plan.crashes if c.crashed(now) and c.server not in self._removed
        }
        for server in sorted(currently - self._crashed):
            self.stats.crashes += 1
            self._crash_onset[server] = now
            kernel.trace.append(internal_action(server, {"fault": "crash"}))
            release = self._crash_release(server, now)
            for delivery in kernel.extract_deliveries(lambda d, s=server: d.message.dst == s):
                self.stats.held_by_crash += 1
                self._held.append(_HeldMessage(delivery.message, release, "crash"))
        for server in sorted(self._crashed - currently):
            self.stats.recoveries += 1
            kernel.trace.append(internal_action(server, {"fault": "recover"}))
            onset = self._crash_onset.pop(server, 0)
            if any(
                crash.server == server
                and not crash.preserve_state
                and crash.at < now
                and (crash.recover is None or crash.recover > onset)
                for crash in self.plan.crashes
            ):
                # Crash-with-amnesia: an amnesiac crash window intersected
                # the outage that just ended (events covering only earlier,
                # fully-recovered outages do not count).  The volatile state
                # was lost at the onset; the loss becomes observable now, so
                # reset the automaton at the recovery boundary and record it.
                # Amnesia only wipes *volatile* state: an automaton with a
                # stable store attached reloads its durable state inside
                # ``forget()`` and the record says so.
                automaton = kernel.automaton(server)
                automaton.forget()
                info = {"fault": "amnesia"}
                if getattr(automaton, "stable_store", None) is not None:
                    info["durable"] = "recovered"
                kernel.trace.append(internal_action(server, info))
        self._crashed = currently

    def _release_due(self, kernel: Any, now: int) -> None:
        """Re-admit every held message whose timer has expired."""
        due: List[_HeldMessage] = []
        keep: List[_HeldMessage] = []
        for held in self._held:
            (due if held.release_at is not None and held.release_at <= now else keep).append(held)
        if not due:
            return
        self._held = keep
        for held in due:
            if held.reason == "retransmit":
                self.stats.retransmissions += 1
                txn = held.message.get("txn")
                if txn is not None:
                    kernel.annotate_transaction(txn, {"retransmissions": 1, "_accumulate": True})
            self._admit(held.message, kernel, attempts=held.attempts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def held_messages(self) -> Tuple[Message, ...]:
        """Messages currently parked in the transport buffer."""
        return tuple(h.message for h in self._held)

    def crashed_servers(self) -> Tuple[str, ...]:
        return tuple(sorted(self._crashed))


#: Sentinel distinguishing "link not blocked" from "blocked forever" (None).
_NOT_BLOCKED: Any = object()
