"""The fault-aware adversary: adversarial ordering *under* network faults.

The repository has two adversary families: the rule-driven
:class:`~repro.ioa.scheduler.AdversarialScheduler` (the paper's impossibility
constructions — reorder, never lose) and the fault plane (lose, delay,
partition — but order at random).  ``ChaosScheduler(base=AdversarialScheduler)``
composes them, and this module actually *drives* the composition: S-violation
hunts that order events adversarially while the fault plan drops and delays
them — the strictly stronger adversary real systems face.

The canonical hunt target is the naive latest-value protocol: the classic
fracture schedule (deliver a READ's request to one shard after a concurrent
WRITE installed there, to the other before) breaks S on reliable channels
already; under drops the same rules keep working because retransmission makes
every delivery *eventually* orderable — which is exactly the composition
property these experiments pin down, and what the S-protocols (algorithms
A/B/C) must survive.

``make_scheduler("chaos+adversarial", seed)`` builds the neutral composition
(random base, no rules) for config-addressed experiments; the helpers here
add targeted rules on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ioa.scheduler import (
    AdversarialScheduler,
    DelayRule,
    RandomScheduler,
    Scheduler,
    holds_message,
    until_message_delivered,
    until_transaction_done,
)
from .chaos import ChaosScheduler
from .plan import FaultPlan
from .scenarios import lossy_network


def chaos_adversarial_scheduler(
    seed: int = 0,
    rules: Sequence[DelayRule] = (),
    base: Optional[Scheduler] = None,
) -> ChaosScheduler:
    """A chaos scheduler whose base policy is a rule-driven adversary.

    The chaos layer honours the fault plan's virtual arrival times (so drops,
    retransmissions and latency happen as planned); among the ripe events the
    adversary's rules pick the most hostile ordering.
    """
    adversary = AdversarialScheduler(
        rules=list(rules), base=base or RandomScheduler(seed=seed)
    )
    return ChaosScheduler(base=adversary, seed=seed)


def fracture_rules(read_id: str, write_id: str, late_server: str, early_server: str) -> List[DelayRule]:
    """The fractured-read schedule, as reusable delay rules.

    Hold the READ's request at ``late_server`` until the concurrent WRITE
    installed there (the read sees the *new* value), and hold the WRITE's
    install at ``early_server`` until the READ finished (the read saw the
    *old* value there) — no serial order explains the pair.
    """
    return [
        DelayRule(
            name=f"read-at-{late_server}-after-write-installed",
            holds=holds_message(dst=late_server, predicate=lambda m, r=read_id: m.get("txn") == r),
            until=until_message_delivered("write-val", dst=late_server),
        ),
        DelayRule(
            name=f"write-at-{early_server}-after-read-done",
            holds=holds_message(dst=early_server, predicate=lambda m, w=write_id: m.get("txn") == w),
            until=until_transaction_done(read_id),
        ),
    ]


@dataclass
class HuntResult:
    """Outcome of one S-violation hunt run."""

    protocol: str
    seed: int
    consistent: bool
    property_string: str
    retransmissions: int = 0

    def describe(self) -> str:
        verdict = "consistent" if self.consistent else "S VIOLATED"
        return (
            f"{self.protocol} seed={self.seed}: {verdict} ({self.property_string}, "
            f"retransmissions={self.retransmissions})"
        )


@dataclass
class Hunt:
    """Aggregated results of an S-violation hunt across seeds."""

    results: List[HuntResult] = field(default_factory=list)

    def violations(self) -> Tuple[HuntResult, ...]:
        return tuple(r for r in self.results if not r.consistent)

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(f"total: {len(self.violations())}/{len(self.results)} runs violated S")
        return "\n".join(lines)


def hunt_s_violations(
    protocol_names: Sequence[str] = ("naive-snow", "algorithm-b"),
    plan: Optional[FaultPlan] = None,
    seeds: Sequence[int] = (0, 1, 2),
) -> Hunt:
    """Drive the fracture adversary under a fault plan, per protocol and seed.

    Each run issues one multi-object WRITE racing one multi-object READ and
    lets the composed ``chaos+adversarial`` scheduler order the (dropped,
    retransmitted, delayed) deliveries with the fracture rules active.  The
    naive latest-value candidate loses S on essentially every seed; the
    paper's algorithms must not, drops or no drops — that asymmetry is the
    experiment's point.
    """
    from ..protocols.registry import get_protocol

    plan = plan if plan is not None else lossy_network()
    hunt = Hunt()
    for protocol_name in protocol_names:
        for seed in seeds:
            protocol = get_protocol(protocol_name)
            scheduler = chaos_adversarial_scheduler(seed=seed)
            handle = protocol.build(
                num_readers=1,
                num_writers=1,
                num_objects=2,
                scheduler=scheduler,
                seed=seed,
                fault_plane=_injector(plan, seed),
            )
            write_id = handle.submit_write(
                {obj: f"new-{obj}" for obj in handle.objects}, writer=handle.writers[0]
            )
            read_id = handle.submit_read(handle.objects)
            late, early = handle.servers[0], handle.servers[-1]
            scheduler.base.rules.extend(fracture_rules(read_id, write_id, late, early))
            handle.run()
            report = handle.snow_report()
            faults = handle.simulation.fault_plane
            hunt.results.append(
                HuntResult(
                    protocol=protocol_name,
                    seed=seed,
                    consistent=report.satisfies_s,
                    property_string=report.property_string(),
                    retransmissions=faults.stats.retransmissions if faults is not None else 0,
                )
            )
    return hunt


def _injector(plan: FaultPlan, seed: int):
    from .injector import FaultInjector

    return FaultInjector(plan.with_seed(seed), seed=seed)
