"""The chaos scheduler: asynchrony biased by the active fault plan.

The repository's other schedulers pick among pending events with no notion of
*when* a message would plausibly arrive.  The chaos scheduler honours the
``ready_at`` virtual-time stamps the fault injector assigns from its latency
model: an event is *ripe* once its stamp is at or before the fault plane's
virtual clock, and the base policy picks among ripe events only.  The clock
itself is advanced by the injector's ``before_step`` — boundary by boundary,
so crash onsets and transport timers fire in virtual-time order before any
later arrival is ripe — a discrete-event simulator's "advance to next timer"
jump done where the fault schedule can see it.

Without a fault plane (or with an inert plan) every stamp is ``0``, so the
chaos scheduler degrades *exactly* to its base policy — the golden-trace
guarantee the determinism tests pin down.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..ioa.scheduler import PendingEvent, RandomScheduler, Scheduler


def _ready_at(event: PendingEvent) -> int:
    """Virtual-time stamp of an event (invocations are always ripe)."""
    return getattr(event, "ready_at", 0)


class ChaosScheduler(Scheduler):
    """Pick among ripe events with a base policy; fast-forward when none are.

    ``base`` defaults to a seeded :class:`RandomScheduler` — chaos testing
    wants schedule diversity on top of fault timing — but any scheduler
    (including the adversarial one) can be plugged in, which is how "drop
    messages *and* order them adversarially" experiments are built.
    """

    def __init__(self, base: Optional[Scheduler] = None, seed: int = 0) -> None:
        self.seed = seed
        self.base = base if base is not None else RandomScheduler(seed=seed)

    def reset(self) -> None:
        self.base.reset()

    def choose(self, pending: Sequence[PendingEvent], kernel: Any) -> int:
        if not pending:
            return self.validate_choice(0, pending)  # raises the standard error
        plane = getattr(kernel, "fault_plane", None)
        now = plane.now(kernel) if plane is not None else int(kernel.steps_taken)
        ripe = [i for i in range(len(pending)) if _ready_at(pending[i]) <= now]
        obs = getattr(kernel, "obs", None)
        if obs is not None:
            # Cheap ripeness telemetry for the observability plane: how much
            # of the pending set the latency model made choosable this step.
            obs.registry.counter("scheduler.chaos_steps").inc()
            obs.registry.counter("scheduler.chaos_ripe_events").inc(len(ripe))
            if not ripe:
                obs.registry.counter("scheduler.chaos_fastforwards").inc()
                health = getattr(obs, "health", None)
                if health is not None:
                    # A fast-forward means the latency model stalled every
                    # pending delivery past "now" — the health plane counts it
                    # toward the rolling stall rate.
                    health.note_stall(now)
        if not ripe:
            # Nothing deliverable yet.  With a fault injector installed this
            # is unreachable: its before_step advances the virtual clock
            # boundary-by-boundary (crash onsets included) until something is
            # ripe.  Without one there is no fault schedule to respect, so
            # simply execute the earliest arrival (oldest among ties) —
            # crucially *not* by advancing any clock past unapplied faults.
            choice = min(
                range(len(pending)), key=lambda i: (_ready_at(pending[i]), pending[i].enqueued_at)
            )
            return self.validate_choice(choice, pending)
        sub = [pending[i] for i in ripe]
        return self.validate_choice(ripe[self.base.choose(sub, kernel)], pending)
