"""Declarative fault plans: what can go wrong, when, and how badly.

The paper's model (Section 2) assumes reliable asynchronous channels, so the
rest of the repository can only exercise adversarial *orderings*.  A
:class:`FaultPlan` describes the regime real systems live in instead:

* **latency models** — every delivery is stamped with a sampled virtual-time
  delay, which the chaos scheduler honours;
* **drop / duplicate policies** — per-message loss and duplication
  probabilities (fair-loss: a bounded number of consecutive drops of the same
  message, so retransmission guarantees eventual delivery);
* **link partitions** — bidirectional blocks between two groups of processes
  over a step window, with an optional heal time;
* **server crash/recover schedules** — fail-recover servers (state survives;
  messages addressed to a crashed server are held by the transport and
  redelivered after recovery, or lost forever if it never recovers);
* **a retry policy** — the transport-level timeout/retransmission wrapper
  that stands in for the per-client retry loops of a real system, so
  protocols written for reliable channels survive drops unchanged.

Everything is a frozen dataclass and fully determined by ``seed``: the same
plan and seed always produce the same faults, so every chaos experiment is
replayable — the property the whole repository is built on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional, Tuple


# ----------------------------------------------------------------------
# Latency models
# ----------------------------------------------------------------------
class LatencyModel:
    """Base class: sample a non-negative delivery delay in kernel steps."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Every message takes exactly ``steps`` steps of virtual time."""

    steps: int = 1

    def sample(self, rng: random.Random) -> int:
        return max(0, int(self.steps))

    def describe(self) -> str:
        return f"fixed({self.steps})"


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]`` steps."""

    low: int = 0
    high: int = 4

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"uniform latency needs 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def describe(self) -> str:
        return f"uniform[{self.low},{self.high}]"


@dataclass(frozen=True)
class BimodalLatency(LatencyModel):
    """Mostly ``fast``, occasionally ``slow`` — the tail-latency shape.

    ``slow_probability`` is the chance a message lands in the slow mode;
    this is the model that makes "p95 under fault" a meaningful number.
    """

    fast: int = 1
    slow: int = 12
    slow_probability: float = 0.1

    def __post_init__(self) -> None:
        if not (0.0 <= self.slow_probability <= 1.0):
            raise ValueError(f"slow_probability must be in [0, 1], got {self.slow_probability}")

    def sample(self, rng: random.Random) -> int:
        return max(0, int(self.slow if rng.random() < self.slow_probability else self.fast))

    def describe(self) -> str:
        return f"bimodal(fast={self.fast}, slow={self.slow}@{self.slow_probability})"


# ----------------------------------------------------------------------
# Loss, duplication, retry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DropPolicy:
    """Fair-loss channel: drop each delivery attempt with ``probability``.

    ``max_consecutive`` bounds how many times in a row the *same* message may
    be dropped; after that the attempt is forced through.  This is the
    fair-loss assumption that makes timeout + retransmission a correct
    reliability layer rather than a gamble.
    """

    probability: float = 0.1
    max_consecutive: int = 5

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"drop probability must be in [0, 1], got {self.probability}")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")

    def describe(self) -> str:
        return f"drop(p={self.probability}, fair-loss after {self.max_consecutive})"


@dataclass(frozen=True)
class DuplicatePolicy:
    """Deliver an extra copy of a message with ``probability``.

    The kernel's fault plane deduplicates at the receiving automaton, so a
    duplicate costs a scheduler step (an observable latency/throughput tax)
    without breaking the protocols' exactly-once processing assumption.
    """

    probability: float = 0.1

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"duplicate probability must be in [0, 1], got {self.probability}")

    def describe(self) -> str:
        return f"duplicate(p={self.probability})"


@dataclass(frozen=True)
class RetryPolicy:
    """Transport-level timeout/retransmission standing in for client retries.

    A *dropped* message is retransmitted ``timeout_steps`` of virtual time
    later, up to ``max_attempts`` total attempts; after that the message is
    abandoned and its transaction counts against availability.  Messages held
    by a partition or a crashed destination are *not* retried — the transport
    parks them and redelivers on heal/recovery (forever parked, and the
    transaction unavailable, if the fault is permanent).
    """

    timeout_steps: int = 12
    max_attempts: int = 8

    def __post_init__(self) -> None:
        if self.timeout_steps < 1:
            raise ValueError("timeout_steps must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def describe(self) -> str:
        return f"retry(timeout={self.timeout_steps}, max_attempts={self.max_attempts})"


# ----------------------------------------------------------------------
# Partitions and crashes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Partition:
    """A bidirectional link cut between two groups over a step window.

    Messages between ``left`` and ``right`` sent while ``start <= now < heal``
    are held by the transport and released when the partition heals; with
    ``heal=None`` the partition is permanent and those messages are lost
    (their transactions count against availability).
    """

    left: Tuple[str, ...]
    right: Tuple[str, ...]
    start: int = 0
    heal: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "left", tuple(self.left))
        object.__setattr__(self, "right", tuple(self.right))
        if set(self.left) & set(self.right):
            raise ValueError("partition sides must be disjoint")
        if self.start < 0:
            raise ValueError("partition start must be >= 0")
        if self.heal is not None and self.heal <= self.start:
            raise ValueError("partition heal time must be after its start")

    def active(self, now: int) -> bool:
        return self.start <= now and (self.heal is None or now < self.heal)

    def blocks(self, src: str, dst: str, now: int) -> bool:
        if not self.active(now):
            return False
        return (src in self.left and dst in self.right) or (src in self.right and dst in self.left)

    def describe(self) -> str:
        window = f"[{self.start}, {'∞' if self.heal is None else self.heal})"
        return f"partition({'/'.join(self.left)} ⊥ {'/'.join(self.right)} @ {window})"


@dataclass(frozen=True)
class CrashEvent:
    """A fail-recover (or fail-stop) server crash.

    With ``preserve_state=True`` (the default) the server keeps its state
    across the outage — fail-recover with durable storage; while crashed it
    neither receives nor reacts.  ``preserve_state=False`` models
    **crash-with-amnesia**: the server's volatile state is lost and it
    recovers freshly initialised (the injector calls the automaton's
    ``forget()`` hook at recovery time — the moment the loss becomes
    observable).  ``recover=None`` is a permanent fail-stop: everything
    addressed to it is lost (and ``preserve_state`` is then moot).
    """

    server: str
    at: int = 0
    recover: Optional[int] = None
    preserve_state: bool = True

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be >= 0")
        if self.recover is not None and self.recover <= self.at:
            raise ValueError("recovery must be after the crash")

    def crashed(self, now: int) -> bool:
        return self.at <= now and (self.recover is None or now < self.recover)

    def describe(self) -> str:
        until = "forever" if self.recover is None else f"until {self.recover}"
        amnesia = "" if self.preserve_state else ", amnesia"
        return f"crash({self.server} @ {self.at} {until}{amnesia})"


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """The full declarative description of one chaos regime.

    All fields default to "off"; :meth:`none` is the canonical inert plan
    (guaranteed byte-for-byte identical traces to running without any fault
    plane at all).  ``seed`` feeds the injector's private RNG; ``name`` is a
    label used in reports and benchmark output.
    """

    name: str = ""
    latency: Optional[LatencyModel] = None
    drops: Optional[DropPolicy] = None
    duplicates: Optional[DuplicatePolicy] = None
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[CrashEvent, ...] = ()
    retry: Optional[RetryPolicy] = None
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------------
    @classmethod
    def none(cls, name: str = "none") -> "FaultPlan":
        """The inert plan: reliable channels, zero latency, no faults."""
        return cls(name=name)

    def is_inert(self) -> bool:
        """True when the plan perturbs nothing (pure reliable semantics)."""
        return (
            self.latency is None
            and self.drops is None
            and self.duplicates is None
            and not self.partitions
            and not self.crashes
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def needs_retry(self) -> bool:
        """Whether the plan can lose messages (and so wants a retry policy)."""
        return self.drops is not None or bool(self.crashes) or bool(self.partitions)

    def describe(self) -> str:
        if self.is_inert():
            return f"{self.name or 'faults'}: none (reliable channels)"
        parts = []
        if self.latency is not None:
            parts.append(self.latency.describe())
        if self.drops is not None:
            parts.append(self.drops.describe())
        if self.duplicates is not None:
            parts.append(self.duplicates.describe())
        parts.extend(p.describe() for p in self.partitions)
        parts.extend(c.describe() for c in self.crashes)
        if self.retry is not None:
            parts.append(self.retry.describe())
        return f"{self.name or 'faults'}: " + ", ".join(parts)
