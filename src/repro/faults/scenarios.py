"""A library of named fault scenarios for benchmarks and examples.

These are the columns of the chaos grid: each scenario is a reusable
:class:`~repro.faults.plan.FaultPlan` shape, parameterised only by seed and
(for partitions/crashes) by the concrete process names of the built system.
The benchmark ``bench_faults_sweep`` runs every protocol against every
scenario and reports availability, latency degradation and the measured SNOW
verdict side by side.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from .plan import (
    BimodalLatency,
    CrashEvent,
    DropPolicy,
    DuplicatePolicy,
    FaultPlan,
    Partition,
    RetryPolicy,
    UniformLatency,
)


def slow_network(seed: int = 0) -> FaultPlan:
    """Uniformly jittered delivery latency; nothing is ever lost."""
    return FaultPlan(name="slow-network", latency=UniformLatency(0, 6), seed=seed)


def tail_latency(seed: int = 0) -> FaultPlan:
    """Mostly fast links with an occasional very slow straggler (p95 shape)."""
    return FaultPlan(name="tail-latency", latency=BimodalLatency(fast=1, slow=15, slow_probability=0.08), seed=seed)


def lossy_network(seed: int = 0, probability: float = 0.15) -> FaultPlan:
    """Fair-loss links healed by transport retransmission."""
    return FaultPlan(
        name="lossy",
        drops=DropPolicy(probability=probability, max_consecutive=4),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def duplicating_network(seed: int = 0, probability: float = 0.25) -> FaultPlan:
    """At-least-once links: spurious duplicate deliveries, nothing lost."""
    return FaultPlan(name="dup-happy", duplicates=DuplicatePolicy(probability=probability), seed=seed)


def flaky_everything(seed: int = 0) -> FaultPlan:
    """Latency + loss + duplication together — the realistic bad day."""
    return FaultPlan(
        name="flaky",
        latency=UniformLatency(0, 4),
        drops=DropPolicy(probability=0.10, max_consecutive=4),
        duplicates=DuplicatePolicy(probability=0.10),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def crash_recover(server: str = "s1", at: int = 10, recover: int = 60, seed: int = 0) -> FaultPlan:
    """One server fails and comes back; transport holds its mail meanwhile."""
    return FaultPlan(
        name="crash-recover",
        crashes=(CrashEvent(server=server, at=at, recover=recover),),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def crash_amnesia(server: str = "s1", at: int = 10, recover: int = 60, seed: int = 0) -> FaultPlan:
    """One server fails and recovers with **volatile state lost**.

    The crash-with-amnesia regime: the server comes back blank (its
    ``forget()`` hook ran), modelling a store without durable storage.
    Protocol-visible consequence: reads served by the amnesiac replica can
    be stale or initial unless the quorum discipline routes around it.
    """
    return FaultPlan(
        name="crash-amnesia",
        crashes=(CrashEvent(server=server, at=at, recover=recover, preserve_state=False),),
        retry=RetryPolicy(timeout_steps=10, max_attempts=8),
        seed=seed,
    )


def fail_stop(server: str = "s1", at: int = 10, seed: int = 0) -> FaultPlan:
    """One server fails permanently: transactions touching it never finish."""
    return FaultPlan(name="fail-stop", crashes=(CrashEvent(server=server, at=at, recover=None),), seed=seed)


def coordinator_failover(leader: str = "coor", at: int = 12, seed: int = 0) -> FaultPlan:
    """Fail-stop the replicated coordinator's *leader* mid-run.

    The acceptance scenario of the consensus layer: with
    ``consensus_factor >= 3`` the surviving members hold an election after a
    bounded leaderless window and every transaction still completes with the
    same SNOW/Lemma-20 verdicts — whereas at ``consensus_factor=1`` the same
    crash (of the designated first server) stalls every coordinator-dependent
    transaction forever, which is the single point of failure this subsystem
    removes.  ``leader`` is the *bootstrap* leader name (the group's first
    member); crash it before any election and the fault hits the actual
    leader deterministically.
    """
    return FaultPlan(
        name="coordinator-failover",
        crashes=(CrashEvent(server=leader, at=at, recover=None),),
        seed=seed,
    )


def replace_dead_replica(
    object_id: str = "ox",
    replication_factor: int = 3,
    crash_at: int = 8,
    reconfig_at: int = 30,
    seed: int = 0,
) -> Tuple[FaultPlan, Any]:
    """Fail-stop the last replica of one group, then reconfigure it away.

    The acceptance scenario of the reconfiguration layer: with a majority
    quorum at ``replication_factor=3`` the crash costs nothing (the surviving
    quorum absorbs it), and at ``reconfig_at`` the joint-consensus change
    swaps the dead replica for a fresh one (``sx.3`` → ``sx.4``), which syncs
    the object's versions from a retained replica before the change commits.
    Expected outcome: availability 1.0 and an unavailability window of 0 —
    replacing a dead replica is an experiment, not an outage.

    Returns ``(FaultPlan, ReconfigPlan)`` — pass them as the ``faults`` and
    ``reconfig`` arguments of one experiment.
    """
    from ..consensus.reconfig import ReconfigPlan, set_replica_group
    from ..txn.placement import next_replica_names, replica_names

    group = replica_names(object_id, replication_factor)
    dead = group[-1]
    replacement = next_replica_names(object_id, group)[0]
    new_group = tuple(s for s in group if s != dead) + (replacement,)
    plan = FaultPlan(
        name="replace-dead-replica",
        crashes=(CrashEvent(server=dead, at=crash_at, recover=None),),
        seed=seed,
    )
    reconfig = ReconfigPlan(
        name="replace-dead-replica",
        requests=(set_replica_group(object_id, new_group, at=reconfig_at),),
    )
    return plan, reconfig


def auto_heal(
    object_id: str = "ox",
    replication_factor: int = 3,
    crash_at: int = 8,
    seed: int = 0,
    probe_interval: int = 20,
    fail_after: int = 3,
    max_ticks: int = 24,
) -> Tuple[FaultPlan, Any]:
    """Fail-stop the last replica of one group and let the *controller* heal it.

    The acceptance scenario of the rebalancing controller
    (:mod:`repro.consensus.controller`): unlike :func:`replace_dead_replica`
    there is **no hand-authored ReconfigPlan** — the controller's probes
    notice the silent replica, derive the replacement change and submit it
    to the driver.  Expected outcome: availability 1.0, the group back at
    full strength, an unavailability window of 0 and unchanged SNOW /
    Lemma-20 verdicts — self-healing as a non-event.

    Returns ``(FaultPlan, ControllerPolicy)`` — pass them as the ``faults``
    and ``controller`` arguments of one experiment.
    """
    from ..consensus.controller import ControllerPolicy
    from ..txn.placement import replica_names

    dead = replica_names(object_id, replication_factor)[-1]
    plan = FaultPlan(
        name="auto-heal",
        crashes=(CrashEvent(server=dead, at=crash_at, recover=None),),
        seed=seed,
    )
    policy = ControllerPolicy(
        probe_interval=probe_interval, fail_after=fail_after, max_ticks=max_ticks
    )
    return plan, policy


def grow_group_mid_run(
    object_id: str = "ox",
    replication_factor: int = 3,
    to_factor: int = 5,
    at: int = 20,
) -> Tuple[FaultPlan, Any]:
    """Grow one object's replica group mid-run (e.g. rf 3 → 5), fault-free.

    The added replicas sync state before the change commits, so reads served
    by the grown group never miss a completed write.  Returns
    ``(FaultPlan.none(), ReconfigPlan)``.
    """
    from ..consensus.reconfig import ReconfigPlan, set_replica_group
    from ..txn.placement import next_replica_names, replica_names

    if to_factor <= replication_factor:
        raise ValueError(
            f"grow_group_mid_run grows the group: to_factor={to_factor} "
            f"must exceed replication_factor={replication_factor}"
        )
    group = replica_names(object_id, replication_factor)
    added = next_replica_names(object_id, group, count=to_factor - replication_factor)
    reconfig = ReconfigPlan(
        name="grow-group",
        requests=(set_replica_group(object_id, group + added, at=at),),
    )
    return FaultPlan.none(), reconfig


def shrink_consensus_group_mid_run(
    consensus_factor: int = 3,
    to_factor: int = 2,
    at: int = 20,
    drop_leader: bool = True,
) -> Tuple[FaultPlan, Any]:
    """Shrink the replicated-coordinator group mid-run, fault-free.

    With ``drop_leader`` the member that leaves is the bootstrap leader, so
    the change exercises the leader hand-off: the leader replicates and
    commits ``C_new``, answers the driver, and abdicates; the surviving
    members elect a successor when the next coordinator request needs one.
    Returns ``(FaultPlan.none(), ReconfigPlan)``.
    """
    from ..consensus.reconfig import ReconfigPlan, set_consensus_group
    from ..txn.placement import coordinator_group_names

    if not (1 <= to_factor < consensus_factor):
        raise ValueError(
            f"shrink_consensus_group_mid_run shrinks the group: need "
            f"1 <= to_factor={to_factor} < consensus_factor={consensus_factor}"
        )
    group = coordinator_group_names(consensus_factor)
    new_group = group[1:][:to_factor] if drop_leader else group[:to_factor]
    reconfig = ReconfigPlan(
        name="shrink-consensus",
        requests=(set_consensus_group(new_group, at=at),),
    )
    return FaultPlan.none(), reconfig


def healed_partition(
    left: Sequence[str], right: Sequence[str], start: int = 5, heal: int = 40, seed: int = 0
) -> FaultPlan:
    """A link cut between two groups that heals after a window."""
    return FaultPlan(
        name="partition-heal",
        partitions=(Partition(left=tuple(left), right=tuple(right), start=start, heal=heal),),
        seed=seed,
    )


def partition_grid_scenarios(
    clients: Sequence[str],
    servers: Sequence[str],
    durations: Sequence[int] = (20, 60),
    start: int = 5,
    seed: int = 0,
) -> Dict[str, FaultPlan]:
    """The partition grid: placement × duration (the CAP experiment axes).

    Two placements are generated per duration:

    * ``client-shard`` — every client cut off from the *first* server for
      the window (a client-side network blip towards one shard);
    * ``shard-shard`` — the first server cut off from every other server
      (a back-side split; bites exactly the protocols that route reads or
      writes through a designated server).

    All partitions heal at ``start + duration``; the transport holds the
    blocked messages and releases them at the heal, so availability is about
    *when* transactions finish, and the S column reports whether consistency
    survived the reordering.  Scenario names encode both axes
    (``partition-<placement>-d<duration>``) so grid rows stay self-describing.
    """
    if not servers:
        raise ValueError("partition_grid_scenarios needs at least one server")
    scenarios: Dict[str, FaultPlan] = {}
    target = servers[0]
    others = tuple(s for s in servers if s != target)
    for duration in durations:
        scenarios[f"partition-client-shard-d{duration}"] = FaultPlan(
            name=f"partition-client-shard-d{duration}",
            partitions=(
                Partition(left=tuple(clients), right=(target,), start=start, heal=start + duration),
            ),
            seed=seed,
        )
        if others:
            scenarios[f"partition-shard-shard-d{duration}"] = FaultPlan(
                name=f"partition-shard-shard-d{duration}",
                partitions=(
                    Partition(left=(target,), right=others, start=start, heal=start + duration),
                ),
                seed=seed,
            )
    return scenarios


def standard_fault_scenarios(
    seed: int = 0, crash_server: str = "s1", partition: Optional[Partition] = None
) -> Dict[str, FaultPlan]:
    """The default chaos grid: none + five progressively nastier regimes.

    ``none`` is deliberately included so every grid has the fault-free
    baseline in column one and latency degradation is always relative.
    """
    scenarios: Dict[str, FaultPlan] = {
        "none": FaultPlan.none(),
        "slow-network": slow_network(seed=seed),
        "tail-latency": tail_latency(seed=seed),
        "lossy": lossy_network(seed=seed),
        "dup-happy": duplicating_network(seed=seed),
        "crash-recover": crash_recover(server=crash_server, seed=seed),
    }
    if partition is not None:
        scenarios["partition-heal"] = FaultPlan(
            name="partition-heal", partitions=(partition,), seed=seed
        )
    return scenarios
